"""Predicate selectivity estimation."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.optimizer.expressions import ColumnRef, ParamPredicate, QueryTemplate
from repro.optimizer.selectivity import (
    instance_selectivities,
    predicate_selectivity,
    value_for_selectivity,
)
from repro.tpch import build_catalog, build_statistics


@pytest.fixture(scope="module")
def statistics():
    catalog = build_catalog(scale_factor=0.01)
    return build_statistics(catalog, seed=0, gaussian_samples=5000)


@pytest.fixture(scope="module")
def leq_predicate():
    return ParamPredicate(ColumnRef("customer", "c_acctbal"), 0)


@pytest.fixture(scope="module")
def geq_predicate():
    return ParamPredicate(ColumnRef("customer", "c_acctbal"), 0, op=">=")


class TestPredicateSelectivity:
    def test_leq_and_geq_complement(self, statistics, leq_predicate, geq_predicate):
        value = 4500.0  # mid-range of c_acctbal
        leq = predicate_selectivity(statistics, leq_predicate, value)
        geq = predicate_selectivity(statistics, geq_predicate, value)
        assert leq + geq == pytest.approx(1.0)
        assert leq == pytest.approx(0.5, abs=0.02)

    def test_leq_monotone_in_value(self, statistics, leq_predicate):
        sels = [
            predicate_selectivity(statistics, leq_predicate, v)
            for v in (0.0, 2500.0, 5000.0, 9000.0)
        ]
        assert sels == sorted(sels)

    def test_geq_antitone_in_value(self, statistics, geq_predicate):
        sels = [
            predicate_selectivity(statistics, geq_predicate, v)
            for v in (0.0, 2500.0, 5000.0, 9000.0)
        ]
        assert sels == sorted(sels, reverse=True)

    def test_round_trip(self, statistics, leq_predicate, geq_predicate):
        for predicate in (leq_predicate, geq_predicate):
            for sel in (0.1, 0.5, 0.9):
                value = value_for_selectivity(statistics, predicate, sel)
                back = predicate_selectivity(statistics, predicate, value)
                assert back == pytest.approx(sel, abs=1e-9)

    def test_invalid_selectivity_rejected(self, statistics, leq_predicate):
        with pytest.raises(ConfigurationError):
            value_for_selectivity(statistics, leq_predicate, 1.5)


class TestInstanceSelectivities:
    def test_ordered_by_param_index(self, statistics):
        template = QueryTemplate(
            name="two",
            tables=("customer",),
            predicates=(
                ParamPredicate(ColumnRef("customer", "c_acctbal"), 0),
                ParamPredicate(ColumnRef("customer", "c_date"), 1),
            ),
        )
        sels = instance_selectivities(template, statistics, (9999.0, 0.0))
        assert sels[0] == pytest.approx(1.0, abs=0.01)
        assert sels[1] == pytest.approx(0.0, abs=0.01)

    def test_arity_checked(self, statistics):
        template = QueryTemplate(
            name="one",
            tables=("customer",),
            predicates=(ParamPredicate(ColumnRef("customer", "c_date"), 0),),
        )
        with pytest.raises(ConfigurationError):
            instance_selectivities(template, statistics, (1.0, 2.0))
