"""Retry with capped exponential backoff under a deadline."""

import pytest

from repro.exceptions import ConfigurationError, ResilienceError
from repro.config import ResilienceConfig
from repro.resilience import (
    RetryExhaustedError,
    RetryPolicy,
    VirtualClock,
    retry_call,
)


class Flaky:
    """Fails the first ``failures`` calls, then succeeds."""

    def __init__(self, failures: int) -> None:
        self.failures = failures
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise RuntimeError(f"boom {self.calls}")
        return "ok"


class TestRetry:
    def test_succeeds_after_transient_failures(self):
        clock = VirtualClock()
        flaky = Flaky(2)
        result = retry_call(
            flaky,
            RetryPolicy(attempts=3),
            clock=clock.now,
            sleep=clock.sleep,
        )
        assert result == "ok"
        assert flaky.calls == 3

    def test_exhaustion_raises_with_cause(self):
        clock = VirtualClock()
        flaky = Flaky(10)
        with pytest.raises(RetryExhaustedError) as excinfo:
            retry_call(
                flaky,
                RetryPolicy(attempts=3),
                clock=clock.now,
                sleep=clock.sleep,
            )
        assert flaky.calls == 3
        assert isinstance(excinfo.value.__cause__, RuntimeError)
        assert "boom 3" in str(excinfo.value.__cause__)

    def test_backoff_sequence_is_geometric_and_capped(self):
        sleeps = []
        clock = VirtualClock()

        def sleep(seconds):
            sleeps.append(seconds)
            clock.sleep(seconds)

        with pytest.raises(RetryExhaustedError):
            retry_call(
                Flaky(10),
                RetryPolicy(
                    attempts=5,
                    base_delay=0.1,
                    multiplier=2.0,
                    max_delay=0.5,
                    deadline=None,
                ),
                clock=clock.now,
                sleep=sleep,
            )
        assert sleeps == pytest.approx([0.1, 0.2, 0.4, 0.5])

    def test_deadline_cuts_the_sequence_short(self):
        clock = VirtualClock()
        flaky = Flaky(10)
        with pytest.raises(RetryExhaustedError) as excinfo:
            retry_call(
                flaky,
                RetryPolicy(
                    attempts=100,
                    base_delay=0.5,
                    multiplier=1.0,
                    max_delay=0.5,
                    deadline=1.2,
                ),
                clock=clock.now,
                sleep=clock.sleep,
            )
        # 0.5s before each retry: two sleeps fit under 1.2s, the third
        # would overshoot — three attempts total.
        assert flaky.calls == 3
        assert "deadline" in str(excinfo.value)

    def test_on_retry_fires_per_retry_not_per_attempt(self):
        clock = VirtualClock()
        retries = []
        retry_call(
            Flaky(2),
            RetryPolicy(attempts=5),
            clock=clock.now,
            sleep=clock.sleep,
            on_retry=lambda: retries.append(1),
        )
        assert len(retries) == 2

    def test_first_try_success_never_sleeps(self):
        def sleep(_):  # pragma: no cover - must not run
            raise AssertionError("slept on success")

        assert retry_call(lambda: 42, RetryPolicy(), sleep=sleep) == 42


class TestPolicyValidation:
    def test_attempts_must_be_positive(self):
        with pytest.raises(ResilienceError):
            RetryPolicy(attempts=0)

    def test_multiplier_must_not_shrink(self):
        with pytest.raises(ResilienceError):
            RetryPolicy(multiplier=0.5)

    def test_deadline_must_be_positive(self):
        with pytest.raises(ResilienceError):
            RetryPolicy(deadline=0.0)

    def test_delay_schedule(self):
        policy = RetryPolicy(base_delay=0.01, multiplier=3.0, max_delay=0.05)
        assert policy.delay(0) == pytest.approx(0.01)
        assert policy.delay(1) == pytest.approx(0.03)
        assert policy.delay(2) == pytest.approx(0.05)  # capped


class TestResilienceConfig:
    def test_defaults_valid(self):
        config = ResilienceConfig()
        assert config.retry_attempts >= 1
        assert config.breaker_failure_threshold >= 1

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            ResilienceConfig(retry_attempts=0)
        with pytest.raises(ConfigurationError):
            ResilienceConfig(retry_multiplier=0.0)
        with pytest.raises(ConfigurationError):
            ResilienceConfig(breaker_failure_threshold=0)
        with pytest.raises(ConfigurationError):
            ResilienceConfig(breaker_recovery_time=-1.0)
