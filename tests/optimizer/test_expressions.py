"""Query templates and predicates: validation and accessors."""

import pytest

from repro.exceptions import ConfigurationError
from repro.optimizer.expressions import (
    ColumnRef,
    JoinPredicate,
    ParamPredicate,
    QueryTemplate,
)


def _template(**overrides):
    config = dict(
        name="t",
        tables=("a", "b"),
        joins=(JoinPredicate(ColumnRef("a", "x"), ColumnRef("b", "x")),),
        predicates=(
            ParamPredicate(ColumnRef("a", "p"), 0),
            ParamPredicate(ColumnRef("b", "q"), 1),
        ),
    )
    config.update(overrides)
    return QueryTemplate(**config)


class TestParamPredicate:
    def test_invalid_op(self):
        with pytest.raises(ConfigurationError):
            ParamPredicate(ColumnRef("a", "p"), 0, op="=")

    def test_negative_index(self):
        with pytest.raises(ConfigurationError):
            ParamPredicate(ColumnRef("a", "p"), -1)

    def test_invalid_scale(self):
        with pytest.raises(ConfigurationError):
            ParamPredicate(ColumnRef("a", "p"), 0, scale="cubic")

    def test_rendering(self):
        predicate = ParamPredicate(ColumnRef("a", "p"), 2)
        assert str(predicate) == "a.p <= <v2>"


class TestJoinPredicate:
    def test_column_for(self):
        join = JoinPredicate(ColumnRef("a", "x"), ColumnRef("b", "y"))
        assert join.column_for("a").column == "x"
        assert join.column_for("b").column == "y"
        with pytest.raises(ConfigurationError):
            join.column_for("c")


class TestQueryTemplate:
    def test_parameter_degree(self):
        assert _template().parameter_degree == 2

    def test_predicates_on(self):
        template = _template()
        assert [p.param_index for p in template.predicates_on("a")] == [0]
        assert template.predicates_on("zzz") == []

    def test_joins_between(self):
        template = _template()
        joins = template.joins_between(frozenset(("a",)), "b")
        assert len(joins) == 1
        assert template.joins_between(frozenset(("b",)), "a")
        assert not template.joins_between(frozenset(), "b")

    def test_duplicate_tables_rejected(self):
        with pytest.raises(ConfigurationError):
            _template(tables=("a", "a"))

    def test_join_referencing_foreign_table_rejected(self):
        with pytest.raises(ConfigurationError):
            _template(
                joins=(JoinPredicate(ColumnRef("a", "x"), ColumnRef("z", "x")),)
            )

    def test_predicate_referencing_foreign_table_rejected(self):
        with pytest.raises(ConfigurationError):
            _template(predicates=(ParamPredicate(ColumnRef("z", "p"), 0),))

    def test_param_indexes_must_be_dense(self):
        with pytest.raises(ConfigurationError):
            _template(
                predicates=(
                    ParamPredicate(ColumnRef("a", "p"), 0),
                    ParamPredicate(ColumnRef("b", "q"), 2),
                )
            )

    def test_sql_rendering(self):
        sql = _template().sql()
        assert sql.startswith("SELECT * FROM a, b WHERE")
        assert "a.x = b.x" in sql
        assert "a.p <= <v0>" in sql

    def test_empty_tables_rejected(self):
        with pytest.raises(ConfigurationError):
            QueryTemplate(name="x", tables=())
