"""Catalog metadata: tables, columns and indexes.

The catalog is pure metadata — row counts, page counts, column domains
and index definitions.  No tuples are ever materialized; plan choice in
a cost-based optimizer depends only on statistics, which is exactly how
the paper's framework computes selectivities ("in the same way that the
query optimizer makes its selectivity estimations").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import CatalogError

#: Tuples that fit in one page in the synthetic storage model.  Chosen so
#: that the classic sequential-scan vs. index-scan crossover happens at a
#: realistic selectivity (roughly 1 / TUPLES_PER_PAGE for an unclustered
#: index).
TUPLES_PER_PAGE = 64


@dataclass(frozen=True)
class Column:
    """A column with its value domain and distinct-value count."""

    name: str
    lo: float
    hi: float
    distinct_count: int
    distribution: str = "uniform"

    def __post_init__(self) -> None:
        if self.hi < self.lo:
            raise CatalogError(f"column {self.name}: hi < lo")
        if self.distinct_count < 1:
            raise CatalogError(f"column {self.name}: distinct_count < 1")


@dataclass(frozen=True)
class Index:
    """A secondary index over a single column of a table."""

    name: str
    table: str
    column: str
    unique: bool = False
    clustered: bool = False


@dataclass
class Table:
    """A table: row count plus its columns, keyed by column name."""

    name: str
    row_count: int
    columns: dict[str, Column] = field(default_factory=dict)

    @property
    def pages(self) -> int:
        """Number of storage pages holding the table."""
        return max(1, -(-self.row_count // TUPLES_PER_PAGE))

    def column(self, name: str) -> Column:
        try:
            return self.columns[name]
        except KeyError:
            raise CatalogError(
                f"table {self.name} has no column {name!r}"
            ) from None


class Catalog:
    """A named collection of tables and indexes."""

    def __init__(self) -> None:
        self.tables: dict[str, Table] = {}
        self.indexes: dict[str, Index] = {}
        self._indexes_by_column: dict[tuple[str, str], Index] = {}

    def add_table(self, table: Table) -> Table:
        if table.name in self.tables:
            raise CatalogError(f"duplicate table {table.name!r}")
        self.tables[table.name] = table
        return table

    def add_index(self, index: Index) -> Index:
        if index.table not in self.tables:
            raise CatalogError(
                f"index {index.name!r} references unknown table {index.table!r}"
            )
        self.tables[index.table].column(index.column)
        if index.name in self.indexes:
            raise CatalogError(f"duplicate index {index.name!r}")
        self.indexes[index.name] = index
        self._indexes_by_column[(index.table, index.column)] = index
        return index

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def index_on(self, table: str, column: str) -> Index | None:
        """The index covering ``table.column``, or ``None``."""
        return self._indexes_by_column.get((table, column))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Catalog(tables={len(self.tables)}, indexes={len(self.indexes)})"
        )
