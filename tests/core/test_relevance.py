"""Parameter relevance analysis and axis weighting."""

import numpy as np
import pytest

from repro.core.histogram_predictor import HistogramPredictor
from repro.core.point import SamplePool
from repro.core.relevance import (
    ParameterRelevanceAnalyzer,
    apply_axis_weights,
)
from repro.exceptions import ConfigurationError
from repro.metrics import evaluate_predictions


def _labeled_samples(n=800, dims=4, relevant=(0, 1), seed=0):
    """Labels depend only on the `relevant` axes (quadrant id)."""
    rng = np.random.default_rng(seed)
    coords = rng.uniform(0, 1, (n, dims))
    labels = np.zeros(n, dtype=np.int64)
    for rank, axis in enumerate(relevant):
        labels += (coords[:, axis] > 0.5).astype(np.int64) << rank
    return coords, labels


class TestAnalyzer:
    def test_relevant_axes_identified(self):
        coords, labels = _labeled_samples()
        analyzer = ParameterRelevanceAnalyzer(coords, labels)
        assert set(analyzer.relevant_axes()) == {0, 1}

    def test_flip_rates_separate_relevant_from_noise(self):
        coords, labels = _labeled_samples()
        rates = ParameterRelevanceAnalyzer(coords, labels).axis_flip_rates()
        assert min(rates[0], rates[1]) > max(rates[2], rates[3])

    def test_weights_bounded_and_ordered(self):
        coords, labels = _labeled_samples()
        weights = ParameterRelevanceAnalyzer(coords, labels).axis_weights()
        assert (weights >= 0.05).all() and (weights <= 1.0).all()
        # Relevant axes get clearly higher weight than noise axes.
        assert min(weights[0], weights[1]) > max(weights[2], weights[3])

    def test_suggested_output_dims(self):
        coords, labels = _labeled_samples(relevant=(0, 1, 2))
        analyzer = ParameterRelevanceAnalyzer(coords, labels)
        assert analyzer.suggested_output_dims() == 3

    def test_single_relevant_axis(self):
        coords, labels = _labeled_samples(relevant=(2,))
        analyzer = ParameterRelevanceAnalyzer(coords, labels)
        assert analyzer.relevant_axes() == [2]

    def test_accepts_sample_pool(self):
        coords, labels = _labeled_samples(n=100)
        pool = SamplePool.from_arrays(coords, labels)
        analyzer = ParameterRelevanceAnalyzer(pool)
        assert analyzer.axis_flip_rates().shape == (4,)

    def test_chunked_matches_unchunked(self):
        coords, labels = _labeled_samples(n=300)
        small = ParameterRelevanceAnalyzer(coords, labels, chunk_size=64)
        large = ParameterRelevanceAnalyzer(coords, labels, chunk_size=4096)
        assert small.axis_flip_rates() == pytest.approx(
            large.axis_flip_rates()
        )

    def test_too_few_samples_rejected(self):
        with pytest.raises(ConfigurationError):
            ParameterRelevanceAnalyzer(np.zeros((1, 2)), np.zeros(1))


class TestApplyAxisWeights:
    def test_identity_with_none(self):
        points = np.random.default_rng(0).uniform(0, 1, (5, 3))
        assert apply_axis_weights(points, None) is points

    def test_full_weight_is_identity(self):
        points = np.random.default_rng(0).uniform(0, 1, (5, 3))
        assert apply_axis_weights(points, np.ones(3)) == pytest.approx(points)

    def test_zero_weight_collapses_to_center(self):
        points = np.array([[0.0, 1.0], [1.0, 0.0]])
        squeezed = apply_axis_weights(points, np.array([0.0, 1.0]))
        assert squeezed[:, 0] == pytest.approx([0.5, 0.5])
        assert squeezed[:, 1] == pytest.approx(points[:, 1])

    def test_output_stays_in_unit_cube(self):
        points = np.random.default_rng(1).uniform(0, 1, (100, 4))
        weights = np.array([1.0, 0.5, 0.1, 0.0])
        out = apply_axis_weights(points, weights)
        assert (out >= 0.0).all() and (out <= 1.0).all()

    def test_invalid_weights_rejected(self):
        points = np.zeros((2, 2))
        with pytest.raises(ConfigurationError):
            apply_axis_weights(points, np.array([0.5]))
        with pytest.raises(ConfigurationError):
            apply_axis_weights(points, np.array([0.5, 1.5]))


class TestWeightedPrediction:
    def test_weights_recover_recall_on_polluted_space(self):
        """With two relevant + two irrelevant axes, compressing the
        noise axes lets the grid cells aggregate usefully."""
        coords, labels = _labeled_samples(n=1500, dims=4, seed=3)
        pool = SamplePool.from_arrays(coords, labels)
        test_coords, test_labels = _labeled_samples(n=400, dims=4, seed=5)

        weights = ParameterRelevanceAnalyzer(pool).axis_weights()
        plain = HistogramPredictor(
            pool, transforms=5, radius=0.2, confidence_threshold=0.7, seed=1
        )
        weighted = HistogramPredictor(
            pool, transforms=5, radius=0.2, confidence_threshold=0.7,
            axis_weights=weights, seed=1,
        )

        def score(predictor):
            ids = [
                None if p is None else p.plan_id
                for p in predictor.predict_batch(test_coords)
            ]
            return evaluate_predictions(ids, test_labels)

        plain_metrics = score(plain)
        weighted_metrics = score(weighted)
        assert weighted_metrics.recall > plain_metrics.recall
        assert weighted_metrics.precision > plain_metrics.precision - 0.05
