"""Equi-width histogram: fixed-width buckets over the domain.

The simplest construction; bucket boundaries ignore the data entirely,
so it suffers exactly the bucket-misalignment problem the paper
attributes to fixed grids.  Included as the weakest member of the
histogram family and as an ablation baseline for the boundary-choosing
constructions.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import HistogramError
from repro.histograms.base import Bucket, Histogram


class EquiWidthHistogram(Histogram):
    """Histogram with ``bucket_count`` equal-width buckets."""

    def __init__(
        self,
        bucket_count: int,
        domain: tuple[float, float] = (0.0, 1.0),
    ) -> None:
        if bucket_count < 1:
            raise HistogramError("bucket_count must be >= 1")
        super().__init__(domain)
        lo, hi = self.domain
        edges = np.linspace(lo, hi, bucket_count + 1)
        self.buckets = [
            Bucket(float(edges[i]), float(edges[i + 1]))
            for i in range(bucket_count)
        ]

    @classmethod
    def build(
        cls,
        values: Sequence[float],
        costs: Sequence[float] | None = None,
        bucket_count: int = 40,
        domain: tuple[float, float] = (0.0, 1.0),
    ) -> "EquiWidthHistogram":
        """Construct and populate a histogram from labeled points."""
        hist = cls(bucket_count, domain)
        if costs is None:
            costs = np.zeros(len(values))
        for value, cost in zip(values, costs, strict=True):
            hist.insert(float(value), float(cost))
        return hist

    def insert(self, value: float, cost: float = 0.0, weight: float = 1.0) -> None:
        """Add one point; O(1) via direct bucket-index arithmetic."""
        self._check_in_domain(value)
        if weight <= 0.0:
            raise HistogramError("insertion weight must be > 0")
        lo, hi = self.domain
        span = hi - lo
        index = int((value - lo) / span * len(self.buckets))
        index = min(index, len(self.buckets) - 1)
        bucket = self.buckets[index]
        bucket.count += weight
        bucket.cost_sum += cost * weight
        self._mutated()
