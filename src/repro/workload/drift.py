"""Mid-workload plan-space manipulation (Section V-D).

The drift-detection experiment artificially manipulates a template's
plan space halfway through a workload so that both the plan choice and
the plan cost predictability assumptions are violated, then checks that
the online precision estimators raise an alarm.  The
:class:`ManipulatedPlanSpace` wrapper presents the same oracle
interface as the underlying :class:`~repro.optimizer.plan_space.PlanSpace`
but, once ``activate()`` is called, scrambles labels and costs on a
fine random grid: neighboring points suddenly disagree on plans
(breaking Assumption 1) and the costs of identical plans jump by random
factors (breaking Assumption 2).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.lsh.grid import Grid
from repro.optimizer.plan_space import PlanSpace
from repro.rng import as_generator

#: Upper bound on the scramble grid size (memory guard).
_MAX_CELLS = 4_000_000


class ManipulatedPlanSpace:
    """Plan-space oracle whose truth can be scrambled mid-workload."""

    def __init__(
        self,
        base: PlanSpace,
        resolution: int = 16,
        cost_jitter: float = 1.5,
        seed: "int | np.random.Generator | None" = 0,
    ) -> None:
        if resolution**base.dimensions > _MAX_CELLS:
            raise ConfigurationError(
                "scramble grid too large; reduce the resolution"
            )
        if cost_jitter <= 0.0:
            raise ConfigurationError("cost_jitter must be > 0")
        rng = as_generator(seed)
        self.base = base
        self.active = False
        self._grid = Grid(
            np.zeros(base.dimensions), np.ones(base.dimensions), resolution
        )
        cells = self._grid.total_cells
        self._label_offsets = rng.integers(1, base.plan_count, size=cells)
        self._cost_factors = np.exp(
            rng.uniform(-np.log(1.0 + cost_jitter), np.log(1.0 + cost_jitter), size=cells)
        )

    # ------------------------------------------------------------------
    # Manipulation switch
    # ------------------------------------------------------------------
    def activate(self) -> None:
        """Scramble the plan space from now on."""
        self.active = True

    def deactivate(self) -> None:
        self.active = False

    # ------------------------------------------------------------------
    # Oracle interface (mirrors PlanSpace)
    # ------------------------------------------------------------------
    @property
    def template(self):
        return self.base.template

    @property
    def dimensions(self) -> int:
        return self.base.dimensions

    @property
    def plan_count(self) -> int:
        return self.base.plan_count

    def plan(self, plan_id: int):
        return self.base.plan(plan_id)

    def label(self, points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        ids, costs = self.base.label(points)
        if not self.active:
            return ids, costs
        cells = self._grid.cell_ids(points)
        scrambled = (ids + self._label_offsets[cells]) % self.plan_count
        return scrambled, costs * self._cost_factors[cells]

    def plan_at(self, points: np.ndarray) -> np.ndarray:
        ids, __ = self.label(points)
        return ids

    def cost_at(
        self, points: np.ndarray, plan_id: "int | None" = None
    ) -> np.ndarray:
        if plan_id is None:
            __, costs = self.label(points)
            return costs
        costs = self.base.cost_at(points, plan_id)
        if not self.active:
            return costs
        cells = self._grid.cell_ids(points)
        return costs * self._cost_factors[cells]
