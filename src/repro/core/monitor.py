"""Online precision/recall estimation and drift detection (Section IV-E).

Three families of sliding estimators are maintained:

* ``prec_k[P_i]`` — precision of the last ``k`` predictions of each
  plan, used to rank plans by caching potential (eviction policy);
* ``prec_k[Q]`` — precision of the last ``k`` NULL-free predictions of
  the template;
* ``beta(Q)`` — the NULL-free fraction of the last ``k`` predictions,
  which links recall to precision: ``rec_k = beta * prec_k``.

When the template-level precision estimate sinks below a threshold
(while enough evidence has accumulated), the monitor raises a drift
alarm; the framework reacts by dropping the template's histograms and
re-accumulating from scratch — the paper's response to a substantial
plan-space change.
"""

from __future__ import annotations

from collections import defaultdict

from repro.exceptions import ConfigurationError
from repro.metrics.windows import SlidingRatio


class PerformanceMonitor:
    """Sliding precision/recall estimators for one query template."""

    def __init__(
        self,
        window: int = 100,
        drift_threshold: float = 0.5,
        min_observations: int = 30,
        recall_collapse_fraction: float = 0.25,
        recall_activation: float = 0.4,
    ) -> None:
        if not 0.0 <= drift_threshold <= 1.0:
            raise ConfigurationError("drift threshold must be in [0, 1]")
        if not 0.0 < recall_collapse_fraction < 1.0:
            raise ConfigurationError(
                "recall collapse fraction must be in (0, 1)"
            )
        self.window = window
        self.drift_threshold = drift_threshold
        self.min_observations = min_observations
        self.recall_collapse_fraction = recall_collapse_fraction
        self.recall_activation = recall_activation
        self._template_precision = SlidingRatio(window)
        self._answer_rate = SlidingRatio(window)
        self._plan_precision: dict[int, SlidingRatio] = defaultdict(
            lambda: SlidingRatio(window)
        )
        self._peak_recall = 0.0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_null(self) -> None:
        """A NULL prediction: affects recall (via beta) but not precision."""
        self._answer_rate.push(False)
        self._update_peak_recall()

    def record_prediction(self, plan_id: int, correct: bool) -> None:
        """A NULL-free prediction whose correctness has been assessed
        (by ground truth when the optimizer was invoked anyway, or by
        the cost-feedback estimator otherwise)."""
        self._answer_rate.push(True)
        self._template_precision.push(correct)
        self._plan_precision[plan_id].push(correct)
        self._update_peak_recall()

    def _update_peak_recall(self) -> None:
        if self._answer_rate.count >= self.min_observations:
            self._peak_recall = max(self._peak_recall, self.recall_estimate)

    # ------------------------------------------------------------------
    # Estimates
    # ------------------------------------------------------------------
    @property
    def precision_estimate(self) -> float:
        """``prec_k`` over the template's recent NULL-free predictions."""
        return self._template_precision.ratio

    @property
    def answer_rate(self) -> float:
        """``beta``: NULL-free fraction of recent predictions."""
        return self._answer_rate.ratio if self._answer_rate.count else 0.0

    @property
    def recall_estimate(self) -> float:
        """``rec_k = beta * prec_k`` (Section IV-E)."""
        return self.answer_rate * self.precision_estimate

    def plan_precision(self, plan_id: int) -> float:
        """``prec_k`` of one plan (1.0 with no evidence yet)."""
        if plan_id not in self._plan_precision:
            return 1.0
        return self._plan_precision[plan_id].ratio

    # ------------------------------------------------------------------
    # Drift
    # ------------------------------------------------------------------
    def drift_detected(self) -> bool:
        """True when the estimators show a substantial plan-space change.

        Two signatures, both from the Section IV-E estimators:

        * *precision collapse* — enough recent NULL-free predictions
          were assessed wrong;
        * *recall collapse* — the template used to be answerable
          (peak ``rec_k`` above the activation level) but the recent
          window has almost entirely gone NULL.  This is what a
          scrambled plan space actually looks like: mixed neighborhood
          evidence makes the confidence check suppress predictions, so
          precision barely updates while recall falls off a cliff.
        """
        precision_collapse = (
            self._template_precision.count >= self.min_observations
            and self.precision_estimate < self.drift_threshold
        )
        recall_collapse = (
            self._peak_recall >= self.recall_activation
            and self._answer_rate.count >= self.window
            and self.recall_estimate
            < self.recall_collapse_fraction * self._peak_recall
        )
        return precision_collapse or recall_collapse

    def drift_pressure(self) -> float:
        """How close the estimators sit to the drift alarm, in [0, 1].

        0 means healthy (or not enough evidence), 1 means the alarm is
        firing right now.  The max of two pressures mirrors the two
        collapse signatures of :meth:`drift_detected`:

        * precision pressure — ``(1 - prec) / (1 - threshold)``, active
          once ``min_observations`` NULL-free predictions accumulated;
        * recall pressure — how far ``rec_k`` has fallen from its peak
          toward the collapse floor, active once the template was ever
          answerable (peak recall above the activation level).
        """
        pressure = 0.0
        if (
            self._template_precision.count >= self.min_observations
            and self.drift_threshold < 1.0
        ):
            precision_pressure = (1.0 - self.precision_estimate) / (
                1.0 - self.drift_threshold
            )
            pressure = max(pressure, precision_pressure)
        if self._peak_recall >= self.recall_activation:
            floor = self.recall_collapse_fraction * self._peak_recall
            span = self._peak_recall - floor
            if span > 0.0:
                recall_pressure = (
                    self._peak_recall - self.recall_estimate
                ) / span
                pressure = max(pressure, recall_pressure)
        return min(max(pressure, 0.0), 1.0)

    def quality_snapshot(self) -> "dict[str, float]":
        """JSON-ready digest of the Section IV-E estimator state."""
        return {
            "precision_estimate": self.precision_estimate,
            "answer_rate": self.answer_rate,
            "recall_estimate": self.recall_estimate,
            "peak_recall": self._peak_recall,
            "drift_pressure": self.drift_pressure(),
            "observations": float(self._answer_rate.count),
            "window": float(self.window),
        }

    def reset(self) -> None:
        """Forget all estimates (after histograms are dropped)."""
        self._template_precision.reset()
        self._answer_rate.reset()
        self._plan_precision.clear()
        self._peak_recall = 0.0
