"""Ablation: median vs mean aggregation of the t density estimates.

The paper selects the *median* of the per-transform density estimates
(Section IV-B).  The mean lets one badly misaligned grid drag boundary
estimates around, so median should give equal-or-better precision.
"""

from _bench_utils import write_result
from repro.core.histogram_predictor import HistogramPredictor
from repro.core.lsh_predictor import LshPredictor
from repro.experiments.setup import evaluate_offline, offline_truth
from repro.tpch import plan_space_for
from repro.workload import sample_labeled_pool


def test_ablation_median_vs_mean(benchmark):
    def run():
        rows = []
        for template in ("Q1", "Q5"):
            space = plan_space_for(template)
            pool = sample_labeled_pool(space, 3200, seed=7)
            test, truth = offline_truth(space, 600, seed=11)
            for aggregation in ("median", "mean"):
                grid = LshPredictor(
                    pool, transforms=5, resolution=8,
                    confidence_threshold=0.7, aggregation=aggregation, seed=1,
                )
                hist = HistogramPredictor(
                    pool, transforms=5, max_buckets=40, radius=0.05,
                    confidence_threshold=0.7, aggregation=aggregation, seed=1,
                )
                for name, predictor in (("lsh", grid), ("histograms", hist)):
                    metrics = evaluate_offline(predictor, test, truth)
                    rows.append((template, name, aggregation, metrics))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Ablation — median vs mean aggregation of per-transform densities",
        "",
        f"{'template':>8s} {'structure':>10s} {'aggregation':>11s} "
        f"{'precision':>10s} {'recall':>8s}",
    ]
    table = {}
    for template, name, aggregation, metrics in rows:
        table[(template, name, aggregation)] = metrics
        lines.append(
            f"{template:>8s} {name:>10s} {aggregation:>11s} "
            f"{metrics.precision:10.3f} {metrics.recall:8.3f}"
        )
    write_result("ablation_median", lines)

    # Mean aggregation produces fractional counts that depress recall
    # severely; median keeps far better recall at high precision.  The
    # dominance claim: median recall >= mean recall everywhere, with
    # precision staying high.
    for (template, name, aggregation), metrics in table.items():
        if aggregation == "median":
            mean_metrics = table[(template, name, "mean")]
            assert metrics.recall >= mean_metrics.recall - 1e-9
            assert metrics.precision > 0.75
