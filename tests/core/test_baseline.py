"""BASELINE (Algorithm 1): exact density prediction."""

import numpy as np
import pytest

from repro.core.baseline import BaselinePredictor
from repro.core.point import SamplePool
from repro.exceptions import PredictionError


def _pool_two_clusters():
    """Plan 0 fills the left half, plan 1 the right half."""
    pool = SamplePool(2)
    rng = np.random.default_rng(0)
    for x in rng.uniform(0.0, 0.4, size=(50, 2)):
        pool.add(x, plan_id=0, cost=10.0)
    for x in rng.uniform(0.6, 1.0, size=(50, 2)):
        pool.add(x, plan_id=1, cost=20.0)
    return pool


class TestPrediction:
    def test_deep_inside_cluster_predicted(self):
        predictor = BaselinePredictor(
            _pool_two_clusters(), radius=0.15, confidence_threshold=0.7
        )
        prediction = predictor.predict([0.2, 0.2])
        assert prediction is not None
        assert prediction.plan_id == 0
        assert prediction.confidence > 0.7

    def test_other_cluster(self):
        predictor = BaselinePredictor(
            _pool_two_clusters(), radius=0.15, confidence_threshold=0.7
        )
        assert predictor.predict([0.8, 0.8]).plan_id == 1

    def test_empty_neighborhood_returns_null(self):
        predictor = BaselinePredictor(
            _pool_two_clusters(), radius=0.05, confidence_threshold=0.5
        )
        # (0.5, 0.5) lies in the empty gap between the clusters.
        assert predictor.predict([0.5, 0.5]) is None

    def test_estimated_cost_from_neighborhood(self):
        predictor = BaselinePredictor(
            _pool_two_clusters(), radius=0.2, confidence_threshold=0.5
        )
        prediction = predictor.predict([0.2, 0.2])
        assert prediction.estimated_cost == pytest.approx(10.0)

    def test_neighborhood_counts(self):
        pool = SamplePool(1)
        pool.add([0.50], 0)
        pool.add([0.52], 0)
        pool.add([0.90], 1)
        predictor = BaselinePredictor(pool, radius=0.05)
        counts = predictor.neighborhood_counts([0.51])
        assert counts.tolist() == [2.0, 0.0]

    def test_mixed_boundary_suppressed_at_high_gamma(self):
        """Points straddling the boundary are answered at low gamma and
        suppressed at high gamma (the precision/recall dial)."""
        pool = SamplePool(1)
        for v in np.linspace(0.40, 0.49, 10):
            pool.add([v], 0)
        for v in np.linspace(0.51, 0.60, 10):
            pool.add([v], 1)
        lenient = BaselinePredictor(pool, radius=0.15, confidence_threshold=0.0)
        strict = BaselinePredictor(pool, radius=0.15, confidence_threshold=0.9)
        # 0.56 sees 10 points of plan 1 and 9 of plan 0: a slim majority
        # that only the lenient threshold accepts.
        assert lenient.predict([0.56]) is not None
        assert strict.predict([0.56]) is None


class TestValidation:
    def test_empty_pool_rejected(self):
        with pytest.raises(PredictionError):
            BaselinePredictor(SamplePool(2))

    def test_bad_radius_rejected(self):
        with pytest.raises(PredictionError):
            BaselinePredictor(_pool_two_clusters(), radius=0.0)

    def test_bad_threshold_rejected(self):
        with pytest.raises(PredictionError):
            BaselinePredictor(_pool_two_clusters(), confidence_threshold=1.5)

    def test_wrong_dimension_rejected(self):
        predictor = BaselinePredictor(_pool_two_clusters())
        with pytest.raises(ValueError):
            predictor.predict([0.5])


class TestSpaceAccounting:
    def test_bytes_scale_with_pool(self):
        pool = _pool_two_clusters()
        predictor = BaselinePredictor(pool)
        assert predictor.space_bytes() == len(pool) * (4 * 2 + 8)


class TestAgainstOracle:
    def test_high_precision_on_q1(self, q1_space, q1_pool, q1_test):
        predictor = BaselinePredictor(
            q1_pool, radius=0.05, confidence_threshold=0.7
        )
        test, truth = q1_test
        correct = answered = 0
        for i in range(test.shape[0]):
            prediction = predictor.predict(test[i])
            if prediction is None:
                continue
            answered += 1
            correct += prediction.plan_id == truth[i]
        assert answered > test.shape[0] * 0.5
        assert correct / answered > 0.95
