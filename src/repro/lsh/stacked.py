"""Struct-of-arrays fast path over a transform ensemble.

The predictors of Section IV evaluate the same point under ``t``
independently randomized transforms.  Looping Python over the ensemble
costs ``t`` interpreter round-trips per prediction; this module
flattens the per-transform direction matrices, translations and grid
bounds into contiguous arrays so one numpy pass answers *all* ``t``
transforms for a whole point batch at once — the layout behind
``predict_batch`` being the primitive.

Numerical contract: every reduction runs along the trailing axis of a
contiguous array, so each output element is computed from its own data
strip regardless of how many points (or transforms) ride in the batch.
That makes a batch of one bitwise identical to any row of a larger
batch, which is what lets scalar ``predict`` delegate to the batch core
without perturbing seeded experiment results.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lsh.grid import Grid
    from repro.lsh.transforms import TransformEnsemble
    from repro.lsh.zorder import ZOrderCurve


class StackedEnsemble:
    """Columnar view of a :class:`TransformEnsemble` plus its grids.

    Holds the ``t`` direction matrices stacked into one ``(t*s, r)``
    block and the grid bounds/cell widths as ``(t, s)`` arrays.  The
    view is derived state: rebuild it (predictors do, via their
    ``_rebuild_stacked`` hook) whenever the underlying transforms or
    grids are replaced wholesale, e.g. by persistence restore.
    """

    def __init__(
        self,
        ensemble: "TransformEnsemble",
        grids: "list[Grid]",
        curve: "ZOrderCurve | None" = None,
    ) -> None:
        transforms = list(ensemble)
        if len(transforms) != len(grids):
            raise ConfigurationError(
                "stacked ensemble needs one grid per transform"
            )
        first = transforms[0]
        self.count = len(transforms)
        self.input_dims = first.input_dims
        self.output_dims = first.output_dims
        self.radius = first.radius
        self.cube_half_width = first.cube_half_width
        for transform in transforms:
            if (
                transform.input_dims != self.input_dims
                or transform.output_dims != self.output_dims
            ):
                raise ConfigurationError(
                    "ensemble members must share input/output dimensions"
                )
        self.directions = np.concatenate(
            [transform.directions for transform in transforms], axis=0
        )
        self.translations = np.concatenate(
            [transform.translations for transform in transforms]
        )
        self.grid_lo = np.stack([grid.lo for grid in grids])
        self.grid_span = np.stack([grid.hi - grid.lo for grid in grids])
        self.cell_widths = np.stack([grid.cell_widths for grid in grids])
        self.resolution = grids[0].resolution
        self.curve = curve

    def transform(self, points: np.ndarray) -> np.ndarray:
        """Unit-cube points ``(m, r)`` to ``(t, m, s)`` coordinates.

        Stages 1-3 (center, scale, radial stretch) depend only on the
        input dimensionality, so they run once and feed all ``t``
        projections; stages 4-5 run as one stacked multiply-sum.
        """
        points = np.asarray(points, dtype=float)
        centered = (points - 0.5) * (2.0 * self.cube_half_width)
        norms = np.linalg.norm(centered, axis=1)
        max_components = np.abs(centered).max(axis=1)
        factors = np.ones_like(norms)
        nonzero = norms > 0.0
        factors[nonzero] = (
            self.radius
            * max_components[nonzero]
            / (self.cube_half_width * norms[nonzero])
        )
        stretched = centered * factors[:, None]
        # Explicit multiply + trailing-axis sum instead of BLAS `@`:
        # gemv/gemm may round dot products differently across batch
        # shapes, and the parity contract forbids that.
        projected = (
            stretched[:, None, :] * self.directions[None, :, :]
        ).sum(axis=2)
        projected += self.translations
        return projected.reshape(
            points.shape[0], self.count, self.output_dims
        ).transpose(1, 0, 2)

    def cell_ids(self, points: np.ndarray) -> np.ndarray:
        """Flat (row-major) grid cell ids ``(t, m)`` of each point."""
        transformed = self.transform(points)
        relative = (
            transformed - self.grid_lo[:, None, :]
        ) / self.cell_widths[:, None, :]
        coords = np.clip(
            relative.astype(np.int64), 0, self.resolution - 1
        )
        ids = np.zeros(coords.shape[:2], dtype=np.int64)
        for axis in range(self.output_dims):
            ids = ids * self.resolution + coords[..., axis]
        return ids

    def z_values(self, points: np.ndarray) -> np.ndarray:
        """Normalized z-order values ``(t, m)`` of each point."""
        if self.curve is None:
            raise ConfigurationError(
                "stacked ensemble was built without a z-order curve"
            )
        transformed = self.transform(points)
        unit = (
            transformed - self.grid_lo[:, None, :]
        ) / self.grid_span[:, None, :]
        unit = np.clip(unit, 0.0, np.nextafter(1.0, 0.0))
        flat = unit.reshape(-1, self.output_dims)
        return self.curve.linearize(flat).reshape(self.count, -1)
