"""Amortized batch-predict throughput on the hot path.

One Q1 session is warmed through the normal online workflow, then the
same probe batch is pushed through the struct-of-arrays
``predict_batch`` primitive and, for comparison, the scalar
``predict`` loop it replaced as the hot path.  Batch and scalar paths
are bit-for-bit identical in their decisions (the parity suite proves
it), so this bench isolates pure throughput.

The acceptance bar from the vectorization work: the batch path must
amortize to at most ``TARGET_US`` microseconds per instance; the hard
assert fails at 2x that so shared CI runners warn rather than flake.
The machine-readable snapshot lands in
``benchmarks/results/BENCH_predict.json``.
"""

import warnings
from time import perf_counter

from _bench_utils import write_bench_json, write_result
from repro.config import PPCConfig
from repro.core.framework import TemplateSession
from repro.tpch import plan_space_for
from repro.workload import RandomTrajectoryWorkload

WARMUP = 500
PROBES = 1500
REPEATS = 5

#: Amortized per-instance budget for the batch path (the PR gate).
TARGET_US = 150.0
#: Hard-fail ceiling: 2x the target absorbs shared-runner noise.
HARD_LIMIT_US = 2.0 * TARGET_US


def _warmed_session() -> TemplateSession:
    config = PPCConfig(
        confidence_threshold=0.8,
        mean_invocation_probability=0.05,
        drift_response=False,
    )
    session = TemplateSession(plan_space_for("Q1"), config, seed=17)
    warm = RandomTrajectoryWorkload(2, spread=0.02, seed=5).generate(WARMUP)
    for x in warm:
        session.execute(x)
    return session


def _measure() -> dict[str, float]:
    """Best-of-N amortized per-instance seconds, batch vs scalar."""
    session = _warmed_session()
    probes = RandomTrajectoryWorkload(2, spread=0.02, seed=6).generate(
        PROBES
    )
    online = session.online

    # Predictions do not mutate synopses, so the same warmed state
    # serves every repeat and the minimum is a like-for-like best-of.
    best_batch = float("inf")
    best_scalar = float("inf")
    batch_predictions = None
    scalar_predictions = None
    for __ in range(REPEATS):
        t0 = perf_counter()
        batch_predictions = online.predict_batch(probes)
        best_batch = min(best_batch, (perf_counter() - t0) / PROBES)

        t0 = perf_counter()
        scalar_predictions = [online.predict(x) for x in probes]
        best_scalar = min(best_scalar, (perf_counter() - t0) / PROBES)

    # Sanity: the two paths agree bit-for-bit on this workload.
    assert batch_predictions == scalar_predictions
    return {"batch": best_batch, "scalar": best_scalar}


def test_predict_throughput(benchmark):
    best = benchmark.pedantic(_measure, rounds=1, iterations=1)
    batch_us = best["batch"] * 1e6
    scalar_us = best["scalar"] * 1e6
    speedup = scalar_us / batch_us if batch_us > 0.0 else float("inf")
    lines = [
        "Amortized predict throughput, batch primitive vs scalar loop",
        f"(Q1, {WARMUP} warmup instances, {PROBES} probes, best of "
        f"{REPEATS})",
        "",
        f"batch : {batch_us:8.2f} us/instance",
        f"scalar: {scalar_us:8.2f} us/instance",
        f"speedup: {speedup:.1f}x",
        f"gate: target <= {TARGET_US:.0f} us (warn), "
        f"hard fail > {HARD_LIMIT_US:.0f} us",
    ]
    write_result("predict_throughput", lines)
    write_bench_json(
        "predict",
        {
            "bench": "predict_throughput",
            "workload": {
                "template": "Q1",
                "warmup": WARMUP,
                "probes": PROBES,
                "repeats": REPEATS,
            },
            "batch_us_per_instance": batch_us,
            "scalar_us_per_instance": scalar_us,
            "speedup": speedup,
            "gate": {
                "target_us": TARGET_US,
                "hard_limit_us": HARD_LIMIT_US,
            },
        },
    )
    if batch_us > TARGET_US:
        warnings.warn(
            f"batch predict amortized {batch_us:.1f} us/instance "
            f"exceeds the {TARGET_US:.0f} us target",
            stacklevel=1,
        )
    # Hard bar: 2x the target tolerates runner noise but still catches
    # a real regression back toward the scalar baseline.
    assert batch_us <= HARD_LIMIT_US
