"""Plan-cache behavior under sustained eviction pressure.

``tests/core/test_cache.py`` pins the small-scale semantics; these
tests drive thousands of plans (and a fleet of per-template caches)
through the eviction policy to pin the properties the cache_pressure
scenario's contract asserts end-to-end: capacity is never exceeded,
eviction accounting stays exact under churn, the MRU fallback answer
survives any amount of turnover, and caching potential (not just
recency) picks the victims.
"""

from __future__ import annotations

import pytest

from repro.core.cache import PlanCache
from repro.core.monitor import PerformanceMonitor
from repro.obs import MetricsRegistry, names as metric_names


class _FakePlan:
    def __init__(self, name):
        self.fingerprint = name


class TestChurn:
    def test_thousands_of_plans_never_exceed_capacity(self):
        cache = PlanCache(capacity=32)
        for plan_id in range(5000):
            cache.put(plan_id, _FakePlan(plan_id))
            assert len(cache) <= 32
        assert len(cache) == 32
        assert cache.evictions == 5000 - 32
        # LRU churn keeps exactly the newest plans resident.
        for plan_id in range(5000 - 32, 5000):
            assert plan_id in cache

    def test_eviction_accounting_is_exact_under_interleaved_churn(self):
        cache = PlanCache(capacity=8)
        hits = misses = 0
        for round_number in range(1000):
            plan_id = round_number % 40
            if cache.get(plan_id) is None:
                misses += 1
                cache.put(plan_id, _FakePlan(plan_id))
            else:
                hits += 1
        assert cache.hits == hits
        assert cache.misses == misses
        assert cache.hits + cache.misses == 1000
        # Every miss after the first 8 inserts forced an eviction.
        assert cache.evictions == misses - 8
        assert cache.hit_rate == pytest.approx(hits / 1000)

    def test_refreshing_resident_plans_never_evicts(self):
        cache = PlanCache(capacity=4)
        for plan_id in range(4):
            cache.put(plan_id, _FakePlan(plan_id))
        for __ in range(1000):
            for plan_id in range(4):
                cache.put(plan_id, _FakePlan(plan_id))
        assert cache.evictions == 0
        assert len(cache) == 4


class TestMRUFallback:
    def test_most_recent_survives_any_turnover(self):
        cache = PlanCache(capacity=2)
        for plan_id in range(3000):
            cache.put(plan_id, _FakePlan(plan_id))
            assert cache.most_recent() == plan_id

    def test_most_recent_tracks_gets_not_just_puts(self):
        cache = PlanCache(capacity=4)
        for plan_id in range(4):
            cache.put(plan_id, _FakePlan(plan_id))
        cache.get(1)
        assert cache.most_recent() == 1

    def test_most_recent_does_not_touch_accounting(self):
        cache = PlanCache(capacity=2)
        cache.put(7, _FakePlan("a"))
        before = (cache.hits, cache.misses)
        for __ in range(100):
            cache.most_recent()
        assert (cache.hits, cache.misses) == before

    def test_most_recent_empty_and_after_clear(self):
        cache = PlanCache(capacity=2)
        assert cache.most_recent() is None
        cache.put(1, _FakePlan("a"))
        cache.clear()
        assert cache.most_recent() is None
        assert len(cache) == 0


class TestCachingPotentialUnderPressure:
    def test_low_precision_plans_are_sacrificed_first(self):
        """Under churn with a monitor attached, the plans whose
        predictions keep failing lose their slots even when recently
        touched; the reliable plan stays resident throughout."""
        monitor = PerformanceMonitor(window=50)
        cache = PlanCache(capacity=4, monitor=monitor)
        for plan_id in range(4):
            cache.put(plan_id, _FakePlan(plan_id))
        for __ in range(50):
            monitor.record_prediction(0, correct=True)
            monitor.record_prediction(1, correct=False)
        for plan_id in range(100, 1100):
            monitor.record_prediction(plan_id, correct=False)
            cache.put(plan_id, _FakePlan(plan_id))
            assert 0 in cache, "the proven plan must never be the victim"
        assert 1 not in cache
        assert cache.evictions == 1000

    def test_graceful_degradation_thrashing_still_serves(self):
        """A capacity-1 cache under pure thrash still answers every
        fallback request and keeps exact accounting — degraded, never
        broken."""
        cache = PlanCache(capacity=1)
        for plan_id in range(2000):
            assert cache.get(plan_id) is None
            cache.put(plan_id, _FakePlan(plan_id))
            assert cache.most_recent() == plan_id
        assert cache.misses == 2000
        assert cache.evictions == 1999
        assert cache.hit_rate == 0.0


class TestManyTemplates:
    def test_per_template_cache_fleet_stays_bounded(self):
        """A thousand templates, each with its own small cache and
        metric stream: per-template accounting stays independent and
        the shared registry aggregates every eviction."""
        registry = MetricsRegistry()
        caches = {
            f"T{n}": PlanCache(
                capacity=2,
                metrics=registry,
                template=f"T{n}",
            )
            for n in range(1000)
        }
        for name, cache in caches.items():
            for plan_id in range(5):
                cache.put(plan_id, _FakePlan((name, plan_id)))
        for cache in caches.values():
            assert len(cache) == 2
            assert cache.evictions == 3
        evictions = sum(
            value
            for labels, value in registry.counter_series(
                metric_names.CACHE_EVENTS_TOTAL
            )
            if labels.get("event") == "eviction"
        )
        assert evictions == 3000
