"""Cache lineage forensics: time-travel over the lifecycle journal.

:class:`LineageEngine` replays the typed events of
:mod:`repro.obs.events` to reconstruct, at any event offset, what the
per-template plan cache *was* and *why* — the question the metrics
layer cannot answer ("why is plan P cached for template T right now,
and which insert/feedback/drift event put it there?").

Reconstruction rules (DESIGN.md §12 maps each to its paper mechanism):

* ``point_inserted`` with an optimizer-invocation provenance
  (``null_prediction`` / ``exploration`` / ``cache_miss`` /
  ``negative_feedback``) marks a cache admission — the session puts
  the optimizer's plan right after the synopsis insert.  A
  ``positive_feedback`` provenance is a synopsis-only insert and does
  not touch the cache.
* ``cache_evicted`` removes its plan (the event carries the ``prec_k``
  / ``rec_k`` scores that justified the choice of victim).
* ``drift_drop`` clears the whole cache — the Section IV-E drift
  response drops the synopsis, resets the monitor and empties the
  cache in one stroke.
* ``histogram_built`` / ``histogram_rebuilt`` advance the synopsis
  generation counter.

The engine is a pure function of the event list: no RNG, no clock, no
imports from the core pipeline, so it works identically on a live
journal and on a JSONL export loaded back from disk.
"""

from __future__ import annotations

from typing import Any

#: ``point_inserted`` provenances that coincide with a cache admission
#: (every optimizer invocation both inserts the labeled point and puts
#: the returned plan).
CACHING_PROVENANCES = frozenset(
    {"null_prediction", "exploration", "cache_miss", "negative_feedback"}
)


class LineageEngine:
    """Provenance queries over an ordered lifecycle event stream."""

    def __init__(self, events: "list[dict[str, Any]]") -> None:
        self._events = sorted(events, key=lambda e: e["seq"])

    @property
    def events(self) -> "list[dict[str, Any]]":
        return list(self._events)

    @property
    def last_seq(self) -> "int | None":
        return self._events[-1]["seq"] if self._events else None

    def templates(self) -> "list[str]":
        return sorted({event["template"] for event in self._events})

    # ------------------------------------------------------------------
    # Time travel
    # ------------------------------------------------------------------
    def state_at(
        self, template: str, at: "int | None" = None
    ) -> "dict[str, Any]":
        """Reconstruct ``template``'s cache state after event ``at``
        (inclusive; ``None`` = the full stream)."""
        cached: "dict[int, dict[str, Any]]" = {}
        generation = 0
        last_drift: "dict[str, Any] | None" = None
        evictions = 0
        for event in self._events:
            if at is not None and event["seq"] > at:
                break
            if event["template"] != template:
                continue
            kind = event["kind"]
            if (
                kind == "point_inserted"
                and event.get("provenance") in CACHING_PROVENANCES
            ):
                cached[event["plan"]] = event
            elif kind == "cache_evicted":
                cached.pop(event.get("plan"), None)
                evictions += 1
            elif kind == "drift_drop":
                cached.clear()
                last_drift = event
            elif kind in ("histogram_built", "histogram_rebuilt"):
                generation += 1
        return {
            "template": template,
            "at": at if at is not None else self.last_seq,
            "cached": {
                plan: {
                    "since": admit["seq"],
                    "provenance": admit.get("provenance"),
                    "trace": admit.get("trace"),
                }
                for plan, admit in sorted(cached.items())
            },
            "generation": generation,
            "evictions": evictions,
            "last_drift": None if last_drift is None else last_drift["seq"],
        }

    # ------------------------------------------------------------------
    # Provenance
    # ------------------------------------------------------------------
    def why(
        self, template: str, plan: int, at: "int | None" = None
    ) -> "dict[str, Any]":
        """Why ``plan`` is (or is not) cached for ``template`` at
        event offset ``at`` — verdict, explanation, and the full chain
        of lifecycle events that touched the plan."""
        history = [
            event
            for event in self._events
            if (at is None or event["seq"] <= at)
            and event["template"] == template
            and (event.get("plan") == plan or event["kind"] == "drift_drop")
        ]
        state = self.state_at(template, at)
        entry = state["cached"].get(plan)
        verdict: "dict[str, Any]" = {
            "template": template,
            "plan": plan,
            "at": state["at"],
            "cached": entry is not None,
            "admitted": entry,
            "history": history,
        }
        if entry is not None:
            corrections = [
                event
                for event in history
                if event["kind"] == "point_inserted"
                and event.get("provenance") == "negative_feedback"
                and event["seq"] > entry["since"]
            ]
            explanation = (
                f"plan {plan} is cached for {template}: admitted at seq "
                f"{entry['since']} via {entry['provenance']}"
            )
            if corrections:
                explanation += (
                    f"; corrected by negative feedback at seq "
                    f"{corrections[-1]['seq']}"
                )
        elif not history:
            explanation = (
                f"no lifecycle event ever touched plan {plan} "
                f"for {template}"
            )
        else:
            terminal = history[-1]
            if terminal["kind"] == "drift_drop":
                explanation = (
                    f"plan {plan} is not cached: dropped with the whole "
                    f"cache by the drift response at seq "
                    f"{terminal['seq']} (precision "
                    f"{terminal.get('precision')}, recall "
                    f"{terminal.get('recall')})"
                )
            elif terminal["kind"] == "cache_evicted":
                explanation = (
                    f"plan {plan} is not cached: evicted at seq "
                    f"{terminal['seq']} (prec_k="
                    f"{terminal.get('prec_k')}, rec_k="
                    f"{terminal.get('rec_k')})"
                )
            else:
                explanation = (
                    f"plan {plan} is not cached: last touched by "
                    f"{terminal['kind']} at seq {terminal['seq']} "
                    "without a surviving admission"
                )
        verdict["explanation"] = explanation
        return verdict

    def timeline(
        self,
        template: "str | None" = None,
        kind: "str | None" = None,
        at: "int | None" = None,
    ) -> "list[dict[str, Any]]":
        """The (filtered) event stream up to offset ``at``."""
        return [
            event
            for event in self._events
            if (at is None or event["seq"] <= at)
            and (template is None or event["template"] == template)
            and (kind is None or event["kind"] == kind)
        ]


__all__ = ["CACHING_PROVENANCES", "LineageEngine"]
