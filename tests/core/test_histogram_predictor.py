"""APPROXIMATE-LSH-HISTOGRAMS: z-order synopses in histograms."""

import numpy as np
import pytest

from repro.core.histogram_predictor import HistogramPredictor, ball_volume
from repro.core.point import SamplePool
from repro.exceptions import ConfigurationError, PredictionError


def _pool():
    pool = SamplePool(2)
    rng = np.random.default_rng(0)
    for x in rng.uniform(0.0, 0.45, size=(100, 2)):
        pool.add(x, 0, cost=5.0)
    for x in rng.uniform(0.55, 1.0, size=(100, 2)):
        pool.add(x, 1, cost=9.0)
    return pool


class TestBallVolume:
    def test_unit_circle(self):
        assert ball_volume(1.0, 2) == pytest.approx(np.pi)

    def test_interval(self):
        assert ball_volume(0.5, 1) == pytest.approx(1.0)


class TestStaticFit:
    @pytest.mark.parametrize("kind", ["maxdiff", "equidepth", "equiwidth"])
    def test_cluster_interiors(self, kind):
        predictor = HistogramPredictor(
            _pool(), transforms=5, radius=0.1, histogram_kind=kind, seed=1
        )
        assert predictor.predict([0.2, 0.2]).plan_id == 0
        assert predictor.predict([0.8, 0.8]).plan_id == 1

    def test_static_fit_rejects_insert(self):
        predictor = HistogramPredictor(_pool(), histogram_kind="maxdiff", seed=1)
        with pytest.raises(PredictionError):
            predictor.insert(np.array([0.5, 0.5]), 0)

    def test_bucket_budget_respected(self):
        predictor = HistogramPredictor(
            _pool(), max_buckets=10, histogram_kind="maxdiff", seed=1
        )
        for row in predictor._histograms:
            for histogram in row:
                assert histogram.bucket_count <= 10

    def test_space_bounded_by_formula(self):
        predictor = HistogramPredictor(
            _pool(), transforms=5, max_buckets=40, seed=1
        )
        assert predictor.space_bytes() <= 5 * 2 * 40 * 12

    def test_estimated_cost_near_cluster_cost(self):
        predictor = HistogramPredictor(_pool(), radius=0.1, seed=1)
        estimated = predictor.estimated_cost(np.array([0.2, 0.2]), 0)
        assert estimated == pytest.approx(5.0, rel=0.01)


class TestIncrementalMode:
    def test_learns_from_insertions(self):
        predictor = HistogramPredictor(
            SamplePool(2),
            plan_count=2,
            histogram_kind="incremental",
            confidence_threshold=0.5,
            seed=1,
        )
        assert predictor.predict([0.3, 0.3]) is None
        for __ in range(8):
            predictor.insert(np.array([0.3, 0.3]), 1, cost=4.0)
        assert predictor.predict([0.3, 0.3]).plan_id == 1
        assert predictor.total_points == 8

    def test_drop_resets_everything(self):
        predictor = HistogramPredictor(
            _pool(), histogram_kind="incremental", confidence_threshold=0.5,
            seed=1,
        )
        assert predictor.predict([0.2, 0.2]) is not None
        predictor.drop()
        assert predictor.total_points == 0
        assert predictor.predict([0.2, 0.2]) is None
        # After dropping, insertion works again.
        predictor.insert(np.array([0.2, 0.2]), 0, cost=1.0)
        assert predictor.total_points == 1


class TestAtomicInsert:
    def test_static_reject_leaves_counts_untouched(self):
        predictor = HistogramPredictor(
            _pool(), histogram_kind="maxdiff", seed=1
        )
        before = [
            [h.range_count(-1.0, 2.0) for h in row]
            for row in predictor._histograms
        ]
        with pytest.raises(PredictionError):
            predictor.insert(np.array([0.5, 0.5]), 0)
        after = [
            [h.range_count(-1.0, 2.0) for h in row]
            for row in predictor._histograms
        ]
        assert after == before
        assert predictor.total_points == 200
        assert predictor.total_mass == 200.0

    def test_mixed_insertability_mutates_nothing(self):
        """A non-insertable histogram in any transform row must abort
        the insert before earlier transforms are touched."""
        from repro.histograms import MaxDiffHistogram

        predictor = HistogramPredictor(
            SamplePool(2),
            plan_count=2,
            histogram_kind="incremental",
            seed=1,
        )
        predictor.insert(np.array([0.3, 0.3]), 0, cost=1.0)
        # Sabotage the LAST transform's plan-0 histogram: the loop
        # would mutate every earlier transform before hitting it.
        static = MaxDiffHistogram.build(
            np.array([]), np.array([]), bucket_count=8
        )
        predictor._histograms[-1][0] = static
        before = [
            row[0].range_count(-1.0, 2.0)
            for row in predictor._histograms[:-1]
        ]
        with pytest.raises(PredictionError):
            predictor.insert(np.array([0.3, 0.3]), 0, cost=1.0)
        after = [
            row[0].range_count(-1.0, 2.0)
            for row in predictor._histograms[:-1]
        ]
        assert after == before
        assert predictor.total_points == 1
        assert predictor.total_mass == 1.0

    def test_nonpositive_weight_rejected_without_mutation(self):
        predictor = HistogramPredictor(
            SamplePool(2),
            plan_count=2,
            histogram_kind="incremental",
            seed=1,
        )
        for bad in (0.0, -0.5):
            with pytest.raises(PredictionError):
                predictor.insert(np.array([0.3, 0.3]), 0, weight=bad)
        assert predictor.total_points == 0
        assert predictor.total_mass == 0.0


class TestCountVersusMass:
    def test_weighted_inserts_keep_point_count_integral(self):
        predictor = HistogramPredictor(
            SamplePool(2),
            plan_count=2,
            histogram_kind="incremental",
            seed=1,
        )
        predictor.insert(np.array([0.3, 0.3]), 0, cost=1.0)
        predictor.insert(np.array([0.31, 0.31]), 0, cost=1.0)
        predictor.insert(np.array([0.32, 0.32]), 0, cost=1.0, weight=0.25)
        assert predictor.total_points == 3
        assert isinstance(predictor.total_points, int)
        assert predictor.total_mass == pytest.approx(2.25)

    def test_static_build_counts_pool_points(self):
        predictor = HistogramPredictor(_pool(), histogram_kind="maxdiff", seed=1)
        assert predictor.total_points == 200
        assert isinstance(predictor.total_points, int)
        assert predictor.total_mass == pytest.approx(200.0)

    def test_drop_resets_both(self):
        predictor = HistogramPredictor(
            _pool(), histogram_kind="incremental", seed=1
        )
        predictor.insert(np.array([0.3, 0.3]), 0, weight=0.5)
        predictor.drop()
        assert predictor.total_points == 0
        assert predictor.total_mass == 0.0


class TestNoiseElimination:
    def test_sparse_support_suppressed(self):
        pool = _pool()
        strict = HistogramPredictor(
            pool, radius=0.1, noise_fraction=0.5, seed=1,
            confidence_threshold=0.0,
        )
        lenient = HistogramPredictor(
            pool, radius=0.1, noise_fraction=None, seed=1,
            confidence_threshold=0.0,
        )
        x = [0.2, 0.2]
        # A neighborhood holding well under half of all points is
        # suppressed by the absurdly strict threshold but not without it.
        assert strict.predict(x) is None
        assert lenient.predict(x) is not None


class TestValidation:
    def test_resolution_must_be_power_of_two(self):
        with pytest.raises(ConfigurationError):
            HistogramPredictor(_pool(), resolution=10)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            HistogramPredictor(_pool(), histogram_kind="wavelet")

    def test_empty_pool_needs_plan_count(self):
        with pytest.raises(PredictionError):
            HistogramPredictor(SamplePool(2))

    def test_bad_radius(self):
        with pytest.raises(PredictionError):
            HistogramPredictor(_pool(), radius=-1.0)

    def test_high_dimension_bits_clamped(self):
        """dims*bits must stay within the 62-bit Morton budget."""
        pool = SamplePool(6)
        rng = np.random.default_rng(3)
        for x in rng.uniform(0, 1, size=(30, 6)):
            pool.add(x, 0)
        predictor = HistogramPredictor(pool, resolution=4096, seed=1)
        assert predictor.curve.dims * predictor.curve.bits <= 62


class TestAgainstOracle:
    def test_precision_on_q1(self, q1_space, q1_pool, q1_test):
        predictor = HistogramPredictor(
            q1_pool, radius=0.05, confidence_threshold=0.7, seed=1
        )
        test, truth = q1_test
        correct = answered = 0
        for i in range(test.shape[0]):
            prediction = predictor.predict(test[i])
            if prediction is None:
                continue
            answered += 1
            correct += prediction.plan_id == truth[i]
        assert answered > test.shape[0] * 0.4
        assert correct / answered > 0.95
