"""Figure 8: BASELINE vs NAIVE vs APPROXIMATE-LSH.

Reproduces the approximation ladder on the two extremes the paper
highlights — Q1 (2 parameters, NAIVE survives) and Q7 (6 parameters,
NAIVE collapses while APPROXIMATE-LSH stays close to BASELINE) —
across sample sizes |X| in {200 .. 6400}.  Times one LSH prediction.
"""

import numpy as np

from _bench_utils import write_result
from repro.core.lsh_predictor import LshPredictor
from repro.experiments.approximation import run_approximation_ladder
from repro.tpch import plan_space_for
from repro.workload import sample_labeled_pool, sample_points


def _render(template: str, results) -> list[str]:
    lines = [
        f"-- {template} --",
        f"{'|X|':>6s} {'algorithm':18s} {'precision':>10s} {'recall':>8s} "
        f"{'bytes':>10s}",
    ]
    for row in results:
        lines.append(
            f"{row.sample_size:6d} {row.algorithm:18s} "
            f"{row.precision:10.3f} {row.recall:8.3f} {row.space_bytes:10,d}"
        )
    return lines


def test_fig08_approximation_ladder(benchmark):
    q1 = run_approximation_ladder(template="Q1", seed=7)
    q7 = run_approximation_ladder(
        template="Q7",
        sample_sizes=(200, 400, 800, 1600, 3200),
        test_size=600,
        seed=7,
    )
    lines = [
        "Figure 8 — precision/recall of BASELINE vs NAIVE vs",
        "APPROXIMATE-LSH (gamma = 0.7, d = 0.05, t = 5)",
        "",
    ]
    lines += _render("Q1", q1)
    lines.append("")
    lines += _render("Q7", q7)
    write_result("fig08_approximation", lines)

    def mean_precision(rows, algorithm):
        cells = [r.precision for r in rows if r.algorithm == algorithm]
        return float(np.mean(cells))

    # Paper shape: on the high-dimensional template NAIVE's precision is
    # clearly below APPROXIMATE-LSH, which stays close to BASELINE.
    assert mean_precision(q7, "NAIVE") < mean_precision(q7, "APPROXIMATE-LSH")
    assert (
        mean_precision(q7, "APPROXIMATE-LSH")
        > mean_precision(q7, "BASELINE") - 0.15
    )

    space = plan_space_for("Q1")
    pool = sample_labeled_pool(space, 1600, seed=7)
    predictor = LshPredictor(pool, transforms=5, resolution=8, seed=1)
    point = sample_points(2, 1, seed=3)[0]
    benchmark(predictor.predict, point)
