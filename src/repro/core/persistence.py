"""Predictor persistence: crash-safe save and restore of the synopses.

A plan cache earns its keep across sessions: the synopses learned
during one day's workload should survive a server restart.  This
module serializes an :class:`~repro.core.histogram_predictor.HistogramPredictor`
(the production structure — a few kilobytes of histogram buckets plus
the random transform parameters) to a plain JSON-compatible dict and
restores it exactly: the reloaded predictor returns bit-identical
predictions, because the random projections, translations, bucket
contents and counters are all captured.

On disk, format **v2** wraps the state in an envelope carrying a schema
version and a CRC32 checksum of the canonical payload, and every write
is atomic: temp file in the target directory, flush + fsync, then
``os.replace``, optionally rotating the previous generation(s) to
``<name>.bak1``, ``<name>.bak2``, …  A crash at any instant therefore
leaves either the old complete file or the new complete file — never a
torn hybrid.  :func:`load_predictor` detects truncation, bit flips and
version mismatches; with ``strict=False`` it walks the backup chain and
finally falls back to a caller-supplied cold predictor instead of
raising mid-boot.  Legacy v1 files (bare state dict, no envelope)
remain readable.
"""

from __future__ import annotations

import contextlib
import json
import os
import pathlib
import tempfile
import zlib
from collections.abc import Callable

import numpy as np

from repro.core.histogram_predictor import HistogramPredictor
from repro.core.point import SamplePool
from repro.exceptions import PersistenceError
from repro.histograms import IncrementalHistogram
from repro.histograms.base import Bucket
from repro.lsh.grid import Grid
from repro.lsh.transforms import PlanSpaceTransform

#: Current on-disk schema version (v1 = bare state dict, v2 = CRC
#: envelope around the same state).
STATE_VERSION = 2

#: Versions :func:`predictor_from_state` can reconstruct.
SUPPORTED_VERSIONS = (1, 2)

#: Envelope type marker, so a v2 file is self-identifying.
DOCUMENT_FORMAT = "repro-predictor"

#: Default number of rotated ``.bakN`` generations kept by
#: :func:`save_predictor`.
DEFAULT_BACKUPS = 1


def predictor_to_state(predictor: HistogramPredictor) -> dict:
    """Capture a histogram predictor as a JSON-compatible dict."""
    transforms = []
    for transform in predictor.ensemble:
        transforms.append(
            {
                "input_dims": transform.input_dims,
                "output_dims": transform.output_dims,
                "resolution": transform.resolution,
                "directions": transform.directions.tolist(),
                "translations": transform.translations.tolist(),
            }
        )
    histograms = [
        [
            {
                "max_buckets": getattr(
                    histogram, "max_buckets", predictor.max_buckets
                ),
                "buckets": [
                    [b.lo, b.hi, b.count, b.cost_sum]
                    for b in histogram.buckets
                ],
            }
            for histogram in row
        ]
        for row in predictor._histograms
    ]
    return {
        "version": STATE_VERSION,
        "dimensions": predictor.dimensions,
        "plan_count": predictor.plan_count,
        "resolution": predictor.grids[0].resolution,
        "max_buckets": predictor.max_buckets,
        "radius": predictor.radius,
        "confidence_threshold": predictor.confidence_threshold,
        "noise_fraction": predictor.noise_fraction,
        "aggregation": predictor.aggregation,
        "axis_weights": (
            None
            if predictor.axis_weights is None
            else predictor.axis_weights.tolist()
        ),
        "total_points": predictor.total_points,
        "total_mass": predictor.total_mass,
        "transforms": transforms,
        "histograms": histograms,
    }


def predictor_from_state(state: dict) -> HistogramPredictor:
    """Reconstruct a predictor saved by :func:`predictor_to_state`."""
    if state.get("version") not in SUPPORTED_VERSIONS:
        raise PersistenceError(
            f"unsupported predictor state version {state.get('version')!r}"
        )
    predictor = HistogramPredictor(
        SamplePool(state["dimensions"]),
        plan_count=state["plan_count"],
        transforms=len(state["transforms"]),
        resolution=state["resolution"],
        max_buckets=state["max_buckets"],
        radius=state["radius"],
        confidence_threshold=state["confidence_threshold"],
        noise_fraction=state["noise_fraction"],
        histogram_kind="incremental",
        output_dims=state["transforms"][0]["output_dims"],
        aggregation=state["aggregation"],
        axis_weights=(
            None
            if state["axis_weights"] is None
            else np.array(state["axis_weights"])
        ),
        seed=0,
    )
    # Replace the randomly initialized transforms with the saved ones,
    # and rebuild the grids (their bounds depend on the translations).
    predictor.ensemble.transforms = [
        PlanSpaceTransform.from_arrays(
            spec["input_dims"],
            spec["output_dims"],
            spec["resolution"],
            np.array(spec["directions"]),
            np.array(spec["translations"]),
        )
        for spec in state["transforms"]
    ]
    predictor.grids = [
        Grid(*transform.output_bounds, state["resolution"])
        for transform in predictor.ensemble
    ]
    # The stacked struct-of-arrays view caches directions and grid
    # bounds at construction; rebuild it or predictions would silently
    # use the discarded random transforms.
    predictor._rebuild_stacked()
    # Restore histogram contents.
    restored: list[list[IncrementalHistogram]] = []
    for row in state["histograms"]:
        new_row = []
        for spec in row:
            histogram = IncrementalHistogram(max_buckets=spec["max_buckets"])
            histogram.buckets = [
                Bucket(lo, hi, count, cost_sum)
                for lo, hi, count, cost_sum in spec["buckets"]
            ]
            histogram._los = [b.lo for b in histogram.buckets]
            histogram._mutated()
            new_row.append(histogram)
        restored.append(new_row)
    predictor._histograms = restored
    predictor.total_points = int(state["total_points"])
    # States written before the count/mass split carry only
    # ``total_points`` (which then included fractional weights).
    predictor.total_mass = float(
        state.get("total_mass", state["total_points"])
    )
    return predictor


# ----------------------------------------------------------------------
# The v2 document: CRC32 envelope around the canonical payload
# ----------------------------------------------------------------------
def _encode_document(state: dict) -> str:
    """Wrap a state dict in the self-checking v2 envelope."""
    payload = json.dumps(state, sort_keys=True, separators=(",", ":"))
    return json.dumps(
        {
            "format": DOCUMENT_FORMAT,
            "version": state.get("version", STATE_VERSION),
            "crc32": zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF,
            "payload": payload,
        }
    )


def _decode_document(text: str, source: str = "<memory>") -> dict:
    """Parse and verify a serialized predictor document.

    Accepts both the v2 envelope and a legacy v1 bare state dict;
    raises :class:`PersistenceError` on truncation, checksum mismatch,
    or an unsupported schema version.
    """
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise PersistenceError(
            f"{source}: truncated or corrupt predictor state (invalid JSON)"
        ) from exc
    if not isinstance(document, dict):
        raise PersistenceError(
            f"{source}: predictor state is not a JSON object"
        )
    if "payload" in document or document.get("format") == DOCUMENT_FORMAT:
        payload = document.get("payload")
        declared = document.get("crc32")
        if not isinstance(payload, str) or not isinstance(declared, int):
            raise PersistenceError(
                f"{source}: malformed predictor envelope"
            )
        actual = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
        if actual != declared:
            raise PersistenceError(
                f"{source}: checksum mismatch "
                f"(declared {declared:#010x}, actual {actual:#010x})"
            )
        try:
            state = json.loads(payload)
        except json.JSONDecodeError as exc:  # pragma: no cover - CRC
            raise PersistenceError(
                f"{source}: corrupt payload behind a valid checksum"
            ) from exc
    else:
        # Legacy v1: the bare state dict, no envelope, no checksum.
        state = document
    if not isinstance(state, dict):
        raise PersistenceError(f"{source}: predictor state is not a dict")
    if state.get("version") not in SUPPORTED_VERSIONS:
        raise PersistenceError(
            f"{source}: unsupported predictor state version "
            f"{state.get('version')!r}"
        )
    return state


def dumps_predictor(predictor: HistogramPredictor) -> str:
    """Serialize a predictor to the v2 document string."""
    return _encode_document(predictor_to_state(predictor))


def loads_predictor(text: str) -> HistogramPredictor:
    """Parse a document produced by :func:`dumps_predictor` (or a
    legacy v1 file's contents)."""
    return predictor_from_state(_decode_document(text))


# ----------------------------------------------------------------------
# Crash-safe file I/O
# ----------------------------------------------------------------------
def backup_path(path: "str | pathlib.Path", generation: int) -> pathlib.Path:
    """The ``generation``-th rotated backup of ``path`` (1 = newest)."""
    path = pathlib.Path(path)
    return path.with_name(f"{path.name}.bak{generation}")


def _rotate_backups(path: pathlib.Path, generations: int) -> None:
    """Shift ``path`` into the ``.bak`` chain, dropping the oldest."""
    oldest = backup_path(path, generations)
    if oldest.exists():
        oldest.unlink()
    for generation in range(generations - 1, 0, -1):
        source = backup_path(path, generation)
        if source.exists():
            os.replace(source, backup_path(path, generation + 1))
    os.replace(path, backup_path(path, 1))


def atomic_write_text(
    path: "str | pathlib.Path", text: str, backups: int = 0
) -> pathlib.Path:
    """Write ``text`` so a crash never leaves a torn file.

    The bytes land in a temp file in the target directory, are flushed
    and fsynced, and only then renamed over the target; with
    ``backups > 0`` the previous generation is rotated into the
    ``.bakN`` chain first (each step an atomic rename).
    """
    path = pathlib.Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    tmp = pathlib.Path(tmp_name)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        if backups > 0 and path.exists():
            _rotate_backups(path, backups)
        os.replace(tmp, path)
    except OSError as exc:
        raise PersistenceError(f"failed to write {path}: {exc}") from exc
    finally:
        if tmp.exists():  # pragma: no cover - only on failure paths
            tmp.unlink()
    # Persist the directory entry too (best effort: not every platform
    # or filesystem supports fsyncing a directory).
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return path
    try:
        with contextlib.suppress(OSError):  # pragma: no cover
            os.fsync(dir_fd)
    finally:
        os.close(dir_fd)
    return path


def append_text(path: "str | pathlib.Path", text: str) -> pathlib.Path:
    """Durably append ``text`` to ``path`` (creating it if missing).

    The journal-file primitive behind ``benchmarks/results/history.jsonl``:
    an append is flushed and fsynced before returning, so a crash can
    lose at most the line being written — never corrupt earlier lines.
    Appends are not atomic the way :func:`atomic_write_text` renames
    are; callers writing JSONL keep each record on one line so a torn
    tail is detectable (and skippable) on read.
    """
    path = pathlib.Path(path)
    try:
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
    except OSError as exc:
        raise PersistenceError(f"failed to append to {path}: {exc}") from exc
    return path


def save_predictor(
    predictor: HistogramPredictor,
    path: "str | pathlib.Path",
    backups: int = DEFAULT_BACKUPS,
) -> pathlib.Path:
    """Atomically write a predictor's state (v2 envelope + checksum),
    rotating up to ``backups`` previous generations to ``.bakN``."""
    if backups < 0:
        raise PersistenceError("backups must be >= 0")
    return atomic_write_text(path, dumps_predictor(predictor), backups)


def load_predictor(
    path: "str | pathlib.Path",
    strict: bool = True,
    cold: "HistogramPredictor | Callable[[], HistogramPredictor] | None" = None,
) -> HistogramPredictor:
    """Restore a predictor saved with :func:`save_predictor`.

    ``strict=True`` (the default) raises :class:`PersistenceError` on
    any damage — missing file, truncation, bit flips (checksum
    mismatch), or an unsupported schema version.  ``strict=False`` is
    the boot-time mode: on damage it walks the rotated ``.bakN``
    generations newest-first, and if none restores, returns ``cold``
    (a pre-built cold predictor, or the result of calling it when it
    is callable) instead of raising.  With no ``cold`` supplied,
    non-strict loading re-raises the primary file's error.
    """
    path = pathlib.Path(path)
    candidates = [path]
    if not strict:
        generation = 1
        while True:
            candidate = backup_path(path, generation)
            if not candidate.exists():
                break
            candidates.append(candidate)
            generation += 1
    primary_error: "PersistenceError | None" = None
    for candidate in candidates:
        try:
            text = candidate.read_text()
        except OSError as exc:
            error = PersistenceError(
                f"cannot read predictor state {candidate}: {exc}"
            )
            error.__cause__ = exc
            primary_error = primary_error or error
            continue
        try:
            return predictor_from_state(
                _decode_document(text, source=str(candidate))
            )
        except PersistenceError as exc:
            primary_error = primary_error or exc
            continue
        except (KeyError, TypeError, ValueError, IndexError) as exc:
            # Structurally mangled state that still parsed (possible
            # only for legacy v1 files, which carry no checksum).
            error = PersistenceError(
                f"{candidate}: malformed predictor state ({exc})"
            )
            error.__cause__ = exc
            primary_error = primary_error or error
            continue
    if not strict and cold is not None:
        return cold() if callable(cold) else cold
    raise primary_error  # type: ignore[misc]
