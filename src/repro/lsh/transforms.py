"""Randomized locality-preserving geometrical transformations.

Section IV-B of the paper transforms the plan-space points before grid
partitioning so that several independently randomized grids can be
intersected, de-correlating bucket-misalignment errors.  One transform
performs, in order:

1. translate the unit cube ``[0, 1]^r`` by ``(-0.5, ..., -0.5)``;
2. scale so the cube's vertices lie on the hypersphere ``S`` of radius
   ``lambda``, where ``lambda`` is chosen so that ``S`` has the same
   volume as ``[-1, 1]^r``;
3. stretch points radially until the cube fills the volume of ``S``
   (minimizing the shrinking effect of the projection step);
4. project onto ``s`` random unit vectors whose components are drawn
   from a standard normal distribution;
5. shift each projected coordinate by a translation drawn from a small
   interval (a fraction of one grid cell).

Unlike Tao et al.'s nearest-neighbor setting, plan caching tolerates
non-nearby points hashing together, so the paper keeps ``s = r`` for
low dimensions (``s < r`` only for dimensionality reduction) and draws
the translations from a much smaller interval.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ConfigurationError
from repro.rng import as_generator


def hypersphere_radius(dims: int) -> float:
    """Radius of the ``dims``-sphere with the volume of ``[-1, 1]^dims``.

    Solves ``c_r * radius**r = 2**r`` with
    ``c_r = pi**(r/2) / Gamma(r/2 + 1)``.
    """
    if dims < 1:
        raise ConfigurationError("dimension must be >= 1")
    unit_ball_volume = math.pi ** (dims / 2.0) / math.gamma(dims / 2.0 + 1.0)
    return 2.0 * unit_ball_volume ** (-1.0 / dims)


class PlanSpaceTransform:
    """One randomized transformation ``[0, 1]^r -> R^s``."""

    def __init__(
        self,
        input_dims: int,
        output_dims: int | None = None,
        resolution: int = 16,
        translation_fraction: float = 1.0,
        seed: "int | np.random.Generator | None" = None,
    ) -> None:
        if input_dims < 1:
            raise ConfigurationError("input_dims must be >= 1")
        self.input_dims = input_dims
        self.output_dims = output_dims if output_dims is not None else input_dims
        if self.output_dims < 1 or self.output_dims > input_dims:
            raise ConfigurationError(
                "output_dims must lie in [1, input_dims] "
                "(s = r normally, s < r for dimensionality reduction)"
            )
        if resolution < 1:
            raise ConfigurationError("resolution must be >= 1")
        rng = as_generator(seed)

        self.radius = hypersphere_radius(input_dims)
        self.cube_half_width = self.radius / math.sqrt(input_dims)

        directions = rng.standard_normal((self.output_dims, input_dims))
        norms = np.linalg.norm(directions, axis=1, keepdims=True)
        self.directions = directions / norms

        # Projected coordinates lie in [-radius, radius]; the grid divides
        # that span into `resolution` cells, and translations are a small
        # fraction of one cell width.
        cell_width = 2.0 * self.radius / resolution
        self.translations = rng.uniform(
            0.0, translation_fraction * cell_width, size=self.output_dims
        )
        self.resolution = resolution

    @classmethod
    def from_arrays(
        cls,
        input_dims: int,
        output_dims: int,
        resolution: int,
        directions: np.ndarray,
        translations: np.ndarray,
    ) -> "PlanSpaceTransform":
        """Reconstruct a transform from persisted direction/translation
        arrays (exact round-trip for predictor serialization)."""
        transform = cls(
            input_dims, output_dims=output_dims, resolution=resolution, seed=0
        )
        directions = np.asarray(directions, dtype=float)
        translations = np.asarray(translations, dtype=float)
        if directions.shape != (output_dims, input_dims):
            raise ConfigurationError("direction matrix shape mismatch")
        if translations.shape != (output_dims,):
            raise ConfigurationError("translation vector shape mismatch")
        transform.directions = directions
        transform.translations = translations
        return transform

    # ------------------------------------------------------------------
    # Pipeline stages (exposed separately for testing)
    # ------------------------------------------------------------------
    def center_and_scale(self, points: np.ndarray) -> np.ndarray:
        """Stages 1-2: map ``[0, 1]^r`` onto the hypercube inscribed in S."""
        points = np.asarray(points, dtype=float)
        if points.ndim == 1:
            points = points[None, :]
        if points.shape[1] != self.input_dims:
            raise ConfigurationError(
                f"expected {self.input_dims}-dimensional points"
            )
        return (points - 0.5) * (2.0 * self.cube_half_width)

    def stretch(self, centered: np.ndarray) -> np.ndarray:
        """Stage 3: radial stretch of the hypercube onto the ball.

        A point on the cube surface (``max_i |p_i| = cube_half_width``)
        lands exactly on the sphere of radius ``radius``; interior
        points scale linearly along their ray.
        """
        norms = np.linalg.norm(centered, axis=1)
        max_components = np.abs(centered).max(axis=1)
        factors = np.ones_like(norms)
        nonzero = norms > 0.0
        factors[nonzero] = (
            self.radius
            * max_components[nonzero]
            / (self.cube_half_width * norms[nonzero])
        )
        return centered * factors[:, None]

    def project(self, stretched: np.ndarray) -> np.ndarray:
        """Stages 4-5: random unit-vector projection plus translation.

        Computed as an explicit multiply + trailing-axis sum rather
        than a BLAS ``@``: gemv/gemm may round dot products differently
        depending on the batch shape, and the scalar/batch parity
        contract requires each point's projection to be bitwise
        independent of how many points it is batched with (and equal to
        the stacked fast path in :mod:`repro.lsh.stacked`).
        """
        projected = (
            stretched[:, None, :] * self.directions[None, :, :]
        ).sum(axis=2)
        return projected + self.translations

    def apply(self, points: np.ndarray) -> np.ndarray:
        """Full pipeline: unit-cube points ``(n, r)`` to ``(n, s)``."""
        return self.project(self.stretch(self.center_and_scale(points)))

    @property
    def output_bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Bounding box guaranteed to contain all transformed points."""
        margin = self.translations
        lo = np.full(self.output_dims, -self.radius)
        hi = np.full(self.output_dims, self.radius) + margin
        return lo, hi


class TransformEnsemble:
    """The ``t`` independent transforms used by APPROXIMATE-LSH.

    Each member has independently drawn directions and translations;
    the predictor intersects their density estimates by taking the
    median (Section IV-B).
    """

    def __init__(
        self,
        count: int,
        input_dims: int,
        output_dims: int | None = None,
        resolution: int = 16,
        translation_fraction: float = 1.0,
        seed: "int | np.random.Generator | None" = None,
    ) -> None:
        if count < 1:
            raise ConfigurationError("ensemble needs at least one transform")
        rng = as_generator(seed)
        self.transforms = [
            PlanSpaceTransform(
                input_dims,
                output_dims=output_dims,
                resolution=resolution,
                translation_fraction=translation_fraction,
                seed=child,
            )
            for child in rng.spawn(count)
        ]

    def __len__(self) -> int:
        return len(self.transforms)

    def __iter__(self):
        return iter(self.transforms)

    def apply_all(self, points: np.ndarray) -> list[np.ndarray]:
        """Transform the same points through every ensemble member."""
        return [transform.apply(points) for transform in self.transforms]
