"""Exception handlers that erase the failure they caught."""


def load(path):
    try:
        return open(path).read()
    except:
        return None


def probe(fn):
    try:
        fn()
    except Exception:
        pass
