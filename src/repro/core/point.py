"""Plan-space sample points and pools.

A labeled plan-space point records where in ``[0, 1]^r`` a query
instance landed, which plan the optimizer chose there, and what that
plan's execution cost was (Definition 3's workload-history tuple,
projected onto one template).  A :class:`SamplePool` is the growable
columnar store of such points that offline predictors are fitted from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class LabeledPoint:
    """One plan-space point with its optimal plan and execution cost."""

    coords: np.ndarray
    plan_id: int
    cost: float


class SamplePool:
    """Columnar, append-only pool of labeled plan-space points."""

    def __init__(self, dimensions: int) -> None:
        if dimensions < 1:
            raise ConfigurationError("dimensions must be >= 1")
        self.dimensions = dimensions
        self._coords: list[np.ndarray] = []
        self._plan_ids: list[int] = []
        self._costs: list[float] = []

    @classmethod
    def from_arrays(
        cls,
        coords: np.ndarray,
        plan_ids: np.ndarray,
        costs: "np.ndarray | None" = None,
    ) -> "SamplePool":
        coords = np.asarray(coords, dtype=float)
        if coords.ndim != 2:
            raise ConfigurationError("coords must be a 2-D array")
        plan_ids = np.asarray(plan_ids)
        if costs is None:
            costs = np.zeros(coords.shape[0])
        costs = np.asarray(costs, dtype=float)
        if not (coords.shape[0] == plan_ids.shape[0] == costs.shape[0]):
            raise ConfigurationError("coords, plan_ids and costs must align")
        pool = cls(coords.shape[1])
        for i in range(coords.shape[0]):
            pool.add(coords[i], int(plan_ids[i]), float(costs[i]))
        return pool

    def add(self, coords: np.ndarray, plan_id: int, cost: float = 0.0) -> None:
        coords = np.asarray(coords, dtype=float).reshape(-1)
        if coords.shape[0] != self.dimensions:
            raise ConfigurationError(
                f"expected {self.dimensions}-dimensional point"
            )
        self._coords.append(coords)
        self._plan_ids.append(int(plan_id))
        self._costs.append(float(cost))

    def __len__(self) -> int:
        return len(self._coords)

    @property
    def coords(self) -> np.ndarray:
        if not self._coords:
            return np.empty((0, self.dimensions))
        return np.vstack(self._coords)

    @property
    def plan_ids(self) -> np.ndarray:
        return np.asarray(self._plan_ids, dtype=np.int64)

    @property
    def costs(self) -> np.ndarray:
        return np.asarray(self._costs, dtype=float)

    def points(self) -> list[LabeledPoint]:
        return [
            LabeledPoint(c, p, v)
            for c, p, v in zip(self._coords, self._plan_ids, self._costs, strict=True)
        ]
