"""The paper's primary contribution: density-based plan prediction.

Four approximation levels (Section IV) plus the online variant and the
framework gluing them to a plan cache:

* :class:`~repro.core.baseline.BaselinePredictor` — Algorithm 1, exact.
* :class:`~repro.core.naive.NaivePredictor` — one fixed grid, O(1).
* :class:`~repro.core.lsh_predictor.LshPredictor` — median density over
  ``t`` randomized grids.
* :class:`~repro.core.histogram_predictor.HistogramPredictor` — z-order
  linearization stored in database histograms.
* :class:`~repro.core.online.OnlinePredictor` — empty-start incremental
  variant with exploration and negative feedback.
* :class:`~repro.core.framework.PPCFramework` — the Figure-1 workflow.
"""

from repro.core.baseline import BaselinePredictor
from repro.core.cache import PlanCache
from repro.core.confidence import (
    ConfidenceModel,
    FrequencyConfidenceModel,
    confidence_from_ratio,
)
from repro.core.feedback import CostFeedbackDetector
from repro.core.framework import ExecutionRecord, PPCFramework, TemplateSession
from repro.core.governor import GovernorAction, MemoryGovernor
from repro.core.histogram_predictor import HistogramPredictor
from repro.core.lsh_predictor import LshPredictor
from repro.core.monitor import PerformanceMonitor
from repro.core.naive import NaivePredictor
from repro.core.online import OnlinePredictor
from repro.core.persistence import (
    atomic_write_text,
    dumps_predictor,
    load_predictor,
    loads_predictor,
    predictor_from_state,
    predictor_to_state,
    save_predictor,
)
from repro.core.point import LabeledPoint, SamplePool
from repro.core.positive_feedback import PositiveFeedbackPolicy
from repro.core.predictor import PlanPredictor, Prediction
from repro.core.relevance import (
    ParameterRelevanceAnalyzer,
    apply_axis_weights,
)

__all__ = [
    "BaselinePredictor",
    "PlanCache",
    "ConfidenceModel",
    "FrequencyConfidenceModel",
    "GovernorAction",
    "MemoryGovernor",
    "ParameterRelevanceAnalyzer",
    "PositiveFeedbackPolicy",
    "apply_axis_weights",
    "atomic_write_text",
    "dumps_predictor",
    "load_predictor",
    "loads_predictor",
    "predictor_from_state",
    "predictor_to_state",
    "save_predictor",
    "confidence_from_ratio",
    "CostFeedbackDetector",
    "ExecutionRecord",
    "PPCFramework",
    "TemplateSession",
    "HistogramPredictor",
    "LshPredictor",
    "PerformanceMonitor",
    "NaivePredictor",
    "OnlinePredictor",
    "LabeledPoint",
    "SamplePool",
    "PlanPredictor",
    "Prediction",
]
