"""The nine project rules, RPR001–RPR009.

Each rule guards one convention the pipeline's correctness story leans
on (DESIGN.md §"Enforced invariants" maps them to the design decisions
they protect).  Rules are pure AST checks: no imports of the code under
analysis are performed, so the linter runs on broken or partial trees
and never executes repository code.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.core import ModuleContext, Rule, register_rule

#: Legacy module-level numpy RNG entry points (the shared global
#: ``RandomState``).  ``default_rng``/``Generator``/``SeedSequence``
#: are the sanctioned replacements and are deliberately absent.
_NUMPY_LEGACY_RNG = frozenset(
    {
        "beta",
        "binomial",
        "choice",
        "exponential",
        "gamma",
        "get_state",
        "normal",
        "permutation",
        "poisson",
        "rand",
        "randint",
        "randn",
        "random",
        "random_integers",
        "random_sample",
        "ranf",
        "sample",
        "seed",
        "set_state",
        "shuffle",
        "standard_normal",
        "uniform",
    }
)

#: Stdlib ``random`` calls that touch the shared global RNG.
_STDLIB_RNG = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gauss",
        "getrandbits",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)


@register_rule
class UnseededRandomness(Rule):
    """RPR001: all randomness flows through seeded ``Generator`` objects.

    The paper's evaluation depends on run-to-run reproducibility of the
    clustering/LSH pipeline; global RNG state (stdlib ``random``, the
    legacy ``np.random.*`` functions, or an argument-less
    ``default_rng()``) breaks that silently as soon as two call sites
    interleave differently.
    """

    code = "RPR001"
    title = "unseeded or global random number generation"
    rationale = (
        "thread numpy Generator objects spawned from SeedSequence "
        "(see repro.rng) instead of global RNG state"
    )

    def check(self, ctx: ModuleContext) -> "Iterator[tuple[ast.AST, str]]":
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.resolve(node.func)
            if dotted is None:
                continue
            if dotted.startswith("numpy.random."):
                leaf = dotted.rsplit(".", 1)[1]
                if leaf in _NUMPY_LEGACY_RNG:
                    yield (
                        node,
                        f"legacy global numpy RNG call {dotted!r}; use a "
                        "seeded numpy.random.Generator (repro.rng."
                        "as_generator / SeedSequence.spawn)",
                    )
                elif leaf == "default_rng" and not node.args:
                    yield (
                        node,
                        "default_rng() without a seed draws OS entropy; "
                        "pass a seed, SeedSequence, or spawned child",
                    )
            elif dotted.startswith("random."):
                leaf = dotted.rsplit(".", 1)[1]
                if leaf in _STDLIB_RNG:
                    yield (
                        node,
                        f"stdlib global RNG call {dotted!r}; use a seeded "
                        "numpy.random.Generator instead",
                    )


#: ``time`` functions that read or spend wall-clock time.  The
#: latency-profiling pair ``perf_counter``/``perf_counter_ns`` stays
#: allowed: metric timings measure durations, they never drive logic.
_BANNED_TIME = frozenset(
    {"monotonic", "monotonic_ns", "sleep", "time", "time_ns"}
)


@register_rule
class WallClockDiscipline(Rule):
    """RPR002: retry/breaker logic runs on the injected clock.

    Direct ``time.time``/``time.monotonic``/``time.sleep`` calls make
    fault storms slow and non-deterministic; every component takes an
    injectable clock whose defaults live in ``repro.resilience.clocks``
    (a ``VirtualClock`` replaces them in tests and storms).
    """

    code = "RPR002"
    title = "direct wall-clock access outside the clock modules"
    rationale = (
        "use the injected clock/sleep (defaults: "
        "repro.resilience.clocks.system_clock / system_sleep)"
    )
    exempt_modules = ("repro.resilience", "repro.simulation")

    def check(self, ctx: ModuleContext) -> "Iterator[tuple[ast.AST, str]]":
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in _BANNED_TIME:
                        yield (
                            node,
                            f"'from time import {alias.name}' bypasses the "
                            "injectable clock; import the default from "
                            "repro.resilience.clocks",
                        )
            elif isinstance(node, (ast.Attribute, ast.Name)):
                dotted = ctx.resolve(node)
                if (
                    dotted is not None
                    and dotted.startswith("time.")
                    and dotted.rsplit(".", 1)[1] in _BANNED_TIME
                ):
                    yield (
                        node,
                        f"direct {dotted!r} use; thread the injected "
                        "clock/sleep instead",
                    )


#: :class:`~repro.obs.registry.MetricsRegistry` entry points whose
#: first argument is a metric name.
_REGISTRY_METHODS = frozenset(
    {
        "counter",
        "counter_series",
        "counter_value",
        "gauge",
        "gauge_value",
        "histogram",
        "histogram_summary",
        "time_block",
    }
)


def _declared_metric_names() -> frozenset:
    """String constants declared in :mod:`repro.obs.names`."""
    import repro.obs.names as names

    return frozenset(
        attr
        for attr, value in vars(names).items()
        if isinstance(value, str) and not attr.startswith("_")
    )


@register_rule
class RegisteredMetricNames(Rule):
    """RPR003: metric names are constants from ``repro.obs.names``.

    The names module is the single inventory of what the pipeline
    emits (README documents it for adopters); a literal string at a
    call site creates an undocumented series that dashboards and the
    Prometheus exporter tests never see.  Plain variables are allowed —
    the rule checks what it can prove, not what it cannot.
    """

    code = "RPR003"
    title = "metric name not declared in repro.obs.names"
    rationale = (
        "declare the name as a constant in repro/obs/names.py and pass "
        "that constant"
    )
    exempt_modules = ("repro.obs",)

    def __init__(self) -> None:
        self._declared = _declared_metric_names()

    def check(self, ctx: ModuleContext) -> "Iterator[tuple[ast.AST, str]]":
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _REGISTRY_METHODS
                and node.args
            ):
                continue
            name_arg = node.args[0]
            if isinstance(name_arg, ast.Constant) and isinstance(
                name_arg.value, str
            ):
                yield (
                    name_arg,
                    f"literal metric name {name_arg.value!r}; declare it "
                    "in repro.obs.names and pass the constant",
                )
            elif isinstance(name_arg, ast.JoinedStr):
                yield (
                    name_arg,
                    "computed (f-string) metric name; metric names must "
                    "be constants from repro.obs.names — put variability "
                    "into labels",
                )
            elif isinstance(name_arg, (ast.Attribute, ast.Name)):
                dotted = ctx.resolve(name_arg)
                if dotted is None:
                    continue
                prefix, __, leaf = dotted.rpartition(".")
                from_names = prefix == "repro.obs.names" or (
                    isinstance(name_arg, ast.Name)
                    and ctx.imported_names.get(name_arg.id, "").startswith(
                        "repro.obs.names."
                    )
                )
                if from_names and leaf not in self._declared:
                    yield (
                        name_arg,
                        f"{leaf!r} is not a metric-name constant declared "
                        "in repro/obs/names.py",
                    )


@register_rule
class NoSwallowedExceptions(Rule):
    """RPR004: no bare ``except:``; no silently swallowed ``Exception``.

    The guarded decision flow is allowed to absorb component failures —
    but only while *counting* them (``ppc_degraded_total``).  A bare
    except or an ``except Exception: pass`` hides real faults from the
    resilience accounting and from operators.
    """

    code = "RPR004"
    title = "bare except or silently swallowed broad exception"
    rationale = (
        "catch the specific repro.exceptions type, or at minimum record "
        "the degradation before continuing"
    )

    def check(self, ctx: ModuleContext) -> "Iterator[tuple[ast.AST, str]]":
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield (
                    node,
                    "bare 'except:' catches SystemExit/KeyboardInterrupt "
                    "too; name the exception type",
                )
                continue
            if self._catches_broad(node.type) and _body_is_silent(node.body):
                yield (
                    node,
                    "'except Exception' with a silent body swallows "
                    "failures; narrow the type or record the degradation",
                )

    @staticmethod
    def _catches_broad(type_node: ast.AST) -> bool:
        candidates = (
            type_node.elts
            if isinstance(type_node, ast.Tuple)
            else [type_node]
        )
        return any(
            isinstance(item, ast.Name)
            and item.id in ("Exception", "BaseException")
            for item in candidates
        )


def _body_is_silent(body: "list[ast.stmt]") -> bool:
    for statement in body:
        if isinstance(statement, ast.Pass):
            continue
        if isinstance(statement, ast.Expr) and isinstance(
            statement.value, ast.Constant
        ):
            continue  # docstring or ellipsis
        if isinstance(statement, (ast.Continue, ast.Break)):
            continue
        return False
    return True


#: ``open``-family mode strings that create or truncate files.
def _is_write_mode(mode: str) -> bool:
    return any(flag in mode for flag in "wax+")


@register_rule
class AtomicPersistenceWrites(Rule):
    """RPR005: state files go through the atomic-write helper.

    ``repro.core.persistence`` guarantees a crash leaves either the old
    or the new complete file; a direct ``open(path, "w")`` or
    ``Path.write_text`` reintroduces exactly the torn-write window the
    v2 format was built to close.
    """

    code = "RPR005"
    title = "direct file write outside the atomic persistence helper"
    rationale = (
        "write through repro.core.persistence.atomic_write_text / "
        "save_predictor (temp file + fsync + rename)"
    )
    exempt_modules = ("repro.core.persistence",)

    def check(self, ctx: ModuleContext) -> "Iterator[tuple[ast.AST, str]]":
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in (
                "write_text",
                "write_bytes",
            ):
                yield (
                    node,
                    f"direct '.{func.attr}()' truncates in place; use the "
                    "atomic persistence helper",
                )
                continue
            dotted = ctx.resolve(func)
            is_open = dotted == "open" or dotted == "os.fdopen"
            is_method_open = (
                isinstance(func, ast.Attribute) and func.attr == "open"
            )
            if not (is_open or is_method_open):
                continue
            mode = self._mode_argument(node, position=0 if is_method_open else 1)
            if mode is not None and _is_write_mode(mode):
                yield (
                    node,
                    f"direct open(..., {mode!r}) can tear on crash; use "
                    "the atomic persistence helper",
                )

    @staticmethod
    def _mode_argument(node: ast.Call, position: int) -> "str | None":
        for keyword in node.keywords:
            if (
                keyword.arg == "mode"
                and isinstance(keyword.value, ast.Constant)
                and isinstance(keyword.value.value, str)
            ):
                return keyword.value.value
        if len(node.args) > position:
            candidate = node.args[position]
            if isinstance(candidate, ast.Constant) and isinstance(
                candidate.value, str
            ):
                return candidate.value
        return None


@register_rule
class NoExactFloatComparison(Rule):
    """RPR006: no ``==``/``!=`` against float literals in the geometry
    pipeline.

    Grid snapping, LSH transforms, and density clustering all run on
    accumulated floating-point arithmetic; exact comparison against a
    float literal encodes an equality that one rounding step breaks.
    """

    code = "RPR006"
    title = "exact float equality comparison"
    rationale = (
        "compare with math.isclose / numpy.isclose or an explicit "
        "epsilon threshold"
    )
    only_modules = ("repro.geometry", "repro.lsh", "repro.clustering")

    def check(self, ctx: ModuleContext) -> "Iterator[tuple[ast.AST, str]]":
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                pair = (operands[index], operands[index + 1])
                if any(_is_float_literal(item) for item in pair):
                    yield (
                        node,
                        "exact ==/!= against a float literal; use a "
                        "tolerance (math.isclose / numpy.isclose)",
                    )
                    break


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


@register_rule
class PublicApiAnnotations(Rule):
    """RPR007: the load-bearing public surface is fully typed.

    ``repro.core``, ``repro.service``, and ``repro.resilience`` are what
    adopters and the resilience harness call into; injectable hooks
    (clock, sleep, fault surfaces) only stay swappable if their
    signatures say what they accept.
    """

    code = "RPR007"
    title = "public function missing parameter or return annotations"
    rationale = "annotate every parameter and the return type"
    only_modules = ("repro.core", "repro.service", "repro.resilience")

    def check(self, ctx: ModuleContext) -> "Iterator[tuple[ast.AST, str]]":
        for parent, node in _public_functions(ctx.tree):
            missing = []
            arguments = node.args
            positional = arguments.posonlyargs + arguments.args
            skip_first = parent is not None and not _is_staticmethod(node)
            for index, arg in enumerate(positional):
                if skip_first and index == 0:
                    continue  # self / cls
                if arg.annotation is None:
                    missing.append(arg.arg)
            missing.extend(
                arg.arg
                for arg in arguments.kwonlyargs
                if arg.annotation is None
            )
            if node.returns is None:
                missing.append("return")
            if missing:
                scope = f"{parent}." if parent else ""
                yield (
                    node,
                    f"public function {scope}{node.name} missing "
                    f"annotations: {', '.join(missing)}",
                )


def _public_functions(tree: ast.Module):
    """Yield ``(class_name | None, function_node)`` for the public API:
    module-level functions and methods of public classes, skipping
    private names and dunders other than ``__init__``."""

    def is_public(name: str) -> bool:
        return name == "__init__" or not name.startswith("_")

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if is_public(node.name):
                yield None, node
        elif isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
            for item in node.body:
                if isinstance(
                    item, (ast.FunctionDef, ast.AsyncFunctionDef)
                ) and is_public(item.name):
                    yield node.name, item


def _is_staticmethod(node: ast.AST) -> bool:
    return any(
        isinstance(decorator, ast.Name) and decorator.id == "staticmethod"
        for decorator in node.decorator_list
    )


#: Attributes that make up the mutable session/service state guarded by
#: RPR008.  Assigning them through anything but ``self`` mutates shared
#: state from outside the owning object's methods.
_PROTECTED_STATE = frozenset(
    {
        # TemplateSession
        "breaker",
        "cache",
        "drift_events",
        "monitor",
        "online",
        "optimizer_invocations",
        "records",
        "retry_policy",
        "_last_plan_id",
        # PPCFramework
        "governor",
        "sessions",
        # PlanCachingService
        "_binders",
    }
)


@register_rule
class SessionStateOwnership(Rule):
    """RPR008: shared session/service state mutates only via its owner.

    ``TemplateSession``/``PPCFramework``/``PlanCachingService`` state is
    read concurrently by the governor, the metrics snapshot, and the
    fallback chain; external writes bypass the owner's invariants (and
    any lock-guarded method the owner provides).
    """

    code = "RPR008"
    title = "session/service state mutated outside its owning object"
    rationale = (
        "call a method on the owning session/framework/service instead "
        "of assigning its state from outside"
    )

    def check(self, ctx: ModuleContext) -> "Iterator[tuple[ast.AST, str]]":
        for node in ast.walk(ctx.tree):
            targets: list[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            for target in targets:
                attribute = _protected_attribute(target)
                if attribute is None:
                    continue
                root = _chain_root(attribute)
                if root in ("self", "cls"):
                    continue
                yield (
                    target,
                    f"external write to protected state "
                    f"'.{attribute.attr}' (owned by the session/"
                    "service); go through the owner's methods",
                )


def _protected_attribute(target: ast.AST) -> "ast.Attribute | None":
    while isinstance(target, (ast.Subscript, ast.Starred)):
        target = target.value
    if isinstance(target, ast.Attribute) and target.attr in _PROTECTED_STATE:
        return target
    return None


def _chain_root(node: ast.Attribute) -> "str | None":
    value: ast.AST = node
    while isinstance(value, (ast.Attribute, ast.Subscript, ast.Call)):
        value = (
            value.func
            if isinstance(value, ast.Call)
            else value.value
        )
    return value.id if isinstance(value, ast.Name) else None


#: The tracer-internal span lifecycle primitives RPR009 confines to
#: ``repro.obs.tracing`` (where the context manager is implemented).
_SPAN_LIFECYCLE = frozenset({"open_span", "close_span"})


@register_rule
class SpanContextDiscipline(Rule):
    """RPR009: spans open only via the tracer's context manager.

    ``DecisionTrace.span(...)`` guarantees the close and records error
    status on every exit path; a manual ``open_span``/``close_span``
    pair leaks the span stack on the first exception between them, and
    a hand-built ``Span`` never enters the trace tree at all.  Only the
    tracing module itself (which implements the context manager) may
    touch the primitives.
    """

    code = "RPR009"
    title = "manual span lifecycle call outside the tracer"
    rationale = (
        "use `with trace.span(name, ...)` — the context manager closes "
        "the span and records error status on every exit path"
    )
    exempt_modules = ("repro.obs.tracing",)

    def check(self, ctx: ModuleContext) -> "Iterator[tuple[ast.AST, str]]":
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SPAN_LIFECYCLE
            ):
                yield (
                    node,
                    f"manual .{node.func.attr}() call; open spans with "
                    "the `with trace.span(...)` context manager",
                )
                continue
            dotted = ctx.resolve(node.func)
            if dotted == "repro.obs.tracing.Span":
                yield (
                    node,
                    "direct Span(...) construction; spans are created "
                    "by the tracer's context manager",
                )
