"""Column statistics: quantile sketches over column value distributions.

A :class:`ColumnStatistics` stores the column's empirical quantile
function as a small table of (fraction, value) pairs — the moral
equivalent of the equi-depth histograms a real optimizer keeps per
column.  Two operations matter:

* ``selectivity_leq(v)`` — the estimated fraction of rows with value at
  most ``v`` (the forward map used when binding a query instance); and
* ``value_at_selectivity(s)`` — the parameter value whose ``<=``
  predicate selects fraction ``s`` of the rows (the inverse map used by
  workload generators to place query instances at chosen plan-space
  coordinates).

Both are monotone and inverse to each other up to interpolation error,
which the property-based tests pin down.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import CatalogError
from repro.optimizer.catalog import Catalog, Column
from repro.rng import as_generator

#: Resolution of the per-column quantile sketch.
QUANTILE_POINTS = 129


class ColumnStatistics:
    """Quantile sketch of one column's value distribution."""

    def __init__(self, column: Column, quantiles: np.ndarray) -> None:
        quantiles = np.asarray(quantiles, dtype=float)
        if quantiles.ndim != 1 or quantiles.size < 2:
            raise CatalogError("quantile sketch needs at least two points")
        if (np.diff(quantiles) < 0).any():
            raise CatalogError("quantile sketch must be non-decreasing")
        self.column = column
        self.quantiles = quantiles
        self.fractions = np.linspace(0.0, 1.0, quantiles.size)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_samples(cls, column: Column, samples: np.ndarray) -> "ColumnStatistics":
        """Build the sketch from sampled column values."""
        samples = np.asarray(samples, dtype=float)
        if samples.size == 0:
            raise CatalogError(f"no samples for column {column.name}")
        fractions = np.linspace(0.0, 1.0, QUANTILE_POINTS)
        quantiles = np.quantile(samples, fractions)
        return cls(column, quantiles)

    @classmethod
    def uniform(cls, column: Column) -> "ColumnStatistics":
        """Exact sketch for a uniformly distributed column."""
        quantiles = np.linspace(column.lo, column.hi, QUANTILE_POINTS)
        return cls(column, quantiles)

    @classmethod
    def gaussian(
        cls,
        column: Column,
        mean: float,
        std: float,
        sample_count: int = 50_000,
        seed: "int | np.random.Generator | None" = None,
    ) -> "ColumnStatistics":
        """Sketch for a Gaussian column clipped to the column domain.

        The paper's modified TPC-H schema populates the added date
        columns with Gaussian values; this mirrors that generation
        without materializing the table.
        """
        rng = as_generator(seed)
        samples = rng.normal(mean, std, size=sample_count)
        samples = np.clip(samples, column.lo, column.hi)
        return cls.from_samples(column, samples)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def selectivity_leq(self, value: "float | np.ndarray") -> "float | np.ndarray":
        """Estimated fraction of rows with column value <= ``value``."""
        result = np.interp(value, self.quantiles, self.fractions)
        if np.isscalar(value):
            return float(result)
        return result

    def value_at_selectivity(
        self, selectivity: "float | np.ndarray"
    ) -> "float | np.ndarray":
        """Parameter value whose ``<=`` predicate selects ``selectivity``."""
        result = np.interp(selectivity, self.fractions, self.quantiles)
        if np.isscalar(selectivity):
            return float(result)
        return result


class TableStatistics:
    """Statistics for one table: row count plus per-column sketches."""

    def __init__(self, name: str, row_count: int) -> None:
        self.name = name
        self.row_count = row_count
        self.columns: dict[str, ColumnStatistics] = {}

    def add(self, stats: ColumnStatistics) -> None:
        self.columns[stats.column.name] = stats

    def column(self, name: str) -> ColumnStatistics:
        try:
            return self.columns[name]
        except KeyError:
            raise CatalogError(
                f"no statistics for column {self.name}.{name}"
            ) from None


class CatalogStatistics:
    """Statistics for every table of a catalog."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self.tables: dict[str, TableStatistics] = {}

    def add_table(self, stats: TableStatistics) -> None:
        self.catalog.table(stats.name)
        self.tables[stats.name] = stats

    def table(self, name: str) -> TableStatistics:
        try:
            return self.tables[name]
        except KeyError:
            raise CatalogError(f"no statistics for table {name!r}") from None

    def column(self, table: str, column: str) -> ColumnStatistics:
        return self.table(table).column(column)
