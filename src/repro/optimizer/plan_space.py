"""The plan-space oracle: ``plan(x)`` and ``cost(x, p)``.

Definition 2 of the paper models the optimizer, for one query template,
as a function from normalized optimizer parameters (the ``r`` predicate
selectivities) to plans.  :class:`PlanSpace` realizes that function:

1. **Harvest** — run the full DP enumerator at batches of sampled
   selectivity points, collecting every distinct winning plan, until a
   whole batch yields nothing new.  The harvested set is the candidate
   plan pool of the template.
2. **Label** — for arbitrary points, evaluate every candidate's
   vectorized cost formula and take the argmin.  At harvested points
   this matches the DP result exactly; elsewhere it defines a
   consistent piecewise-minimum plan diagram with the same cost
   surfaces, which is the structure every experiment consumes.

The PPC framework uses the oracle both as ground truth (did the
prediction match the optimizer's choice?) and as the "optimizer" it
invokes on cache misses, so labels are consistent by construction.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import OptimizationError
from repro.optimizer.catalog import Catalog
from repro.optimizer.cost_model import CostModel
from repro.optimizer.enumeration import DPEnumerator
from repro.optimizer.expressions import QueryTemplate
from repro.optimizer.plans import PhysicalPlan
from repro.rng import as_generator


class PlanSpace:
    """Oracle for one template's plan space over ``[0, 1]^r``."""

    def __init__(
        self,
        template: QueryTemplate,
        catalog: Catalog,
        model: CostModel | None = None,
        seed: "int | np.random.Generator | None" = 0,
        harvest_batch: int = 64,
        max_harvest_rounds: int = 8,
        optimizer: "DPEnumerator | None" = None,
    ) -> None:
        if template.parameter_degree < 1:
            raise OptimizationError(
                f"template {template.name} has no parameterized predicates"
            )
        self.template = template
        self.catalog = catalog
        self.model = model or CostModel()
        self._enumerator = optimizer or DPEnumerator(template, catalog, self.model)
        self.plans: list[PhysicalPlan] = []
        self._ids_by_fingerprint: dict[str, int] = {}
        self._harvest(as_generator(seed), harvest_batch, max_harvest_rounds)

    # ------------------------------------------------------------------
    # Harvesting
    # ------------------------------------------------------------------
    def _harvest(
        self,
        rng: np.random.Generator,
        batch: int,
        max_rounds: int,
    ) -> None:
        degree = self.template.parameter_degree
        probes = [self._structured_probes(degree)]
        for __ in range(max_rounds):
            probes.append(rng.uniform(0.0, 1.0, size=(batch, degree)))

        for round_index, points in enumerate(probes):
            new_plans = 0
            for point in points:
                plan, __ = self._enumerator.optimize(point[None, :])
                if self._register(plan):
                    new_plans += 1
            # After the structured probes, stop as soon as a whole random
            # round discovers nothing new.
            if round_index > 0 and new_plans == 0:
                break
        if not self.plans:
            raise OptimizationError("harvest produced no plans")

    @staticmethod
    def _structured_probes(degree: int) -> np.ndarray:
        """Corners, centre and per-axis sweeps — cheap coverage of the
        regions where plan choice usually flips."""
        levels = np.array([0.02, 0.25, 0.5, 0.75, 0.98])
        points = [np.full(degree, 0.5)]
        for axis in range(degree):
            for level in levels:
                point = np.full(degree, 0.5)
                point[axis] = level
                points.append(point)
        # Diagonal sweep plus extreme corners.
        for level in levels:
            points.append(np.full(degree, level))
        return np.unique(np.array(points), axis=0)

    def _register(self, plan: PhysicalPlan) -> bool:
        if plan.fingerprint in self._ids_by_fingerprint:
            return False
        self._ids_by_fingerprint[plan.fingerprint] = len(self.plans)
        self.plans.append(plan)
        return True

    # ------------------------------------------------------------------
    # Oracle queries
    # ------------------------------------------------------------------
    @property
    def dimensions(self) -> int:
        return self.template.parameter_degree

    @property
    def plan_count(self) -> int:
        return len(self.plans)

    def plan(self, plan_id: int) -> PhysicalPlan:
        return self.plans[plan_id]

    def _check_points(self, points: np.ndarray) -> np.ndarray:
        points = np.asarray(points, dtype=float)
        if points.ndim == 1:
            points = points[None, :]
        if points.shape[1] != self.dimensions:
            raise OptimizationError(
                f"expected {self.dimensions}-dimensional points, "
                f"got {points.shape[1]}"
            )
        if (points < 0.0).any() or (points > 1.0).any():
            raise OptimizationError("plan-space points must lie in [0, 1]^r")
        return points

    def cost_matrix(self, points: np.ndarray) -> np.ndarray:
        """Costs of every candidate plan at every point: ``(plans, n)``."""
        points = self._check_points(points)
        selectivities = self._enumerator.mapping.to_selectivity(points)
        return np.stack([plan.cost(selectivities) for plan in self.plans])

    def label(self, points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Optimal plan ids and costs at each point: ``((n,), (n,))``."""
        costs = self.cost_matrix(points)
        ids = np.argmin(costs, axis=0)
        return ids, costs[ids, np.arange(costs.shape[1])]

    def plan_at(self, points: np.ndarray) -> np.ndarray:
        """Optimal plan id at each point."""
        ids, __ = self.label(points)
        return ids

    def cost_at(self, points: np.ndarray, plan_id: "int | None" = None) -> np.ndarray:
        """Cost of ``plan_id`` (or of the optimal plan) at each point."""
        if plan_id is None:
            __, costs = self.label(points)
            return costs
        points = self._check_points(points)
        selectivities = self._enumerator.mapping.to_selectivity(points)
        return self.plans[plan_id].cost(selectivities)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PlanSpace({self.template.name}, r={self.dimensions}, "
            f"plans={self.plan_count})"
        )
