"""Whole-program effect analysis: engine mechanics and RPR101-RPR104.

The selftest fixtures prove each rule fires/stays-quiet end to end;
these tests pin the engine mechanics the rules stand on — transitive
effect propagation, re-export chasing, method resolution, catch-mask
subtraction over the project exception hierarchy, witness chains, the
graph artifacts — and the meta-gate that the repository's own tree is
effects-clean.
"""

import json
import pathlib

from repro.analysis.effects import (
    analyze_sources,
    build_project_from_sources,
    run_effect_rules,
    run_effects_selftest,
    write_graph,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

_EXCEPTIONS = (
    "class ReproError(Exception):\n"
    "    pass\n"
    "class PredictionError(ReproError):\n"
    "    pass\n"
)


class TestPropagation:
    def test_effects_propagate_transitively(self):
        project = build_project_from_sources(
            {
                "repro.a": (
                    "from repro.b import middle\n"
                    "def top():\n"
                    "    return middle()\n"
                ),
                "repro.b": (
                    "from repro.c import bottom\n"
                    "def middle():\n"
                    "    return bottom()\n"
                ),
                "repro.c": (
                    "import random\n"
                    "def bottom():\n"
                    "    return random.random()\n"
                ),
            }
        )
        assert "rng" in project.functions["repro.a.top"].effects
        assert "rng" in project.functions["repro.b.middle"].effects

    def test_reexport_alias_chases_to_origin(self):
        # `from repro.util import jitter as fuzz` re-exported again —
        # the per-file resolver stops at the alias, the engine chases
        # it through the exporting module to the defining one.
        project = build_project_from_sources(
            {
                "repro.facade": (
                    "from repro.middle import fuzz\n"
                    "def api():\n"
                    "    return fuzz()\n"
                ),
                "repro.middle": "from repro.util import jitter as fuzz\n",
                "repro.util": (
                    "import random\n"
                    "def jitter():\n"
                    "    return random.random()\n"
                ),
            }
        )
        (call,) = project.functions["repro.facade.api"].calls
        assert call.resolved == "repro.util.jitter"
        assert "rng" in project.functions["repro.facade.api"].effects

    def test_self_method_resolves_through_base_class(self):
        project = build_project_from_sources(
            {
                "repro.m": (
                    "import time\n"
                    "class Base:\n"
                    "    def helper(self):\n"
                    "        return time.time()\n"
                    "class Child(Base):\n"
                    "    def run(self):\n"
                    "        return self.helper()\n"
                ),
            }
        )
        assert "clock" in project.functions["repro.m.Child.run"].effects

    def test_unknown_external_calls_are_effect_free(self):
        project = build_project_from_sources(
            {
                "repro.m": (
                    "import math\n"
                    "def pure(x):\n"
                    "    return math.sqrt(x)\n"
                ),
            }
        )
        assert project.functions["repro.m.pure"].effects == set()


class TestRaisePropagation:
    def test_caught_exception_does_not_escape(self):
        project = build_project_from_sources(
            {
                "repro.m": (
                    "def helper():\n"
                    "    raise ValueError('x')\n"
                    "def caller():\n"
                    "    try:\n"
                    "        helper()\n"
                    "    except ValueError:\n"
                    "        pass\n"
                ),
            }
        )
        assert "ValueError" in project.functions["repro.m.helper"].raises
        assert "ValueError" not in project.functions["repro.m.caller"].raises

    def test_catching_base_swallows_project_subclasses(self):
        project = build_project_from_sources(
            {
                "repro.exceptions": _EXCEPTIONS,
                "repro.m": (
                    "from repro.exceptions import PredictionError\n"
                    "from repro.exceptions import ReproError\n"
                    "def helper():\n"
                    "    raise PredictionError('x')\n"
                    "def caller():\n"
                    "    try:\n"
                    "        helper()\n"
                    "    except ReproError:\n"
                    "        pass\n"
                ),
            }
        )
        assert project.functions["repro.m.caller"].raises == set()

    def test_handler_body_is_not_protected_by_its_own_try(self):
        project = build_project_from_sources(
            {
                "repro.m": (
                    "def helper():\n"
                    "    raise ValueError('x')\n"
                    "def caller():\n"
                    "    try:\n"
                    "        helper()\n"
                    "    except ValueError:\n"
                    "        helper()\n"
                ),
            }
        )
        assert "ValueError" in project.functions["repro.m.caller"].raises

    def test_variable_reraise_is_not_modeled(self):
        # `raise primary_error` re-raises a local holding an instance;
        # treating the variable name as an exception type produced a
        # bogus RPR104 hit on the persistence fallback path.
        project = build_project_from_sources(
            {
                "repro.m": (
                    "def fallback(primary_error):\n"
                    "    raise primary_error\n"
                ),
            }
        )
        assert project.functions["repro.m.fallback"].raises == set()


class TestWitnessChains:
    def test_rpr102_witness_names_every_hop(self):
        findings, __ = analyze_sources(
            {
                "repro.core.framework": (
                    "from repro.core.timing import stamp\n"
                    "class TemplateSession:\n"
                    "    def execute(self, x):\n"
                    "        return self._run(x)\n"
                    "    def _run(self, x):\n"
                    "        return stamp(x)\n"
                ),
                "repro.core.timing": (
                    "import time\n"
                    "def stamp(x):\n"
                    "    return x, time.time()\n"
                ),
            }
        )
        (finding,) = [f for f in findings if f.rule == "RPR102"]
        for hop in ("TemplateSession.execute", "_run", "stamp"):
            assert hop in finding.message
        # The finding anchors at the sink's effect site, not the root.
        assert finding.path == "<repro.core.timing>"
        assert finding.line == 3

    def test_rpr103_witness_reaches_the_mutating_helper(self):
        findings, __ = analyze_sources(
            {
                "repro.core.lsh_predictor": (
                    "class LshPredictor:\n"
                    "    def __init__(self):\n"
                    "        self._counts = {}\n"
                    "        self._mutations = 0\n"
                    "    def insert(self, cell):\n"
                    "        self._store(cell)\n"
                    "    def _store(self, cell):\n"
                    "        self._counts[cell] = 1.0\n"
                ),
            }
        )
        (finding,) = [f for f in findings if f.rule == "RPR103"]
        assert "insert -> _store" in finding.message
        assert "_counts" in finding.message


class TestSuppression:
    def test_noqa_on_any_physical_line_of_the_raise(self):
        source = (
            "def predict(x):\n"
            "    if x is None:\n"
            "        raise ValueError(\n"
            "            'x required'\n"
            "        )  # repro: noqa[RPR104] - documented contract\n"
            "    return x\n"
        )
        findings, __ = analyze_sources({"repro.core.api": source})
        assert [f for f in findings if f.rule == "RPR104"] == []

    def test_wrong_code_does_not_suppress(self):
        source = (
            "def predict(x):\n"
            "    if x is None:\n"
            "        raise ValueError('x')  # repro: noqa[RPR102]\n"
            "    return x\n"
        )
        findings, __ = analyze_sources({"repro.core.api": source})
        assert [f.rule for f in findings] == ["RPR104"]


class TestGraphArtifacts:
    _SOURCES = {
        "repro.a": (
            "import random\n"
            "def noisy():\n"
            "    return random.random()\n"
            "def caller():\n"
            "    return noisy()\n"
        ),
    }

    def test_json_graph_lists_functions_edges_and_effects(self, tmp_path):
        project = build_project_from_sources(self._SOURCES)
        target = tmp_path / "graph.json"
        write_graph(project, str(target))
        document = json.loads(target.read_text())
        by_name = {n["qualname"]: n for n in document["functions"]}
        assert "rng" in by_name["repro.a.noisy"]["effects"]
        assert "rng" in by_name["repro.a.caller"]["effects"]
        assert {
            "caller": "repro.a.caller",
            "callee": "repro.a.noisy",
            "line": 5,
        } in document["calls"]

    def test_dot_graph_is_valid_digraph(self, tmp_path):
        project = build_project_from_sources(self._SOURCES)
        target = tmp_path / "graph.dot"
        write_graph(project, str(target))
        text = target.read_text()
        assert text.startswith("digraph")
        assert '"repro.a.caller" -> "repro.a.noisy"' in text


def test_effects_selftest_passes():
    assert run_effects_selftest() == []


def test_repo_src_is_effects_clean():
    """The CI gate, runnable locally: zero RPR1xx findings on src."""
    from repro.analysis.effects import build_project

    project = build_project([REPO_ROOT / "src"])
    assert project.errors == []
    findings = run_effect_rules(project)
    assert findings == [], "\n".join(
        f"{f.path}:{f.line} {f.rule} {f.message}" for f in findings
    )
