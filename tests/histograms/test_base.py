"""Bucket arithmetic and the shared histogram query interface."""

import pytest

from repro.exceptions import HistogramError
from repro.histograms.base import BYTES_PER_BUCKET, Bucket
from repro.histograms.equiwidth import EquiWidthHistogram


class TestBucket:
    def test_width_and_average_cost(self):
        bucket = Bucket(0.2, 0.6, count=4, cost_sum=20.0)
        assert bucket.width == pytest.approx(0.4)
        assert bucket.average_cost == pytest.approx(5.0)

    def test_empty_bucket_average_cost_is_zero(self):
        assert Bucket(0.0, 1.0).average_cost == 0.0

    def test_overlap_full_containment(self):
        bucket = Bucket(0.4, 0.6, count=10)
        assert bucket.overlap_fraction(0.0, 1.0) == pytest.approx(1.0)

    def test_overlap_partial(self):
        bucket = Bucket(0.0, 1.0, count=10)
        assert bucket.overlap_fraction(0.25, 0.75) == pytest.approx(0.5)

    def test_overlap_disjoint(self):
        bucket = Bucket(0.0, 0.2, count=10)
        assert bucket.overlap_fraction(0.5, 0.9) == 0.0

    def test_point_mass_inside_range(self):
        bucket = Bucket(0.5, 0.5, count=3)
        assert bucket.overlap_fraction(0.4, 0.6) == 1.0
        assert bucket.overlap_fraction(0.6, 0.9) == 0.0

    def test_point_mass_on_range_edge(self):
        bucket = Bucket(0.5, 0.5, count=3)
        assert bucket.overlap_fraction(0.5, 0.9) == 1.0


class TestHistogramQueries:
    def test_range_count_over_full_domain_equals_total(self):
        hist = EquiWidthHistogram.build(
            [0.1, 0.2, 0.3, 0.8, 0.9], bucket_count=10
        )
        assert hist.range_count(0.0, 1.0) == pytest.approx(5.0)
        assert hist.total_count == pytest.approx(5.0)

    def test_range_count_swapped_bounds(self):
        hist = EquiWidthHistogram.build([0.1, 0.9], bucket_count=10)
        assert hist.range_count(1.0, 0.0) == pytest.approx(2.0)

    def test_range_cost_weighted_average(self):
        hist = EquiWidthHistogram.build(
            [0.05, 0.95], costs=[10.0, 30.0], bucket_count=2
        )
        assert hist.range_cost(0.0, 0.5) == pytest.approx(10.0)
        assert hist.range_cost(0.5, 1.0) == pytest.approx(30.0)
        assert hist.range_cost(0.0, 1.0) == pytest.approx(20.0)

    def test_range_cost_empty_region_is_zero(self):
        hist = EquiWidthHistogram.build([0.05], costs=[10.0], bucket_count=10)
        assert hist.range_cost(0.5, 0.6) == 0.0

    def test_space_accounting(self):
        hist = EquiWidthHistogram(bucket_count=40)
        assert hist.space_bytes() == 40 * BYTES_PER_BUCKET

    def test_empty_domain_rejected(self):
        with pytest.raises(HistogramError):
            EquiWidthHistogram(bucket_count=4, domain=(1.0, 1.0))
