"""Morton curve: round-trips, locality, normalization."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.lsh.zorder import ZOrderCurve


class TestEncodeDecode:
    def test_round_trip_2d(self):
        curve = ZOrderCurve(dims=2, bits=4)
        coords = np.array([[x, y] for x in range(16) for y in range(16)])
        decoded = curve.decode(curve.encode(coords))
        assert (decoded == coords).all()

    def test_round_trip_high_dims(self):
        curve = ZOrderCurve(dims=6, bits=5)
        rng = np.random.default_rng(0)
        coords = rng.integers(0, 32, size=(200, 6))
        decoded = curve.decode(curve.encode(coords))
        assert (decoded == coords).all()

    def test_codes_are_unique(self):
        curve = ZOrderCurve(dims=3, bits=3)
        coords = np.array(
            [[x, y, z] for x in range(8) for y in range(8) for z in range(8)]
        )
        codes = curve.encode(coords)
        assert len(np.unique(codes)) == coords.shape[0]

    def test_known_interleaving_2d(self):
        # Classic Morton order on a 2x2 grid: (0,0)=0 (0,1)=1 (1,0)=2 (1,1)=3.
        curve = ZOrderCurve(dims=2, bits=1)
        codes = curve.encode(np.array([[0, 0], [0, 1], [1, 0], [1, 1]]))
        assert codes.tolist() == [0, 1, 2, 3]

    def test_coordinate_range_checked(self):
        curve = ZOrderCurve(dims=2, bits=2)
        with pytest.raises(ConfigurationError):
            curve.encode(np.array([[4, 0]]))
        with pytest.raises(ConfigurationError):
            curve.decode(np.array([16]))

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            ZOrderCurve(dims=0, bits=4)
        with pytest.raises(ConfigurationError):
            ZOrderCurve(dims=8, bits=8)  # 64 bits > 62


class TestLinearize:
    def test_values_in_unit_interval(self):
        curve = ZOrderCurve(dims=2, bits=4)
        rng = np.random.default_rng(1)
        z = curve.linearize(rng.uniform(0, 1, size=(100, 2)))
        assert (z >= 0.0).all() and (z < 1.0).all()

    def test_same_cell_same_value(self):
        curve = ZOrderCurve(dims=2, bits=2)
        z = curve.linearize(np.array([[0.10, 0.10], [0.20, 0.20]]))
        assert z[0] == z[1]  # both in cell (0, 0) of the 4x4 grid

    def test_boundary_point_clipped(self):
        curve = ZOrderCurve(dims=2, bits=2)
        z = curve.linearize(np.array([[1.0, 1.0]]))
        assert z[0] == pytest.approx((curve.total_codes - 1) / curve.total_codes)

    def test_cell_extent(self):
        curve = ZOrderCurve(dims=3, bits=2)
        assert curve.cell_extent() == pytest.approx(1.0 / 64.0)

    def test_locality_same_quadrant_shares_prefix(self):
        """Points in the same macro-quadrant have closer z-values than
        points in different quadrants, on average."""
        curve = ZOrderCurve(dims=2, bits=6)
        a = curve.linearize(np.array([[0.10, 0.10]]))[0]
        b = curve.linearize(np.array([[0.15, 0.12]]))[0]
        c = curve.linearize(np.array([[0.90, 0.90]]))[0]
        assert abs(a - b) < abs(a - c)
