"""Figure 13: end-to-end runtime of plan caching vs no caching vs IDEAL.

Replays a tight trajectory workload (``r_d = 0.01``, ``d = 0.01``,
``b_h = 40``, ``t = 5``, ``gamma = 0.8``, noise elimination on) through
the runtime simulator and reports cumulative time for the three
regimes, plus the activity breakdown for PPC.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import PPCConfig
from repro.simulation import RuntimeBreakdown, RuntimeSimulator, TimingModel
from repro.tpch import plan_space_for
from repro.workload import RandomTrajectoryWorkload


@dataclass(frozen=True)
class RuntimeRow:
    """Total simulated time of one regime on one template."""

    template: str
    regime: str
    total_ms: float
    optimization_ms: float
    execution_ms: float
    overhead_ms: float
    optimizer_invocations: int


def figure13_config(radius: float = 0.01) -> PPCConfig:
    """The Figure 13 configuration."""
    return PPCConfig(
        transforms=5,
        max_buckets=40,
        radius=radius,
        confidence_threshold=0.8,
        noise_fraction=0.002,
        mean_invocation_probability=0.05,
        negative_feedback=True,
        drift_response=False,
    )


def run_runtime_comparison(
    templates: tuple[str, ...] = ("Q0", "Q1", "Q8"),
    workload_size: int = 1000,
    spread: float = 0.01,
    seed: int = 7,
    timing: "TimingModel | None" = None,
) -> tuple[list[RuntimeRow], dict[str, dict[str, RuntimeBreakdown]]]:
    """Simulate the three regimes per template.

    Returns summary rows plus the full breakdowns (whose
    ``cumulative_ms`` series are the Figure 13 curves).
    """
    rows = []
    breakdowns: dict[str, dict[str, RuntimeBreakdown]] = {}
    for template in templates:
        plan_space = plan_space_for(template)
        workload = RandomTrajectoryWorkload(
            plan_space.dimensions, spread=spread, seed=seed
        ).generate(workload_size)
        simulator = RuntimeSimulator(
            plan_space, figure13_config(), timing=timing, seed=seed
        )
        result = simulator.run(workload)
        breakdowns[template] = result
        for regime, breakdown in result.items():
            rows.append(
                RuntimeRow(
                    template=template,
                    regime=regime,
                    total_ms=breakdown.total_ms,
                    optimization_ms=breakdown.optimization_ms,
                    execution_ms=breakdown.execution_ms,
                    overhead_ms=breakdown.overhead_ms,
                    optimizer_invocations=breakdown.optimizer_invocations,
                )
            )
    return rows, breakdowns
