"""System-R style dynamic-programming plan enumeration.

:class:`PlanBuilder` resolves catalog metadata into fully bound
operator nodes (access paths per table, join alternatives per step);
:class:`DPEnumerator` runs the classic bottom-up dynamic program over
connected table subsets, keeping the cheapest plan per (subset,
interesting order) at a given selectivity point.

The enumerator works at one point at a time — exactly like a real
optimizer invoked for one query instance — while the
:class:`~repro.optimizer.plan_space.PlanSpace` oracle harvests its
results across many points and then re-evaluates the harvested
candidates vectorized.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.exceptions import OptimizationError
from repro.optimizer.catalog import Catalog
from repro.optimizer.cost_model import CostModel
from repro.optimizer.expressions import JoinPredicate, QueryTemplate
from repro.optimizer.parameters import ParameterMapping
from repro.optimizer.operators import (
    HashJoin,
    IndexNLJoin,
    IndexScan,
    MergeJoin,
    NestedLoopJoin,
    PlanNode,
    SeqScan,
    Sort,
)
from repro.optimizer.plans import PhysicalPlan


class PlanBuilder:
    """Constructs bound operator nodes for one template over a catalog."""

    def __init__(
        self,
        template: QueryTemplate,
        catalog: Catalog,
        model: CostModel | None = None,
    ) -> None:
        self.template = template
        self.catalog = catalog
        self.model = model or CostModel()

    # ------------------------------------------------------------------
    # Access paths
    # ------------------------------------------------------------------
    def access_paths(self, table_name: str) -> list[PlanNode]:
        """All single-table plans: one SeqScan plus one IndexScan per
        indexed parameterized predicate."""
        table = self.catalog.table(table_name)
        predicates = self.template.predicates_on(table_name)
        all_params = tuple(p.param_index for p in predicates)

        paths: list[PlanNode] = [
            SeqScan(table_name, table.row_count, table.pages, all_params, self.model)
        ]
        for predicate in predicates:
            index = self.catalog.index_on(table_name, predicate.column.column)
            if index is None:
                continue
            residuals = tuple(
                i for i in all_params if i != predicate.param_index
            )
            scan = IndexScan(
                table=table_name,
                index_name=index.name,
                sarg_param=predicate.param_index,
                base_rows=table.row_count,
                pages=table.pages,
                residual_params=residuals,
                clustered=index.clustered,
                model=self.model,
            )
            scan.sort_order = str(predicate.column)
            paths.append(scan)
        return paths

    # ------------------------------------------------------------------
    # Join alternatives
    # ------------------------------------------------------------------
    def join_selectivity(self, joins: list[JoinPredicate]) -> float:
        """Combined selectivity of the connecting equi-join predicates.

        Each predicate contributes ``1 / max(ndv(left), ndv(right))``
        under the standard containment assumption.
        """
        selectivity = 1.0
        for join in joins:
            left = self.catalog.table(join.left.table).column(join.left.column)
            right = self.catalog.table(join.right.table).column(join.right.column)
            selectivity /= max(left.distinct_count, right.distinct_count)
        return selectivity

    def join_candidates(
        self, outer: PlanNode, inner_table: str
    ) -> list[PlanNode]:
        """Every physical join of ``outer`` with ``inner_table``."""
        joins = self.template.joins_between(outer.tables, inner_table)
        if not joins:
            return []
        selectivity = self.join_selectivity(joins)
        primary = joins[0]
        inner_column = primary.column_for(inner_table)
        outer_column = primary.column_for(
            next(iter(primary.tables() - {inner_table}))
        )
        table = self.catalog.table(inner_table)
        local_params = tuple(
            p.param_index for p in self.template.predicates_on(inner_table)
        )

        candidates: list[PlanNode] = []
        for inner_path in self.access_paths(inner_table):
            candidates.append(HashJoin(outer, inner_path, selectivity, self.model))
            candidates.append(
                NestedLoopJoin(outer, inner_path, selectivity, self.model)
            )

        index = self.catalog.index_on(inner_table, inner_column.column)
        if index is not None:
            candidates.append(
                IndexNLJoin(
                    outer=outer,
                    inner_table=inner_table,
                    inner_index=index.name,
                    inner_base_rows=table.row_count,
                    inner_param_indexes=local_params,
                    join_selectivity=selectivity,
                    model=self.model,
                )
            )

        candidates.extend(
            self._merge_candidates(
                outer, inner_table, str(outer_column), str(inner_column), selectivity
            )
        )
        return candidates

    def join_subtree_candidates(
        self, outer: PlanNode, inner: PlanNode
    ) -> list[PlanNode]:
        """Joins of two arbitrary subtrees (bushy enumeration).

        Index nested loops requires a base-table inner, so bushy
        combinations offer hash, in-memory nested loops and merge (with
        sort enforcers on whichever side lacks the order).
        """
        joins = self.template.joins_connecting(outer.tables, inner.tables)
        if not joins:
            return []
        selectivity = self.join_selectivity(joins)
        primary = joins[0]
        if primary.left.table in outer.tables:
            outer_column, inner_column = primary.left, primary.right
        else:
            outer_column, inner_column = primary.right, primary.left

        candidates: list[PlanNode] = [
            HashJoin(outer, inner, selectivity, self.model),
            NestedLoopJoin(outer, inner, selectivity, self.model),
        ]
        sorted_outer = (
            outer
            if outer.sort_order == str(outer_column)
            else Sort(outer, str(outer_column), self.model)
        )
        sorted_inner = (
            inner
            if inner.sort_order == str(inner_column)
            else Sort(inner, str(inner_column), self.model)
        )
        candidates.append(
            MergeJoin(
                sorted_outer,
                sorted_inner,
                selectivity,
                self.model,
                order=str(outer_column),
            )
        )
        return candidates

    def _merge_candidates(
        self,
        outer: PlanNode,
        inner_table: str,
        outer_order: str,
        inner_order: str,
        selectivity: float,
    ) -> list[PlanNode]:
        """Merge joins, adding Sort enforcers where an order is missing."""
        sorted_outer = (
            outer
            if outer.sort_order == outer_order
            else Sort(outer, outer_order, self.model)
        )

        candidates = []
        for inner_path in self.access_paths(inner_table):
            sorted_inner = (
                inner_path
                if inner_path.sort_order == inner_order
                else Sort(inner_path, inner_order, self.model)
            )
            candidates.append(
                MergeJoin(
                    sorted_outer,
                    sorted_inner,
                    selectivity,
                    self.model,
                    order=outer_order,
                )
            )
        return candidates


class DPEnumerator:
    """Bottom-up dynamic program over connected table subsets.

    ``optimize`` takes a *normalized* plan-space point in ``[0, 1]^r``
    and converts it to actual predicate selectivities through the
    template's :class:`~repro.optimizer.parameters.ParameterMapping`
    before costing — the ``plan(f(q))`` decomposition of Section II-A.
    """

    def __init__(
        self,
        template: QueryTemplate,
        catalog: Catalog,
        model: CostModel | None = None,
        allow_bushy: bool = False,
    ) -> None:
        self.template = template
        self.builder = PlanBuilder(template, catalog, model)
        self.mapping = ParameterMapping.for_template(template, catalog)
        self.allow_bushy = allow_bushy

    def optimize(self, x: np.ndarray) -> tuple[PhysicalPlan, float]:
        """Best plan and its cost at one normalized point ``x``."""
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x[None, :]
        if x.shape != (1, self.template.parameter_degree):
            raise OptimizationError(
                f"expected one point of degree "
                f"{self.template.parameter_degree}, got shape {x.shape}"
            )
        x = self.mapping.to_selectivity(x)

        # best[subset][sort_order] = (cost, node)
        best: dict[frozenset[str], dict[str | None, tuple[float, PlanNode]]] = {}

        for table in self.template.tables:
            entries: dict[str | None, tuple[float, PlanNode]] = {}
            for path in self.builder.access_paths(table):
                self._keep_if_better(entries, path, x)
            best[frozenset((table,))] = entries

        table_list = list(self.template.tables)
        for size in range(2, len(table_list) + 1):
            for combo in itertools.combinations(table_list, size):
                subset = frozenset(combo)
                entries = {}
                for inner_table in combo:
                    remainder = subset - {inner_table}
                    outer_entries = best.get(remainder)
                    if not outer_entries:
                        continue
                    if not self.template.joins_between(remainder, inner_table):
                        continue
                    for __, outer in outer_entries.values():
                        for candidate in self.builder.join_candidates(
                            outer, inner_table
                        ):
                            self._keep_if_better(entries, candidate, x)
                if self.allow_bushy and size >= 4:
                    self._expand_bushy(best, subset, entries, x)
                if entries:
                    best[subset] = entries

        full = best.get(frozenset(table_list))
        if not full:
            raise OptimizationError(
                f"template {self.template.name}: join graph is disconnected"
            )
        if self.template.order_by is not None:
            # Interesting order at the root: either a plan already sorted
            # on the requested column, or the cheapest plan plus a final
            # sort enforcer — whichever costs less.
            target = str(self.template.order_by)
            finalists: dict[str | None, tuple[float, PlanNode]] = {}
            for __, node in full.values():
                candidate = (
                    node
                    if node.sort_order == target
                    else Sort(node, target, self.builder.model)
                )
                self._keep_if_better(finalists, candidate, x)
            cost, node = min(finalists.values(), key=lambda pair: pair[0])
            return PhysicalPlan(node), cost
        cost, node = min(full.values(), key=lambda pair: pair[0])
        return PhysicalPlan(node), cost

    def _expand_bushy(
        self,
        best: dict,
        subset: frozenset[str],
        entries: dict,
        x: np.ndarray,
    ) -> None:
        """Consider composite-composite joins (bushy trees).

        Partitions the subset into two halves of size >= 2 each (the
        size-1 halves are the left-deep expansions already handled);
        the smallest member anchors one side to avoid enumerating each
        partition twice.
        """
        members = sorted(subset)
        anchor = members[0]
        others = members[1:]
        for mask in range(1, 1 << len(others)):
            left = frozenset(
                [anchor] + [t for i, t in enumerate(others) if mask & (1 << i)]
            )
            right = subset - left
            if len(left) < 2 or len(right) < 2:
                continue
            left_entries = best.get(left)
            right_entries = best.get(right)
            if not left_entries or not right_entries:
                continue
            for __, outer in left_entries.values():
                for __, inner in right_entries.values():
                    for candidate in self.builder.join_subtree_candidates(
                        outer, inner
                    ):
                        self._keep_if_better(entries, candidate, x)

    @staticmethod
    def _keep_if_better(
        entries: dict["str | None", tuple[float, PlanNode]],
        node: PlanNode,
        x: np.ndarray,
    ) -> None:
        __, cost = node.evaluate(x)
        cost_value = float(cost[0])
        current = entries.get(node.sort_order)
        if current is None or cost_value < current[0]:
            entries[node.sort_order] = (cost_value, node)
