"""Vectorized prediction paths match their scalar counterparts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.confidence import ConfidenceModel, FrequencyConfidenceModel
from repro.core.histogram_predictor import HistogramPredictor
from repro.core.lsh_predictor import LshPredictor
from repro.core.point import SamplePool
from repro.exceptions import ConfigurationError, PredictionError
from repro.workload import sample_points


def _pool():
    pool = SamplePool(2)
    rng = np.random.default_rng(0)
    for x in rng.uniform(0.0, 0.45, size=(120, 2)):
        pool.add(x, 0, cost=5.0)
    for x in rng.uniform(0.55, 1.0, size=(120, 2)):
        pool.add(x, 1, cost=9.0)
    return pool


class TestDecideBatch:
    def test_matches_scalar(self):
        model = ConfidenceModel()
        rng = np.random.default_rng(1)
        counts = rng.integers(0, 20, size=(100, 4)).astype(float)
        winners, confidences = model.decide_batch(counts, 0.7)
        for i in range(100):
            plan, confidence = model.decide(counts[i], 0.7)
            expected = -1 if plan is None else plan
            assert winners[i] == expected
            assert confidences[i] == pytest.approx(confidence, abs=1e-9)

    def test_all_zero_rows_are_null(self):
        model = ConfidenceModel()
        winners, confidences = model.decide_batch(np.zeros((3, 4)), 0.0)
        assert (winners == -1).all()
        assert (confidences == 0.0).all()

    def test_rejects_non_matrix(self):
        with pytest.raises(ConfigurationError):
            ConfidenceModel().decide_batch(np.zeros(4), 0.5)


class TestHistogramPredictBatch:
    @pytest.mark.parametrize("kind", ["maxdiff", "incremental"])
    def test_matches_scalar(self, kind):
        predictor = HistogramPredictor(
            _pool(),
            transforms=5,
            radius=0.1,
            confidence_threshold=0.7,
            noise_fraction=0.002,
            histogram_kind=kind,
            seed=1,
        )
        test = sample_points(2, 200, seed=3)
        scalar = [predictor.predict(test[i]) for i in range(200)]
        batch = predictor.predict_batch(test)
        for s, b in zip(scalar, batch, strict=True):
            assert (s is None) == (b is None)
            if s is not None:
                assert s.plan_id == b.plan_id
                assert s.confidence == pytest.approx(b.confidence, abs=1e-9)
                if s.estimated_cost is None:
                    assert b.estimated_cost is None
                else:
                    assert s.estimated_cost == pytest.approx(b.estimated_cost)

    def test_single_point_input(self):
        predictor = HistogramPredictor(
            _pool(), radius=0.1, confidence_threshold=0.5, seed=1
        )
        batch = predictor.predict_batch(np.array([0.2, 0.2]))
        assert len(batch) == 1
        assert batch[0].plan_id == 0

    def test_batch_faster_than_scalar(self):
        import time

        predictor = HistogramPredictor(
            _pool(), transforms=5, radius=0.1, seed=1
        )
        test = sample_points(2, 300, seed=4)
        start = time.perf_counter()
        for i in range(300):
            predictor.predict(test[i])
        scalar_time = time.perf_counter() - start
        start = time.perf_counter()
        predictor.predict_batch(test)
        batch_time = time.perf_counter() - start
        assert batch_time < scalar_time


def _assert_parity(predictor, points):
    """predict_batch must agree with per-point predict exactly."""
    scalar = [predictor.predict(points[i]) for i in range(points.shape[0])]
    batch = predictor.predict_batch(points)
    assert len(batch) == len(scalar)
    for s, b in zip(scalar, batch, strict=True):
        assert (s is None) == (b is None)
        if s is None:
            continue
        assert s.plan_id == b.plan_id
        assert s.confidence == pytest.approx(b.confidence, abs=1e-9)
        if s.estimated_cost is None:
            assert b.estimated_cost is None
        else:
            assert s.estimated_cost == pytest.approx(b.estimated_cost)
    return scalar, batch


class TestScalarBatchParity:
    """predict vs predict_batch on unstructured random pools."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("kind", ["maxdiff", "incremental"])
    def test_random_pools(self, seed, kind):
        rng = np.random.default_rng(seed)
        pool = SamplePool(2)
        coords = rng.uniform(size=(150, 2))
        plan_ids = rng.integers(0, 3, size=150)
        costs = rng.uniform(1.0, 10.0, size=150)
        for x, plan, cost in zip(coords, plan_ids, costs, strict=True):
            pool.add(x, int(plan), cost=float(cost))
        predictor = HistogramPredictor(
            pool,
            transforms=3,
            radius=0.08,
            confidence_threshold=0.4,
            noise_fraction=0.01,
            histogram_kind=kind,
            seed=seed + 10,
        )
        test = sample_points(2, 120, seed=seed + 20)
        _assert_parity(predictor, test)

    def test_noise_elimination_parity_includes_nulls(self):
        predictor = HistogramPredictor(
            _pool(),
            transforms=5,
            radius=0.1,
            confidence_threshold=0.0,
            noise_fraction=0.05,
            seed=1,
        )
        test = sample_points(2, 200, seed=5)
        __, batch = _assert_parity(predictor, test)
        # The parity check must actually exercise both branches.
        assert any(b is None for b in batch)
        assert any(b is not None for b in batch)

    def test_unsupported_winner_yields_cost_none_in_both(self):
        class ForcedWinner(ConfidenceModel):
            """Forces a plan no training point supports."""

            def decide(self, counts, threshold):
                return 2, 1.0

            def decide_batch(self, counts, threshold):
                m = counts.shape[0]
                return np.full(m, 2, dtype=int), np.ones(m)

        predictor = HistogramPredictor(
            _pool(),
            plan_count=3,
            transforms=5,
            radius=0.1,
            confidence_threshold=0.0,
            noise_fraction=None,
            seed=1,
            confidence_model=ForcedWinner(),
        )
        test = sample_points(2, 50, seed=9)
        __, batch = _assert_parity(predictor, test)
        # Plan 2 has zero support everywhere: a prediction is still
        # produced, but with no cost estimate — in both code paths.
        assert all(b is not None for b in batch)
        assert all(b.estimated_cost is None for b in batch)


class TestBaselinePredictBatch:
    def test_matches_scalar(self):
        from repro.core.baseline import BaselinePredictor

        predictor = BaselinePredictor(
            _pool(), radius=0.15, confidence_threshold=0.7
        )
        test = sample_points(2, 300, seed=6)
        scalar = [
            BaselinePredictor.predict(predictor, test[i]) for i in range(300)
        ]
        batch = predictor.predict_batch(test, chunk_size=64)
        for s, b in zip(scalar, batch, strict=True):
            assert (s is None) == (b is None)
            if s is not None:
                assert s.plan_id == b.plan_id
                assert s.confidence == pytest.approx(b.confidence, abs=1e-9)
                if s.estimated_cost is None:
                    assert b.estimated_cost is None
                else:
                    assert s.estimated_cost == pytest.approx(b.estimated_cost)

    def test_chunking_irrelevant_to_results(self):
        from repro.core.baseline import BaselinePredictor

        predictor = BaselinePredictor(_pool(), radius=0.15)
        test = sample_points(2, 100, seed=7)
        small = predictor.predict_batch(test, chunk_size=7)
        large = predictor.predict_batch(test, chunk_size=1000)
        for a, b in zip(small, large, strict=True):
            assert (a is None) == (b is None)
            if a is not None:
                assert a.plan_id == b.plan_id


class TestLshScalarBatchParity:
    """LSH predict vs predict_batch, bit-for-bit."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("aggregation", ["median", "mean"])
    def test_random_pools(self, seed, aggregation):
        rng = np.random.default_rng(seed)
        pool = SamplePool(2)
        coords = rng.uniform(size=(150, 2))
        plan_ids = rng.integers(0, 3, size=150)
        costs = rng.uniform(1.0, 10.0, size=150)
        for x, plan, cost in zip(coords, plan_ids, costs, strict=True):
            pool.add(x, int(plan), cost=float(cost))
        predictor = LshPredictor(
            pool,
            transforms=5,
            resolution=8,
            confidence_threshold=0.4,
            aggregation=aggregation,
            seed=seed + 10,
        )
        test = sample_points(2, 120, seed=seed + 20)
        scalar = [predictor.predict(test[i]) for i in range(120)]
        batch = predictor.predict_batch(test)
        for s, b in zip(scalar, batch, strict=True):
            # Bit-for-bit, not approximate: the two paths must share
            # one numeric core.
            assert s == b

    def test_structured_pool_exercises_both_branches(self):
        predictor = LshPredictor(
            _pool(), transforms=5, confidence_threshold=0.7, seed=1
        )
        test = sample_points(2, 200, seed=3)
        batch = predictor.predict_batch(test)
        scalar = [predictor.predict(test[i]) for i in range(200)]
        assert batch == scalar
        assert any(b is None for b in batch)
        assert any(b is not None for b in batch)

    def test_unsupported_winner_yields_cost_none_in_both(self):
        class ForcedWinner(ConfidenceModel):
            def decide(self, counts, threshold):
                return 2, 1.0

            def decide_batch(self, counts, threshold):
                m = counts.shape[0]
                return np.full(m, 2, dtype=int), np.ones(m)

        predictor = LshPredictor(
            _pool(),
            plan_count=3,
            transforms=5,
            confidence_threshold=0.0,
            seed=1,
            confidence_model=ForcedWinner(),
        )
        test = sample_points(2, 50, seed=9)
        batch = predictor.predict_batch(test)
        scalar = [predictor.predict(test[i]) for i in range(50)]
        assert batch == scalar
        assert all(b is not None for b in batch)
        assert all(b.estimated_cost is None for b in batch)


def _histogram(seed=1, **overrides):
    kwargs = dict(
        transforms=5, radius=0.1, confidence_threshold=0.7, seed=seed
    )
    kwargs.update(overrides)
    return HistogramPredictor(_pool(), **kwargs)


def _lsh(seed=1, **overrides):
    kwargs = dict(transforms=5, confidence_threshold=0.7, seed=seed)
    kwargs.update(overrides)
    return LshPredictor(_pool(), **kwargs)


class TestBatchInputContract:
    """The shared batch contract: validation happens up front, whole
    batch, before any per-point work."""

    @pytest.mark.parametrize("build", [_histogram, _lsh])
    def test_nan_row_raises_prediction_error(self, build):
        predictor = build()
        points = sample_points(2, 10, seed=0)
        points[7, 1] = np.nan
        with pytest.raises(PredictionError):
            predictor.predict_batch(points)

    @pytest.mark.parametrize("build", [_histogram, _lsh])
    @pytest.mark.parametrize("bad", [np.inf, -np.inf])
    def test_infinite_row_raises_prediction_error(self, build, bad):
        predictor = build()
        points = sample_points(2, 10, seed=0)
        points[0, 0] = bad
        with pytest.raises(PredictionError):
            predictor.predict_batch(points)

    @pytest.mark.parametrize("build", [_histogram, _lsh])
    def test_scalar_predict_rejects_non_finite(self, build):
        predictor = build()
        with pytest.raises(PredictionError):
            predictor.predict(np.array([0.5, np.nan]))

    @pytest.mark.parametrize("build", [_histogram, _lsh])
    def test_empty_matrix_returns_empty_list(self, build):
        assert build().predict_batch(np.empty((0, 2))) == []

    @pytest.mark.parametrize("build", [_histogram, _lsh])
    def test_empty_vector_is_a_shape_error(self, build):
        # (0,) must NOT be promoted to a (1, 0) batch.
        with pytest.raises(ValueError, match="shape"):
            build().predict_batch(np.empty(0))

    @pytest.mark.parametrize("build", [_histogram, _lsh])
    def test_wrong_width_is_a_shape_error(self, build):
        with pytest.raises(ValueError):
            build().predict_batch(np.zeros((4, 3)))

    def test_baseline_shares_the_contract(self):
        from repro.core.baseline import BaselinePredictor

        predictor = BaselinePredictor(_pool(), radius=0.15)
        assert predictor.predict_batch(np.empty((0, 2))) == []
        with pytest.raises(ValueError, match="shape"):
            predictor.predict_batch(np.empty(0))
        bad = sample_points(2, 5, seed=0)
        bad[2, 0] = np.inf
        with pytest.raises(PredictionError):
            predictor.predict_batch(bad)


def _point_mass_predictor(n_points, noise_fraction, seed=1):
    """A predictor whose whole mass sits on one plan at one point, so
    the aggregated count at that point equals ``n_points`` exactly."""
    pool = SamplePool(2)
    for __ in range(n_points):
        pool.add(np.array([0.5, 0.5]), 0, cost=3.0)
    return HistogramPredictor(
        pool,
        plan_count=2,
        transforms=3,
        radius=0.1,
        confidence_threshold=0.0,
        noise_fraction=noise_fraction,
        histogram_kind="incremental",
        seed=seed,
    )


class TestNoiseEliminationBoundary:
    """The elimination comparison is strict ``<``: support exactly at
    ``noise_fraction * total_mass`` survives, in both code paths."""

    def test_exactly_at_threshold_is_not_eliminated(self):
        # 10 identical points, noise_fraction 1.0: max count == total
        # mass exactly, so max_count < fraction * mass is False.
        predictor = _point_mass_predictor(10, noise_fraction=1.0)
        x = np.array([0.5, 0.5])
        scalar = predictor.predict(x)
        batch = predictor.predict_batch(x[None, :])
        assert scalar is not None
        assert batch == [scalar]

    def test_just_above_threshold_is_eliminated(self):
        # Same mass, but the threshold now exceeds any attainable
        # count by a hair: everything is noise.
        predictor = _point_mass_predictor(
            10, noise_fraction=np.nextafter(1.0, 2.0)
        )
        x = np.array([0.5, 0.5])
        assert predictor.predict(x) is None
        assert predictor.predict_batch(x[None, :]) == [None]

    @pytest.mark.parametrize(
        "noise_fraction", [0.0, 0.5, 1.0, np.nextafter(1.0, 2.0), 1.5]
    )
    def test_boundary_sweep_parity(self, noise_fraction):
        predictor = _point_mass_predictor(8, noise_fraction)
        test = sample_points(2, 40, seed=11)
        test[0] = [0.5, 0.5]
        _assert_parity(predictor, test)


class TestColdPredictors:
    """total_mass == 0 / empty synopses answer null, both paths."""

    def test_cold_histogram_predictor(self):
        predictor = HistogramPredictor(
            SamplePool(2),
            plan_count=2,
            transforms=3,
            radius=0.1,
            noise_fraction=0.002,
            histogram_kind="incremental",
            seed=1,
        )
        assert predictor.total_mass == 0.0
        test = sample_points(2, 20, seed=0)
        assert predictor.predict_batch(test) == [None] * 20
        _assert_parity(predictor, test)

    def test_cold_lsh_predictor(self):
        predictor = LshPredictor(
            SamplePool(2), plan_count=2, transforms=3, seed=1
        )
        test = sample_points(2, 20, seed=0)
        assert predictor.predict_batch(test) == [None] * 20
        assert [predictor.predict(x) for x in test] == [None] * 20


class TestDecideBatchSaturation:
    """Scalar confidence saturates to exactly 1.0 at huge ratios; the
    interpolated batch path must not clamp a hair below it."""

    def test_saturated_ratio_is_exactly_one(self):
        model = ConfidenceModel()
        counts = np.array([[1e7, 1.0]])
        winners, confidences = model.decide_batch(counts, 0.9)
        plan, confidence = model.decide(counts[0], 0.9)
        assert winners[0] == plan
        assert confidence == 1.0
        assert confidences[0] == 1.0

    def test_frequency_model_batch_matches_scalar(self):
        model = FrequencyConfidenceModel()
        rng = np.random.default_rng(2)
        counts = rng.integers(0, 15, size=(200, 4)).astype(float)
        counts[0] = 0.0  # all-zero row
        counts[1] = [5.0, 0.0, 0.0, 0.0]  # pure neighborhood
        winners, confidences = model.decide_batch(counts, 0.6)
        for i in range(counts.shape[0]):
            plan, confidence = model.decide(counts[i], 0.6)
            expected = -1 if plan is None else plan
            assert winners[i] == expected
            assert confidences[i] == confidence


class TestParityProperties:
    """Hypothesis sweep: parity holds for arbitrary pools/configs."""

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        noise_fraction=st.one_of(
            st.none(), st.floats(0.0, 1.2, allow_nan=False)
        ),
        threshold=st.floats(0.0, 1.0, allow_nan=False),
    )
    def test_histogram_parity(self, seed, noise_fraction, threshold):
        rng = np.random.default_rng(seed)
        pool = SamplePool(2)
        n = int(rng.integers(1, 60))
        coords = rng.uniform(size=(n, 2))
        plan_ids = rng.integers(0, 3, size=n)
        for x, plan in zip(coords, plan_ids, strict=True):
            pool.add(x, int(plan), cost=float(rng.uniform(1.0, 9.0)))
        predictor = HistogramPredictor(
            pool,
            plan_count=3,
            transforms=3,
            radius=0.1,
            confidence_threshold=threshold,
            noise_fraction=noise_fraction,
            histogram_kind="incremental",
            seed=int(rng.integers(0, 1000)),
        )
        test = rng.uniform(size=(30, 2))
        scalar = [predictor.predict(test[i]) for i in range(30)]
        assert predictor.predict_batch(test) == scalar

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        threshold=st.floats(0.0, 1.0, allow_nan=False),
    )
    def test_lsh_parity(self, seed, threshold):
        rng = np.random.default_rng(seed)
        pool = SamplePool(2)
        n = int(rng.integers(1, 60))
        for __ in range(n):
            pool.add(
                rng.uniform(size=2),
                int(rng.integers(0, 3)),
                cost=float(rng.uniform(1.0, 9.0)),
            )
        predictor = LshPredictor(
            pool,
            plan_count=3,
            transforms=3,
            confidence_threshold=threshold,
            seed=int(rng.integers(0, 1000)),
        )
        test = rng.uniform(size=(30, 2))
        scalar = [predictor.predict(test[i]) for i in range(30)]
        assert predictor.predict_batch(test) == scalar
