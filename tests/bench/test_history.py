"""Append-only bench-run journal."""

import json

import pytest

from repro.bench.history import (
    append_run,
    latest_run,
    load_history,
    metric_history,
    next_run_id,
)
from repro.bench.schema import make_envelope, metric
from repro.exceptions import BenchError


def _envelope(bench="demo", value=10.0):
    return make_envelope(
        bench,
        metrics={"latency": metric(value, "us", "lower", tolerance_pct=50.0)},
    )


class TestAppendAndLoad:
    def test_round_trip_assigns_sequential_run_ids(self, tmp_path):
        journal = tmp_path / "history.jsonl"
        assert append_run(journal, {"demo": _envelope()}) == 1
        assert append_run(journal, {"demo": _envelope(value=11.0)}) == 2
        entries = load_history(journal)
        assert [entry["run_id"] for entry in entries] == [1, 2]
        assert all(entry["recorded"] for entry in entries)

    def test_one_line_per_bench(self, tmp_path):
        journal = tmp_path / "history.jsonl"
        append_run(
            journal,
            {"a": _envelope("a"), "b": _envelope("b")},
            suite="ci",
        )
        lines = journal.read_text().splitlines()
        assert len(lines) == 2
        assert {json.loads(line)["bench"] for line in lines} == {"a", "b"}
        assert all(json.loads(line)["suite"] == "ci" for line in lines)

    def test_empty_run_rejected(self, tmp_path):
        with pytest.raises(BenchError, match="empty"):
            append_run(tmp_path / "history.jsonl", {})

    def test_invalid_envelope_never_lands(self, tmp_path):
        journal = tmp_path / "history.jsonl"
        with pytest.raises(BenchError):
            append_run(journal, {"demo": {"bench": "demo"}})
        assert not journal.exists()

    def test_missing_journal_is_empty(self, tmp_path):
        assert load_history(tmp_path / "absent.jsonl") == []

    def test_torn_tail_is_skipped_not_fatal(self, tmp_path):
        journal = tmp_path / "history.jsonl"
        append_run(journal, {"demo": _envelope()})
        with open(journal, "a", encoding="utf-8") as handle:
            handle.write('{"run_id": 2, "bench": "demo", "envel')
        entries = load_history(journal)
        assert len(entries) == 1
        # And the next append does not reuse a torn line's id space.
        assert next_run_id(entries) == 2


class TestQueries:
    def test_latest_run_groups_benches(self, tmp_path):
        journal = tmp_path / "history.jsonl"
        append_run(journal, {"a": _envelope("a", 1.0)})
        append_run(
            journal, {"a": _envelope("a", 2.0), "b": _envelope("b", 3.0)}
        )
        run_id, envelopes = latest_run(load_history(journal))
        assert run_id == 2
        assert envelopes["a"]["metrics"]["latency"]["value"] == 2.0
        assert set(envelopes) == {"a", "b"}

    def test_latest_run_on_empty_journal_raises(self):
        with pytest.raises(BenchError, match="empty"):
            latest_run([])

    def test_metric_history_trajectory(self, tmp_path):
        journal = tmp_path / "history.jsonl"
        for value in (10.0, 11.0, 12.0):
            append_run(journal, {"demo": _envelope(value=value)})
        entries = load_history(journal)
        assert metric_history(entries, "demo", "latency") == [
            10.0,
            11.0,
            12.0,
        ]
        assert metric_history(
            entries, "demo", "latency", exclude_run=3
        ) == [10.0, 11.0]
        assert metric_history(entries, "other", "latency") == []
