"""Section III comparator algorithms."""

import numpy as np
import pytest

from repro.clustering import (
    DensityPredictor,
    KMeansPredictor,
    SingleLinkagePredictor,
    lloyd_kmeans,
)
from repro.core.point import SamplePool
from repro.exceptions import ConfigurationError, PredictionError


def _pool():
    pool = SamplePool(2)
    rng = np.random.default_rng(0)
    for x in rng.uniform(0.0, 0.4, size=(60, 2)):
        pool.add(x, 0)
    for x in rng.uniform(0.6, 1.0, size=(60, 2)):
        pool.add(x, 1)
    return pool


class TestLloydKMeans:
    def test_two_obvious_clusters(self):
        points = np.vstack(
            [
                np.random.default_rng(0).normal(0.2, 0.02, (30, 2)),
                np.random.default_rng(1).normal(0.8, 0.02, (30, 2)),
            ]
        )
        centroids, assignment = lloyd_kmeans(points, 2, seed=5)
        assert centroids.shape[0] == 2
        # Each cluster's centroid must land near one of the two blobs.
        sorted_means = np.sort(centroids[:, 0])
        assert sorted_means[0] == pytest.approx(0.2, abs=0.05)
        assert sorted_means[1] == pytest.approx(0.8, abs=0.05)

    def test_k_capped_by_point_count(self):
        points = np.array([[0.1, 0.1], [0.9, 0.9]])
        centroids, __ = lloyd_kmeans(points, 10, seed=0)
        assert centroids.shape[0] <= 2

    def test_assignment_covers_all_points(self):
        points = np.random.default_rng(2).uniform(0, 1, (50, 2))
        centroids, assignment = lloyd_kmeans(points, 5, seed=0)
        assert assignment.shape == (50,)
        assert assignment.max() < centroids.shape[0]

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            lloyd_kmeans(np.empty((0, 2)), 2)
        with pytest.raises(ConfigurationError):
            lloyd_kmeans(np.ones((5, 2)), 0)


class TestKMeansPredictor:
    def test_cluster_interiors(self):
        predictor = KMeansPredictor(_pool(), clusters_per_plan=5, radius=0.3)
        assert predictor.predict([0.2, 0.2]).plan_id == 0
        assert predictor.predict([0.8, 0.8]).plan_id == 1

    def test_radius_sanity_check(self):
        predictor = KMeansPredictor(_pool(), clusters_per_plan=5, radius=0.05)
        # Far from any centroid.
        assert predictor.predict([0.5, 0.02]) is None

    def test_space_accounting(self):
        predictor = KMeansPredictor(_pool(), clusters_per_plan=3, radius=0.3)
        assert predictor.space_bytes() == predictor._centroids.shape[0] * 12

    def test_empty_pool_rejected(self):
        with pytest.raises(PredictionError):
            KMeansPredictor(SamplePool(2))


class TestSingleLinkagePredictor:
    def test_nearest_label_wins(self):
        predictor = SingleLinkagePredictor(_pool(), radius=0.5)
        assert predictor.predict([0.1, 0.1]).plan_id == 0
        assert predictor.predict([0.9, 0.9]).plan_id == 1

    def test_radius_cutoff(self):
        pool = SamplePool(2)
        pool.add([0.0, 0.0], 0)
        predictor = SingleLinkagePredictor(pool, radius=0.1)
        assert predictor.predict([0.5, 0.5]) is None
        assert predictor.predict([0.05, 0.05]) is not None

    def test_boundary_blindness(self):
        """Single linkage confidently answers right at a boundary —
        the weakness density predict fixes."""
        pool = SamplePool(1)
        pool.add([0.49], 0)
        pool.add([0.51], 1)
        predictor = SingleLinkagePredictor(pool, radius=0.2)
        assert predictor.predict([0.498]).plan_id == 0

    def test_empty_pool_rejected(self):
        with pytest.raises(PredictionError):
            SingleLinkagePredictor(SamplePool(2))


class TestDensityPredictor:
    def test_is_baseline_under_a_section3_name(self):
        from repro.core.baseline import BaselinePredictor

        predictor = DensityPredictor(_pool(), radius=0.15)
        assert isinstance(predictor, BaselinePredictor)

    def test_boundary_caution(self):
        """Density predict declines where single linkage guesses."""
        pool = SamplePool(1)
        for v in np.linspace(0.3, 0.48, 10):
            pool.add([v], 0)
        for v in np.linspace(0.52, 0.7, 10):
            pool.add([v], 1)
        density = DensityPredictor(pool, radius=0.2, confidence_threshold=0.75)
        linkage = SingleLinkagePredictor(pool, radius=0.2)
        assert density.predict([0.5]) is None
        assert linkage.predict([0.5]) is not None
