"""Workload generation: query instances, histories and test workloads.

* :mod:`~repro.workload.template` — binding between query-instance
  parameter values and normalized plan-space points (the ``f`` map).
* :mod:`~repro.workload.history` — the workload history of Definition 3.
* :mod:`~repro.workload.uniform` — offline uniform plan-space sampling.
* :mod:`~repro.workload.trajectories` — the random-trajectories online
  workload of Section V (Figure 7).
* :mod:`~repro.workload.drift` — mid-workload plan-space manipulation
  for the drift-detection experiment (Section V-D).
"""

from repro.workload.drift import ManipulatedPlanSpace
from repro.workload.history import HistoryEntry, WorkloadHistory
from repro.workload.mixture import MixtureWorkload
from repro.workload.template import QueryInstance, TemplateBinder
from repro.workload.trajectories import RandomTrajectoryWorkload
from repro.workload.uniform import sample_labeled_pool, sample_points

__all__ = [
    "ManipulatedPlanSpace",
    "HistoryEntry",
    "MixtureWorkload",
    "WorkloadHistory",
    "QueryInstance",
    "TemplateBinder",
    "RandomTrajectoryWorkload",
    "sample_labeled_pool",
    "sample_points",
]
