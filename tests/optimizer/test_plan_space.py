"""The plan-space oracle: harvesting, labeling, cost queries."""

import numpy as np
import pytest

from repro.exceptions import OptimizationError
from repro.optimizer.expressions import (
    ColumnRef,
    ParamPredicate,
    QueryTemplate,
)
from repro.optimizer.plan_space import PlanSpace


class TestHarvest:
    def test_plans_discovered(self, tiny_space):
        assert tiny_space.plan_count >= 2
        assert len(tiny_space.plans) == tiny_space.plan_count

    def test_plan_fingerprints_unique(self, tiny_space):
        prints = [p.fingerprint for p in tiny_space.plans]
        assert len(set(prints)) == len(prints)

    def test_deterministic_under_seed(self, tiny_template, tiny_catalog):
        a = PlanSpace(tiny_template, tiny_catalog, seed=3)
        b = PlanSpace(tiny_template, tiny_catalog, seed=3)
        points = np.random.default_rng(0).uniform(0, 1, (50, 2))
        assert (a.plan_at(points) == b.plan_at(points)).all()

    def test_zero_degree_template_rejected(self, tiny_catalog):
        template = QueryTemplate(name="none", tables=("dept",))
        with pytest.raises(OptimizationError):
            PlanSpace(template, tiny_catalog)


class TestLabeling:
    def test_label_matches_dp_at_harvest_points(self, tiny_space):
        """At any point, the oracle's plan cost equals the DP result."""
        rng = np.random.default_rng(1)
        for point in rng.uniform(0, 1, (10, 2)):
            dp_plan, dp_cost = tiny_space._enumerator.optimize(point[None, :])
            ids, costs = tiny_space.label(point[None, :])
            assert costs[0] <= dp_cost + 1e-9

    def test_costs_are_minimal_over_candidates(self, tiny_space):
        points = np.random.default_rng(2).uniform(0, 1, (100, 2))
        matrix = tiny_space.cost_matrix(points)
        ids, costs = tiny_space.label(points)
        assert np.allclose(costs, matrix.min(axis=0))

    def test_cost_at_specific_plan_ge_optimal(self, tiny_space):
        points = np.random.default_rng(3).uniform(0, 1, (50, 2))
        __, optimal = tiny_space.label(points)
        for plan_id in range(tiny_space.plan_count):
            costs = tiny_space.cost_at(points, plan_id)
            assert (costs >= optimal - 1e-9).all()

    def test_cost_at_optimal_plan_matches_label(self, tiny_space):
        point = np.array([[0.4, 0.6]])
        ids, costs = tiny_space.label(point)
        direct = tiny_space.cost_at(point, int(ids[0]))
        assert direct[0] == pytest.approx(costs[0])

    def test_out_of_cube_points_rejected(self, tiny_space):
        with pytest.raises(OptimizationError):
            tiny_space.label(np.array([[1.5, 0.5]]))

    def test_wrong_dimension_rejected(self, tiny_space):
        with pytest.raises(OptimizationError):
            tiny_space.label(np.array([[0.5, 0.5, 0.5]]))

    def test_single_point_convenience(self, tiny_space):
        ids = tiny_space.plan_at(np.array([0.5, 0.5]))
        assert ids.shape == (1,)


class TestTpchSpaces:
    def test_q1_has_multiple_plans(self, q1_space):
        assert q1_space.plan_count >= 3

    def test_q1_regions_nontrivial(self, q1_space):
        points = np.random.default_rng(4).uniform(0, 1, (2000, 2))
        ids = q1_space.plan_at(points)
        __, counts = np.unique(ids, return_counts=True)
        # At least two plans occupy more than 10 % of the space each.
        assert (counts / 2000 > 0.10).sum() >= 2

    def test_costs_positive_everywhere(self, q1_space):
        points = np.random.default_rng(5).uniform(0, 1, (500, 2))
        __, costs = q1_space.label(points)
        assert (costs > 0).all()
