"""Ball geometry helpers shared by predictors and experiments.

The query radius ``d`` is a *volume* dial in disguise: the expected
number of uniform samples inside a radius-``d`` ball is proportional to
the ball's volume, which collapses exponentially with dimensionality.
A radius that works in two dimensions sees nothing in six.
``equivalent_radius`` converts a reference low-dimensional radius into
the radius enclosing the same volume (hence the same expected sample
mass) in a higher-dimensional plan space — the scaling every
high-degree experiment needs to keep density estimation meaningful.
"""

from __future__ import annotations

import math

from repro.exceptions import ConfigurationError


def unit_ball_volume(dims: int) -> float:
    """Volume of the unit ball in ``dims`` dimensions."""
    if dims < 1:
        raise ConfigurationError("dimension must be >= 1")
    return math.pi ** (dims / 2.0) / math.gamma(dims / 2.0 + 1.0)


def ball_volume(radius: float, dims: int) -> float:
    """Volume of a ``dims``-dimensional ball of the given radius."""
    if radius < 0.0:
        raise ConfigurationError("radius must be >= 0")
    return unit_ball_volume(dims) * radius**dims


def equivalent_radius(
    radius: float, dims: int, reference_dims: int = 2
) -> float:
    """Radius in ``dims`` dimensions enclosing the same volume as
    ``radius`` does in ``reference_dims`` dimensions."""
    if radius <= 0.0:
        raise ConfigurationError("radius must be > 0")
    volume = ball_volume(radius, reference_dims)
    return (volume / unit_ball_volume(dims)) ** (1.0 / dims)
