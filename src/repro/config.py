"""Configuration dataclasses for the PPC framework.

Defaults follow the paper's reference configuration where one is given:
``t = 5`` transforms, ``b_h = 40`` histogram buckets, confidence
threshold ``gamma = 0.8`` online (0.7 offline), 5 % mean optimizer
invocation probability, cost error bound ``epsilon = 0.25``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class ResilienceConfig:
    """Degraded-mode knobs of the guarded decision flow.

    Optimizer invocations get ``retry_attempts`` tries with capped
    exponential backoff under ``retry_deadline`` seconds; after
    ``breaker_failure_threshold`` consecutive exhausted invocations the
    per-template circuit breaker opens and the session serves the last
    cached plan until ``breaker_recovery_time`` elapses (then admits
    ``breaker_half_open_trials`` probes).  ``validate_points`` rejects
    NaN/inf/out-of-domain instances up front with a clean
    :class:`~repro.exceptions.PredictionError`.
    """

    retry_attempts: int = 3
    retry_base_delay: float = 0.01
    retry_multiplier: float = 2.0
    retry_max_delay: float = 0.25
    retry_deadline: "float | None" = 2.0
    breaker_failure_threshold: int = 3
    breaker_recovery_time: float = 5.0
    breaker_half_open_trials: int = 1
    validate_points: bool = True

    def __post_init__(self) -> None:
        if self.retry_attempts < 1:
            raise ConfigurationError("retry attempts must be >= 1")
        if self.retry_base_delay < 0.0 or self.retry_max_delay < 0.0:
            raise ConfigurationError("retry delays must be >= 0")
        if self.retry_multiplier < 1.0:
            raise ConfigurationError("retry multiplier must be >= 1")
        if self.retry_deadline is not None and self.retry_deadline <= 0.0:
            raise ConfigurationError("retry deadline must be > 0")
        if self.breaker_failure_threshold < 1:
            raise ConfigurationError("breaker failure threshold must be >= 1")
        if self.breaker_recovery_time < 0.0:
            raise ConfigurationError("breaker recovery time must be >= 0")
        if self.breaker_half_open_trials < 1:
            raise ConfigurationError("breaker half-open trials must be >= 1")


@dataclass(frozen=True)
class TraceConfig:
    """Sampling knobs of the per-template decision flight recorder.

    Every ``TemplateSession.execute`` asks the sampler whether to build
    a full :class:`~repro.obs.tracing.DecisionTrace`; unsampled
    executions pay one no-op method call per stage and allocate
    nothing.  Sampling is deterministic (no RNG): the first ``head``
    executions are always traced, every ``interval``-th execution after
    that (0 disables interval sampling), and — error-biased — the
    ``error_burst`` executions following any degraded/fallback/raised
    instance, so the recorder holds the run-up to every incident.
    ``explain`` bypasses the sampler entirely (decision ``forced``).
    """

    enabled: bool = True
    head: int = 8
    interval: int = 0
    error_burst: int = 4
    capacity: int = 256
    error_capacity: int = 64

    def __post_init__(self) -> None:
        if self.head < 0:
            raise ConfigurationError("trace head must be >= 0")
        if self.interval < 0:
            raise ConfigurationError("trace interval must be >= 0")
        if self.error_burst < 0:
            raise ConfigurationError("trace error burst must be >= 0")
        if self.capacity < 1 or self.error_capacity < 1:
            raise ConfigurationError("trace capacities must be >= 1")


@dataclass(frozen=True)
class PPCConfig:
    """Knobs of one template's online plan-caching session."""

    transforms: int = 5
    resolution: int = 16
    max_buckets: int = 40
    radius: float = 0.05
    confidence_threshold: float = 0.8
    noise_fraction: "float | None" = 0.002
    mean_invocation_probability: float = 0.05
    negative_feedback: bool = True
    cost_epsilon: float = 0.25
    #: Positive feedback (the paper's future-work extension): insert
    #: trusted predictions as discounted, capped sample points.
    positive_feedback: bool = False
    positive_feedback_min_confidence: float = 0.97
    positive_feedback_weight: float = 0.25
    positive_feedback_mass_cap: float = 0.5
    monitor_window: int = 100
    drift_threshold: float = 0.5
    drift_min_observations: int = 30
    drift_response: bool = True
    cache_capacity: int = 32
    #: Degraded-mode behavior (retry/backoff, circuit breaker, input
    #: validation); the defaults cost nothing while dependencies are
    #: healthy.
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    #: Decision-trace sampling and flight-recorder sizing; the default
    #: traces the first few executions plus an error-biased burst.
    trace: TraceConfig = field(default_factory=TraceConfig)

    def __post_init__(self) -> None:
        if self.transforms < 1:
            raise ConfigurationError("transforms must be >= 1")
        if self.max_buckets < 1:
            raise ConfigurationError("max_buckets must be >= 1")
        if self.radius <= 0.0:
            raise ConfigurationError("radius must be > 0")
        if not 0.0 <= self.confidence_threshold <= 1.0:
            raise ConfigurationError("confidence threshold must be in [0, 1]")
        if not 0.0 <= self.mean_invocation_probability <= 1.0:
            raise ConfigurationError(
                "mean invocation probability must be in [0, 1]"
            )
        if self.cache_capacity < 1:
            raise ConfigurationError("cache capacity must be >= 1")
