"""Parameter relevance analysis (the paper's future-work extension).

Section VII: *"naively [adding parameters] could pollute the parameter
space with irrelevant parameters that reduce the precision of the
decision models; hence, further research into parameter modeling and
selection is needed."*

This module implements that selection step.  Given labeled plan-space
samples, :class:`ParameterRelevanceAnalyzer` estimates how strongly
each axis drives the optimizer's plan choice, using a nearest-neighbor
attribution estimator:

1. pair every sample with its ``k`` nearest neighbors;
2. per axis, compare the mean squared displacement of *disagreeing*
   pairs (different plans) with that of agreeing pairs — disagreeing
   pairs moved systematically further along axes that drive plan
   boundaries, and no further than usual along irrelevant axes.

The resulting per-axis weights plug into the LSH predictors
(``axis_weights``), which compress irrelevant axes toward the cube
centre before transforming — so grid cells aggregate over directions
that cannot flip the plan instead of wasting resolution on them.
"""

from __future__ import annotations

import numpy as np

from repro.core.point import SamplePool
from repro.exceptions import ConfigurationError


class ParameterRelevanceAnalyzer:
    """Estimates per-axis plan-choice relevance from labeled samples."""

    def __init__(
        self,
        coords: "np.ndarray | SamplePool",
        plan_ids: "np.ndarray | None" = None,
        neighbors: int = 4,
        chunk_size: int = 512,
    ) -> None:
        if isinstance(coords, SamplePool):
            plan_ids = coords.plan_ids
            coords = coords.coords
        coords = np.asarray(coords, dtype=float)
        plan_ids = np.asarray(plan_ids)
        if coords.ndim != 2 or coords.shape[0] < 2:
            raise ConfigurationError(
                "relevance analysis needs at least two labeled samples"
            )
        if plan_ids.shape[0] != coords.shape[0]:
            raise ConfigurationError("coords and plan_ids must align")
        self.coords = coords
        self.plan_ids = plan_ids
        self.neighbors = min(neighbors, coords.shape[0] - 1)
        self.chunk_size = chunk_size
        self._flip_rates: "np.ndarray | None" = None

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def _neighbor_pairs(self) -> tuple[np.ndarray, np.ndarray]:
        """(sources, targets) index arrays of all k-NN pairs (chunked)."""
        n = self.coords.shape[0]
        sources = np.repeat(np.arange(n), self.neighbors)
        targets = np.empty((n, self.neighbors), dtype=np.int64)
        for start in range(0, n, self.chunk_size):
            stop = min(start + self.chunk_size, n)
            block = self.coords[start:stop]
            distances = np.linalg.norm(
                block[:, None, :] - self.coords[None, :, :], axis=2
            )
            for row in range(stop - start):
                distances[row, start + row] = np.inf
            targets[start:stop] = np.argsort(distances, axis=1)[
                :, : self.neighbors
            ]
        return sources, targets.ravel()

    def axis_flip_rates(self) -> np.ndarray:
        """Per-axis disagreement-displacement ratio.

        ``E[dx_k^2 | plans differ] / E[dx_k^2 | plans agree]`` over all
        k-NN pairs: above 1 means movement along axis ``k``
        systematically accompanies plan flips (relevant); near or below
        1 means the axis does not drive boundaries.
        """
        if self._flip_rates is not None:
            return self._flip_rates
        sources, targets = self._neighbor_pairs()
        displacement = (self.coords[sources] - self.coords[targets]) ** 2
        disagree = self.plan_ids[sources] != self.plan_ids[targets]

        if not disagree.any() or disagree.all():
            # No boundary evidence: every axis looks equally (ir)relevant.
            self._flip_rates = np.ones(self.coords.shape[1])
            return self._flip_rates
        mean_disagree = displacement[disagree].mean(axis=0)
        mean_agree = displacement[~disagree].mean(axis=0)
        with np.errstate(divide="ignore", invalid="ignore"):
            self._flip_rates = np.where(
                mean_agree > 0.0,
                mean_disagree / np.maximum(mean_agree, 1e-300),
                1.0,
            )
        return self._flip_rates

    # ------------------------------------------------------------------
    # Selection outputs
    # ------------------------------------------------------------------
    def axis_weights(
        self, floor: float = 0.05, temperature: float = 0.1
    ) -> np.ndarray:
        """Per-axis weights in ``[floor, 1]``.

        A logistic squash around the natural pivot (rate 1.0 = "flips at
        the base rate"): clearly relevant axes approach weight 1,
        clearly irrelevant ones approach ``floor``.  Feed the result to
        a predictor's ``axis_weights`` to compress irrelevant directions
        before hashing.
        """
        rates = self.axis_flip_rates()
        squashed = 1.0 / (1.0 + np.exp(-(rates - 1.0) / temperature))
        return np.clip(floor + (1.0 - floor) * squashed, floor, 1.0)

    def relevant_axes(self, threshold: float = 1.0) -> list[int]:
        """Axes whose flip rate exceeds ``threshold`` (default: the
        base-rate pivot — disagreeing pairs moved further along them
        than agreeing pairs did)."""
        rates = self.axis_flip_rates()
        return [int(i) for i in np.flatnonzero(rates > threshold)]

    def suggested_output_dims(self, threshold: float = 1.0) -> int:
        """An ``s`` for dimensionality reduction: the number of axes
        that genuinely drive plan choice (at least 1)."""
        return max(1, len(self.relevant_axes(threshold)))


def apply_axis_weights(
    points: np.ndarray, weights: "np.ndarray | None"
) -> np.ndarray:
    """Compress each axis toward the cube centre by its weight.

    ``x' = 0.5 + (x - 0.5) * w`` keeps points inside ``[0, 1]^r``
    (weights lie in ``[0, 1]``) and is locality-preserving per axis, so
    the plan-choice predictability assumption survives the rescaling.
    """
    if weights is None:
        return points
    weights = np.asarray(weights, dtype=float)
    points = np.asarray(points, dtype=float)
    if weights.shape[0] != points.shape[-1]:
        raise ConfigurationError("axis weights must match dimensionality")
    if (weights < 0.0).any() or (weights > 1.0).any():
        raise ConfigurationError("axis weights must lie in [0, 1]")
    return 0.5 + (points - 0.5) * weights
