"""Figure 7: the random-trajectories workload.

Characterizes one generated workload — consecutive-step distances vs
the spread parameter r_d and plan coverage along the way — and times
workload generation.
"""

import numpy as np

from _bench_utils import write_result
from repro.tpch import plan_space_for
from repro.workload import RandomTrajectoryWorkload


def test_fig07_trajectory_workload(benchmark):
    space = plan_space_for("Q1")
    lines = [
        "Figure 7 — random-trajectories workloads over Q1 (1000 instances,",
        "10 trajectories)",
        "",
        f"{'r_d':>6s} {'median step':>12s} {'plans visited':>14s}",
    ]
    medians = []
    for spread in (0.01, 0.02, 0.04, 0.08):
        workload = RandomTrajectoryWorkload(
            2, spread=spread, seed=7
        ).generate(1000)
        steps = np.linalg.norm(np.diff(workload, axis=0), axis=1)
        visited = len(np.unique(space.plan_at(workload)))
        medians.append(float(np.median(steps)))
        lines.append(
            f"{spread:6.2f} {np.median(steps):12.4f} {visited:14d}"
        )
    write_result("fig07_trajectories", lines)

    # Larger r_d -> larger jitter between consecutive instances.
    assert medians == sorted(medians)

    generator = RandomTrajectoryWorkload(2, spread=0.02, seed=7)
    benchmark(generator.generate, 1000)
