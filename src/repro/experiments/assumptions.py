"""Figure 14 (Appendix B): experimental validation of the assumptions.

* Assumption 1 (plan choice predictability): pair test points with
  neighbors at distance at most ``d``; the probability that a pair
  shares the optimal plan — reported as the lower bound of the 95 %
  confidence interval — should stay high for small ``d`` and decay
  slowly as ``d`` grows.
* Assumption 2 (plan cost predictability): among same-plan pairs, the
  relative cost difference should be bounded by a small ``epsilon``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.rng import as_generator
from repro.tpch import plan_space_for
from repro.workload import sample_points


@dataclass(frozen=True)
class AssumptionRow:
    """Validation numbers for one (template, d) cell."""

    template: str
    distance: float
    same_plan_probability: float
    same_plan_lower_bound_95: float
    cost_epsilon_p90: float


def _neighbor_at_distance(
    point: np.ndarray, max_distance: float, rng: np.random.Generator
) -> np.ndarray:
    """A uniform point of the ball around ``point``, clipped to the cube."""
    direction = rng.standard_normal(point.shape[0])
    direction /= np.linalg.norm(direction)
    radius = max_distance * rng.random() ** (1.0 / point.shape[0])
    return np.clip(point + radius * direction, 0.0, 1.0)


def run_assumption_validation(
    templates: tuple[str, ...] = ("Q0", "Q1", "Q2", "Q3", "Q4", "Q5"),
    distances: tuple[float, ...] = (0.01, 0.02, 0.05, 0.1, 0.2),
    test_points: int = 200,
    neighbors_per_point: int = 200,
    seed: int = 7,
) -> list[AssumptionRow]:
    """The Appendix B experiment over Q0-Q5."""
    rows = []
    for template in templates:
        plan_space = plan_space_for(template)
        rng = as_generator(seed)
        anchors = sample_points(plan_space.dimensions, test_points, seed=rng)
        anchor_ids, anchor_costs = plan_space.label(anchors)
        for distance in distances:
            same = 0
            total = 0
            epsilons = []
            for i in range(test_points):
                neighbors = np.vstack(
                    [
                        _neighbor_at_distance(anchors[i], distance, rng)
                        for __ in range(neighbors_per_point)
                    ]
                )
                ids, costs = plan_space.label(neighbors)
                matches = ids == anchor_ids[i]
                same += int(matches.sum())
                total += neighbors_per_point
                if matches.any() and anchor_costs[i] > 0:
                    ratio = costs[matches] / anchor_costs[i]
                    epsilons.append(
                        float(np.abs(ratio - 1.0).max(initial=0.0))
                    )
            probability = same / total
            # Normal-approximation lower bound of the 95 % CI.
            stderr = math.sqrt(
                max(probability * (1.0 - probability), 1e-12) / total
            )
            lower = max(0.0, probability - 1.96 * stderr)
            rows.append(
                AssumptionRow(
                    template=template,
                    distance=distance,
                    same_plan_probability=probability,
                    same_plan_lower_bound_95=lower,
                    cost_epsilon_p90=(
                        float(np.percentile(epsilons, 90)) if epsilons else 0.0
                    ),
                )
            )
    return rows
