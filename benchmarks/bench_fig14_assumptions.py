"""Figure 14 (Appendix B): validating the predictability assumptions.

P(same plan | distance <= d), reported at the 95 % lower bound, over
Q0-Q5 as d varies — plus the 90th-percentile relative cost deviation of
same-plan pairs (Assumption 2).  Paper shape: high probability at small
d, decaying slowly with distance.
"""

from _bench_utils import write_result
from repro.experiments.assumptions import run_assumption_validation


def test_fig14_assumption_validation(benchmark):
    rows = benchmark.pedantic(
        run_assumption_validation,
        kwargs=dict(
            templates=("Q0", "Q1", "Q2", "Q3", "Q4", "Q5"),
            distances=(0.01, 0.02, 0.05, 0.1, 0.2),
            test_points=60,
            neighbors_per_point=100,
            seed=7,
        ),
        rounds=1,
        iterations=1,
    )
    lines = [
        "Figure 14 — plan choice predictability: P(same plan | dist <= d),",
        "95% lower bound, and same-plan cost deviation (p90) over Q0-Q5",
        "",
        f"{'template':>8s} {'d':>6s} {'P(same)':>8s} {'95% LB':>8s} "
        f"{'cost dev p90':>13s}",
    ]
    for row in rows:
        lines.append(
            f"{row.template:>8s} {row.distance:6.2f} "
            f"{row.same_plan_probability:8.3f} "
            f"{row.same_plan_lower_bound_95:8.3f} "
            f"{row.cost_epsilon_p90:13.3f}"
        )
    write_result("fig14_assumptions", lines)

    for template in ("Q0", "Q1", "Q2", "Q3", "Q4", "Q5"):
        cells = [r for r in rows if r.template == template]
        # Assumption 1 holds at small distances and decays with d.
        assert cells[0].same_plan_probability > 0.85, template
        assert (
            cells[0].same_plan_probability
            >= cells[-1].same_plan_probability - 1e-9
        )
