"""Adversarial scenario matrix: every named scenario, every contract.

Thin wrapper over :func:`repro.bench.runners.run_scenarios` — the same
measurement core behind ``repro bench run`` and ``repro scenarios run
--out``.  Runs the fast tier of the whole scenario fleet (the same
tier CI runs), asserts every robustness contract holds, and
additionally pins the replay determinism property: a recorded trace of
one scenario must re-run bit-identically.  The schema-v2 matrix lands
in ``benchmarks/results/BENCH_scenarios.json`` so contract
observations (detection latency, regret, fallback counts) can be
diffed across PRs instead of eyeballed.
"""

from _bench_utils import write_bench_json, write_result
from repro.bench.runners import run_scenarios
from repro.workload.replay import record_trace, verify_trace
from repro.workload.scenarios import SCENARIO_NAMES, get_scenario


def test_scenario_matrix():
    envelope = run_scenarios()
    elapsed = envelope["metrics"]["elapsed_seconds"]["value"]
    lines = [
        "Adversarial scenario fleet, fast tier "
        f"({len(SCENARIO_NAMES)} scenarios, {elapsed:.1f}s)",
        "",
    ]
    for row in envelope["details"]["scenarios"]:
        status = "PASS" if row["passed"] else "FAIL"
        lines.append(
            f"{status} {row['scenario']:<22s} {row['instances']:>5d} "
            f"instances  {row['errors']} errors  "
            f"{row['fallbacks']} fallbacks"
        )
        for contract in row["contracts"]:
            mark = "ok  " if contract["passed"] else "FAIL"
            lines.append(
                f"  {mark} {contract['contract']}: "
                f"{contract['observed']}"
            )
    write_result("scenarios", lines)
    write_bench_json("scenarios", envelope)

    failed = [
        f"{row['scenario']}: {contract['contract']}"
        for row in envelope["details"]["scenarios"]
        for contract in row["contracts"]
        if not contract["passed"]
    ]
    assert not failed, f"robustness contracts breached: {failed}"
    assert envelope["metrics"]["contracts_failed"]["value"] == 0


def test_replay_round_trip(tmp_path):
    """A recorded scenario trace re-runs bit-identically."""
    trace = tmp_path / "trace_step_drift.jsonl"
    record_trace(get_scenario("step_drift"), trace, fast=True)
    report = verify_trace(trace)
    assert report["identical"], report["mismatches"]
