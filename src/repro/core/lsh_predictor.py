"""APPROXIMATE-LSH: median density over randomized grids (Section IV-B).

``t`` randomized locality-preserving transformations produce ``t``
independently oriented grids.  Each grid yields one estimate of the
per-plan density around the test point (the count in the bucket
containing the transformed point); the median of the ``t`` estimates
feeds the confidence sanity check.  A bucket misaligned with the plan
clusters in one transform is overruled by the others, so precision
approaches BASELINE at a fraction of the space.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.confidence import ConfidenceModel
from repro.core.point import SamplePool
from repro.core.predictor import PlanPredictor, Prediction
from repro.core.relevance import apply_axis_weights
from repro.exceptions import PredictionError
from repro.lsh.grid import Grid
from repro.lsh.transforms import TransformEnsemble

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.tracing import DecisionTrace


class LshPredictor(PlanPredictor):
    """Median-of-``t`` grid densities with the confidence sanity check."""

    def __init__(
        self,
        pool: SamplePool,
        plan_count: "int | None" = None,
        transforms: int = 5,
        resolution: int = 8,
        confidence_threshold: float = 0.7,
        output_dims: "int | None" = None,
        aggregation: str = "median",
        axis_weights: "np.ndarray | None" = None,
        seed: "int | np.random.Generator | None" = 0,
        confidence_model: "ConfidenceModel | None" = None,
    ) -> None:
        if aggregation not in ("median", "mean"):
            raise PredictionError(f"unknown aggregation {aggregation!r}")
        self.dimensions = pool.dimensions
        self.confidence_threshold = confidence_threshold
        self.aggregation = aggregation
        self.axis_weights = (
            None if axis_weights is None
            else np.asarray(axis_weights, dtype=float)
        )
        self.model = confidence_model or ConfidenceModel()
        # Default s = r (the paper's choice for low dimensions); pass
        # output_dims < r explicitly to study dimensionality reduction —
        # it only pays off when some plan-space axes are redundant.
        self.ensemble = TransformEnsemble(
            transforms,
            self.dimensions,
            output_dims=output_dims,
            resolution=resolution,
            seed=seed,
        )
        self.grids = [
            Grid(*transform.output_bounds, resolution)
            for transform in self.ensemble
        ]
        if plan_count is None:
            if len(pool) == 0:
                raise PredictionError(
                    "APPROXIMATE-LSH needs samples or an explicit plan count"
                )
            plan_count = int(pool.plan_ids.max()) + 1
        self.plan_count = plan_count
        self._counts = [
            np.zeros((plan_count, grid.total_cells)) for grid in self.grids
        ]
        self._cost_sums = [np.zeros_like(c) for c in self._counts]
        if len(pool):
            self._insert_pool(pool)

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def _insert_pool(self, pool: SamplePool) -> None:
        coords = pool.coords
        for index, transform in enumerate(self.ensemble):
            cells = self.grids[index].cell_ids(transform.apply(apply_axis_weights(coords, self.axis_weights)))
            counts = self._counts[index]
            cost_sums = self._cost_sums[index]
            for cell, plan, cost in zip(cells, pool.plan_ids, pool.costs, strict=True):
                counts[plan, cell] += 1.0
                cost_sums[plan, cell] += cost

    def insert(self, x: np.ndarray, plan_id: int, cost: float = 0.0) -> None:
        """Add one labeled point to every transformed grid."""
        x = self._check_point(x)
        for index, transform in enumerate(self.ensemble):
            cell = int(self.grids[index].cell_ids(transform.apply(apply_axis_weights(x[None, :], self.axis_weights)))[0])
            self._counts[index][plan_id, cell] += 1.0
            self._cost_sums[index][plan_id, cell] += cost

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def median_counts(
        self, x: np.ndarray, trace: "DecisionTrace | None" = None
    ) -> np.ndarray:
        """Per-plan bucket count aggregated across the ``t`` transforms
        (median by default; mean under the ablation setting).

        With an active ``trace``, each transform's grid-cell lookup
        gets a span (cell id, per-plan counts, the transform's argmax
        vote) plus an ``aggregate`` span; the counts are identical
        either way.
        """
        x = self._check_point(x)
        traced = trace is not None and trace.active
        estimates = np.empty((len(self.grids), self.plan_count))
        for index, transform in enumerate(self.ensemble):
            cell = int(self.grids[index].cell_ids(transform.apply(apply_axis_weights(x[None, :], self.axis_weights)))[0])
            estimates[index] = self._counts[index][:, cell]
            if traced:
                row = estimates[index]
                with trace.span("transform") as span:
                    span.set(
                        index=index,
                        cell=cell,
                        counts=[float(c) for c in row],
                        vote=int(row.argmax()) if row.max() > 0.0 else None,
                    )
        counts = (
            estimates.mean(axis=0)
            if self.aggregation == "mean"
            else np.median(estimates, axis=0)
        )
        if traced:
            with trace.span("aggregate") as span:
                span.set(
                    method=self.aggregation,
                    counts=[float(c) for c in counts],
                )
        return counts

    def predict(
        self, x: np.ndarray, trace: "DecisionTrace | None" = None
    ) -> "Prediction | None":
        x = self._check_point(x)
        traced = trace is not None and trace.active
        counts = self.median_counts(x, trace=trace)
        if traced:
            with trace.span("confidence") as span:
                plan_id, confidence, detail = self.model.explain_decide(
                    counts, self.confidence_threshold
                )
                span.set(**detail)
        else:
            plan_id, confidence = self.model.decide(
                counts, self.confidence_threshold
            )
        if plan_id is None:
            return None
        return Prediction(plan_id, confidence, self._median_cost(x, plan_id))

    def _median_cost(self, x: np.ndarray, plan_id: int) -> "float | None":
        """Median of the per-transform average bucket costs."""
        averages = []
        for index, transform in enumerate(self.ensemble):
            cell = int(self.grids[index].cell_ids(transform.apply(apply_axis_weights(x[None, :], self.axis_weights)))[0])
            count = self._counts[index][plan_id, cell]
            if count > 0:
                averages.append(self._cost_sums[index][plan_id, cell] / count)
        if not averages:
            return None
        return float(np.median(averages))

    def space_bytes(self) -> int:
        """``t * n_plans * buckets * 8`` bytes (count + average cost)."""
        return sum(
            self.plan_count * grid.total_cells * 8 for grid in self.grids
        )
