"""Ablation: the noise-elimination threshold.

Section IV-C fixes the threshold at "a constant factor of the total
number of plan space points" without reporting the factor.  This sweep
maps the dial on the online variant: recall is the casualty of an
aggressive threshold, while a disabled check leaves the z-order false
positives unfiltered.
"""

from _bench_utils import write_result
from repro.experiments.online_perf import run_noise_sweep


def test_ablation_noise_threshold(benchmark):
    runs = benchmark.pedantic(
        run_noise_sweep,
        kwargs=dict(
            template="Q1",
            fractions=(None, 0.001, 0.002, 0.005, 0.02, 0.05),
            workload_size=800,
            repeats=3,
            seed=7,
        ),
        rounds=1,
        iterations=1,
    )
    lines = [
        "Ablation — noise-elimination threshold (Q1, r_d = 0.02,",
        "800 instances, 3 workloads)",
        "",
        f"{'threshold':>10s} {'precision':>10s} {'recall':>8s} "
        f"{'invocations':>12s}",
    ]
    for run in runs:
        lines.append(
            f"{run.variant:>10s} {run.precision:10.3f} {run.recall:8.3f} "
            f"{run.optimizer_invocations:12d}"
        )
    write_result("ablation_noise", lines)

    by_variant = {run.variant: run for run in runs}
    # An aggressive threshold must cost recall relative to the default.
    assert by_variant["nu=0.05"].recall < by_variant["nu=0.002"].recall
    # The default threshold costs little recall against no filtering.
    assert by_variant["nu=0.002"].recall > by_variant["off"].recall - 0.1
    # Precision stays high across the sweep on this clean space.
    for run in runs:
        assert run.precision > 0.9
