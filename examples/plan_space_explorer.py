"""Explore a query template's plan space.

Renders the plan diagram of a two-parameter template as ASCII art (the
library's Figure 2), lists every plan the optimizer ever picks with its
operator tree and area share, and validates the paper's plan-choice
predictability assumption over the space.

Run:  python examples/plan_space_explorer.py [Q0|Q1|Q2]
"""

import sys

import numpy as np

from repro.experiments.diagrams import plan_diagram
from repro.tpch import plan_space_for, query_template
from repro.workload import sample_points


def main(template_name: str = "Q1") -> None:
    template = query_template(template_name)
    if template.parameter_degree != 2:
        raise SystemExit(
            f"{template_name} has degree {template.parameter_degree}; "
            "pick a two-parameter template (Q0, Q1, Q2) for the diagram"
        )
    space = plan_space_for(template_name)

    print(f"=== {template_name}: {template.description}")
    print(f"SQL : {template.sql()}")
    print()

    diagram = plan_diagram(template_name, resolution=40)
    print("Plan diagram (x = param 0 ->, y = param 1 ^):")
    print(diagram.render())
    print()

    print("Plans, largest region first:")
    ranked = sorted(
        diagram.plan_fractions.items(), key=lambda kv: -kv[1]
    )
    for plan_id, fraction in ranked:
        plan = space.plan(plan_id)
        print(f"\nP{plan_id} — {fraction:.1%} of the space")
        print(plan.describe())

    # Validate Assumption 1 over this space: nearby points usually share
    # the optimizer's plan choice.
    rng = np.random.default_rng(0)
    anchors = sample_points(2, 500, seed=rng)
    offsets = rng.normal(0.0, 0.02, size=anchors.shape)
    neighbors = np.clip(anchors + offsets, 0.0, 1.0)
    agreement = (space.plan_at(anchors) == space.plan_at(neighbors)).mean()
    print(f"\nP(same plan | ~0.02 apart) = {agreement:.2f} "
          "(plan choice predictability, Assumption 1)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "Q1")
