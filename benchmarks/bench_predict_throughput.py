"""Amortized batch-predict throughput on the hot path.

Thin wrapper over :func:`repro.bench.runners.run_predict_throughput` —
the same measurement core behind ``repro bench run`` — so the pytest
bench, the CI gate, and the committed schema-v2 snapshot can never
drift apart.  One Q1 session is warmed through the normal online
workflow, then the same probe batch is pushed through the
struct-of-arrays ``predict_batch`` primitive and, for comparison, the
scalar ``predict`` loop it replaced; the runner asserts the two paths
agree bit-for-bit.

The acceptance bar from the vectorization work: the batch path must
amortize to at most ``PREDICT_TARGET_US`` microseconds per instance;
the hard assert fails at 2x that so shared CI runners warn rather than
flake.  The snapshot lands in ``benchmarks/results/BENCH_predict.json``.
"""

import warnings

from _bench_utils import write_bench_json, write_result
from repro.bench.runners import (
    PREDICT_HARD_LIMIT_US,
    PREDICT_PROBES,
    PREDICT_REPEATS,
    PREDICT_TARGET_US,
    PREDICT_WARMUP,
    run_predict_throughput,
)


def test_predict_throughput(benchmark):
    envelope = benchmark.pedantic(
        run_predict_throughput, rounds=1, iterations=1
    )
    metrics = envelope["metrics"]
    batch_us = metrics["batch_us_per_instance"]["value"]
    scalar_us = metrics["scalar_us_per_instance"]["value"]
    speedup = metrics["speedup"]["value"]
    lines = [
        "Amortized predict throughput, batch primitive vs scalar loop",
        f"(Q1, {PREDICT_WARMUP} warmup instances, {PREDICT_PROBES} "
        f"probes, best of {PREDICT_REPEATS})",
        "",
        f"batch : {batch_us:8.2f} us/instance",
        f"scalar: {scalar_us:8.2f} us/instance",
        f"speedup: {speedup:.1f}x",
        f"gate: target <= {PREDICT_TARGET_US:.0f} us (warn), "
        f"hard fail > {PREDICT_HARD_LIMIT_US:.0f} us",
    ]
    write_result("predict_throughput", lines)
    write_bench_json("predict", envelope)
    if batch_us > PREDICT_TARGET_US:
        warnings.warn(
            f"batch predict amortized {batch_us:.1f} us/instance "
            f"exceeds the {PREDICT_TARGET_US:.0f} us target",
            stacklevel=1,
        )
    # Hard bar: 2x the target tolerates runner noise but still catches
    # a real regression back toward the scalar baseline.
    assert batch_us <= PREDICT_HARD_LIMIT_US
    assert envelope["gate"]["passed"]
