"""Misprediction regret audit: stage attribution + aggregation."""

import numpy as np
import pytest

from repro.config import PPCConfig, TraceConfig
from repro.core.framework import TemplateSession
from repro.obs.audit import attribute_stage, regret_audit
from repro.obs.tracing import DecisionTrace


def _trace(
    executed: int,
    optimal: int,
    votes=(),
    fallback_source: str = "",
    suboptimality: float = 1.0,
    invocation_reason: str = "none",
) -> DecisionTrace:
    trace = DecisionTrace("T", 0, "forced")
    for vote in votes:
        with trace.span("transform") as span:
            span.set(vote=vote)
    trace.finish(
        {
            "executed_plan": executed,
            "optimal_plan": optimal,
            "fallback_source": fallback_source,
            "suboptimality": suboptimality,
            "invocation_reason": invocation_reason,
        }
    )
    return trace


class TestAttribution:
    def test_optimal_decisions_carry_no_blame(self):
        assert attribute_stage(_trace(3, 3, votes=[1, 1, 1])) is None

    def test_fallback_sources_named(self):
        trace = _trace(2, 5, fallback_source="stale_cache")
        assert attribute_stage(trace) == "fallback:stale_cache"

    def test_no_correct_votes_blames_density_lookup(self):
        assert attribute_stage(_trace(2, 5, votes=[2, 2, 2])) == "density_lookup"

    def test_minority_correct_votes_blames_median_vote(self):
        assert attribute_stage(_trace(2, 5, votes=[2, 2, 5])) == "median_vote"

    def test_majority_correct_votes_blames_confidence_check(self):
        assert attribute_stage(_trace(2, 5, votes=[5, 5, 2])) == "confidence_check"

    def test_no_transform_spans_is_unknown(self):
        assert attribute_stage(_trace(2, 5)) == "unknown"

    def test_error_traces_skipped(self):
        trace = DecisionTrace("T", 0, "forced")
        trace.finish({"error": "RuntimeError: x"})
        assert attribute_stage(trace) is None

    def test_accepts_serialized_dicts(self):
        trace = _trace(2, 5, votes=[2, 2, 2])
        assert attribute_stage(trace.to_dict()) == "density_lookup"


class TestRegretAudit:
    def test_aggregates_per_stage(self):
        traces = [
            _trace(3, 3, votes=[3, 3, 3]),  # optimal: no blame
            _trace(2, 5, votes=[2, 2, 2], suboptimality=1.5),
            _trace(2, 5, votes=[2, 2, 2], suboptimality=2.5),
            _trace(
                2,
                5,
                votes=[5, 2, 2],
                suboptimality=1.2,
                invocation_reason="negative_feedback",
            ),
        ]
        report = regret_audit(traces)
        assert report["instances"] == 4
        assert report["suboptimal"] == 3
        assert report["total_regret"] == pytest.approx(0.5 + 1.5 + 0.2)
        density = report["stages"]["density_lookup"]
        assert density["count"] == 2
        assert density["total_regret"] == pytest.approx(2.0)
        assert density["mean_suboptimality"] == pytest.approx(2.0)
        assert density["max_suboptimality"] == pytest.approx(2.5)
        assert density["undetected"] == 2
        vote = report["stages"]["median_vote"]
        assert vote["count"] == 1
        # Caught by negative feedback: not counted as undetected.
        assert vote["undetected"] == 0

    def test_empty_input(self):
        report = regret_audit([])
        assert report == {
            "instances": 0,
            "suboptimal": 0,
            "total_regret": 0.0,
            "stages": {},
        }

    def test_end_to_end_session_audit(self, tiny_space):
        config = PPCConfig(
            confidence_threshold=0.6,
            mean_invocation_probability=0.05,
            drift_response=False,
            trace=TraceConfig(interval=1, capacity=512),
        )
        session = TemplateSession(tiny_space, config, seed=0)
        rng = np.random.default_rng(7)
        for x in rng.uniform(0, 1, (200, 2)):
            session.execute(x)
        report = regret_audit(session.tracer.traces())
        assert report["instances"] > 150
        assert report["suboptimal"] == sum(
            bucket["count"] for bucket in report["stages"].values()
        )
        # Every blamed stage is a known pipeline stage.
        known = {"density_lookup", "median_vote", "confidence_check", "unknown"}
        for stage in report["stages"]:
            assert stage in known or stage.startswith("fallback:")
