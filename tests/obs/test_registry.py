"""Unit tests for the observability layer (registry + exporters)."""

import json
import math

import pytest

from repro.exceptions import ConfigurationError
from repro.obs import (
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    render_prometheus,
    time_block,
    timed,
)
from repro.obs.registry import BUCKET_MIN


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter()
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increments(self):
        counter = Counter()
        with pytest.raises(ConfigurationError):
            counter.inc(-1.0)
        assert counter.value == 0.0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(10.0)
        gauge.inc(5.0)
        gauge.dec(2.0)
        assert gauge.value == 13.0


class TestLatencyHistogram:
    def test_empty_histogram_digest(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        assert hist.quantile(0.5) == 0.0
        summary = hist.summary()
        assert summary["count"] == 0
        assert summary["min"] == 0.0
        assert summary["mean"] == 0.0

    def test_exact_stats_are_tracked(self):
        hist = LatencyHistogram()
        samples = [0.001, 0.002, 0.004, 0.010]
        for s in samples:
            hist.observe(s)
        assert hist.count == 4
        assert hist.sum == pytest.approx(sum(samples))
        assert hist.min == pytest.approx(0.001)
        assert hist.max == pytest.approx(0.010)
        assert hist.mean == pytest.approx(sum(samples) / 4)

    def test_quantiles_within_bucket_resolution(self):
        # 1000 samples spread geometrically across three decades; the
        # log-bucket scheme bounds relative error at one bucket width
        # (10**0.1 ~ 1.26), so allow ~30 %.
        hist = LatencyHistogram()
        samples = [1e-4 * (10 ** (3 * i / 999)) for i in range(1000)]
        for s in samples:
            hist.observe(s)
        samples.sort()
        for q in (0.50, 0.95, 0.99):
            exact = samples[int(q * len(samples)) - 1]
            estimate = hist.quantile(q)
            assert estimate == pytest.approx(exact, rel=0.30)

    def test_quantile_clamped_to_observed_range(self):
        hist = LatencyHistogram()
        hist.observe(0.005)
        # A single sample: every quantile is the sample itself, up to
        # bucket interpolation clamped by min/max.
        assert hist.quantile(0.0) <= 0.005 <= hist.quantile(1.0) * 1.0001
        assert hist.quantile(1.0) == pytest.approx(0.005, rel=1e-9)

    def test_negative_and_tiny_durations_fold_into_first_bucket(self):
        hist = LatencyHistogram()
        hist.observe(-1.0)
        hist.observe(BUCKET_MIN / 10)
        assert hist.count == 2
        assert hist.counts[0] == 2

    def test_huge_durations_fold_into_last_bucket(self):
        hist = LatencyHistogram()
        hist.observe(1e9)
        assert hist.counts[-1] == 1
        assert hist.max == 1e9

    def test_quantile_validates_range(self):
        hist = LatencyHistogram()
        with pytest.raises(ConfigurationError):
            hist.quantile(1.5)


class TestMetricsRegistry:
    def test_handles_are_stable_per_label_set(self):
        registry = MetricsRegistry()
        a = registry.counter("events_total", kind="x")
        b = registry.counter("events_total", kind="x")
        c = registry.counter("events_total", kind="y")
        assert a is b
        assert a is not c
        a.inc()
        assert registry.counter_value("events_total", kind="x") == 1.0
        assert registry.counter_value("events_total", kind="y") == 0.0

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("t", x="1", y="2")
        b = registry.counter("t", y="2", x="1")
        assert a is b

    def test_unknown_series_read_as_zero_or_none(self):
        registry = MetricsRegistry()
        assert registry.counter_value("nope") == 0.0
        assert registry.gauge_value("nope") == 0.0
        assert registry.histogram_summary("nope") is None

    def test_counter_series_lists_all_label_sets(self):
        registry = MetricsRegistry()
        registry.counter("hits", template="Q1").inc(3)
        registry.counter("hits", template="Q5").inc(7)
        series = dict(
            (labels["template"], value)
            for labels, value in registry.counter_series("hits")
        )
        assert series == {"Q1": 3.0, "Q5": 7.0}

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("events_total", kind="x").inc(2)
        registry.gauge("bytes", template="Q1").set(128)
        registry.histogram("lat_seconds", stage="predict").observe(0.01)
        snapshot = registry.snapshot()
        round_trip = json.loads(json.dumps(snapshot))
        assert round_trip["counters"]["events_total"][0]["value"] == 2
        assert round_trip["gauges"]["bytes"][0]["labels"] == {
            "template": "Q1"
        }
        hist = round_trip["histograms"]["lat_seconds"][0]
        assert hist["count"] == 1
        assert set(hist) >= {"p50", "p95", "p99", "sum", "mean", "labels"}

    def test_time_block_records_into_histogram(self):
        registry = MetricsRegistry()
        with registry.time_block("lat_seconds", stage="s"):
            pass
        summary = registry.histogram_summary("lat_seconds", stage="s")
        assert summary["count"] == 1
        assert summary["sum"] >= 0.0

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(1)
        registry.histogram("h").observe(0.1)
        registry.reset()
        snapshot = registry.snapshot()
        assert snapshot == {"counters": {}, "gauges": {}, "histograms": {}}


class TestTimingHelpers:
    def test_time_block_helper_observes_once(self):
        hist = LatencyHistogram()
        with time_block(hist):
            math.sqrt(2.0)
        assert hist.count == 1

    def test_time_block_records_on_exception(self):
        hist = LatencyHistogram()
        with pytest.raises(ValueError), time_block(hist):
            raise ValueError("boom")
        assert hist.count == 1

    def test_timed_decorator(self):
        registry = MetricsRegistry()

        @timed(registry, "calls_seconds", fn="f")
        def f(x):
            return x * 2

        assert f(21) == 42
        assert f(1) == 2
        summary = registry.histogram_summary("calls_seconds", fn="f")
        assert summary["count"] == 2

    def test_timed_decorator_records_on_exception(self):
        registry = MetricsRegistry()

        @timed(registry, "calls_seconds", fn="g")
        def g():
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            g()
        assert registry.histogram_summary("calls_seconds", fn="g")[
            "count"
        ] == 1


class TestPrometheusRendering:
    def test_renders_all_metric_kinds(self):
        registry = MetricsRegistry()
        registry.counter("ppc_events_total", kind="hit").inc(3)
        registry.gauge("ppc_bytes", template="Q1").set(64)
        registry.histogram("ppc_lat_seconds", stage="predict").observe(0.01)
        text = render_prometheus(registry)

        assert "# TYPE ppc_events_total counter" in text
        assert 'ppc_events_total{kind="hit"} 3' in text
        assert "# TYPE ppc_bytes gauge" in text
        assert 'ppc_bytes{template="Q1"} 64' in text
        assert "# TYPE ppc_lat_seconds summary" in text
        assert 'quantile="0.5"' in text
        assert 'quantile="0.95"' in text
        assert 'quantile="0.99"' in text
        assert 'ppc_lat_seconds_count{stage="predict"} 1' in text
        assert text.endswith("\n")

    def test_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("c", q='say "hi"\n').inc()
        text = render_prometheus(registry)
        assert '\\"hi\\"' in text
        assert "\\n" in text

    def test_unlabeled_series_render_bare(self):
        registry = MetricsRegistry()
        registry.counter("total").inc(5)
        text = render_prometheus(registry)
        assert "total 5" in text.splitlines()
