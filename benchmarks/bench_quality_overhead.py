"""Quality-telemetry sampling overhead on the serving path.

Thin wrapper over :func:`repro.bench.runners.run_quality_overhead` —
the same measurement core behind ``repro bench run``.  Three
identically seeded frameworks run the same trajectory workload in
lockstep on virtual clocks advancing one simulated second per
instance: telemetry disabled, the shipped default (snapshot every 5
simulated seconds, scorecard refresh every 12th snapshot), and an
aggressive cadence (snapshot every second, scorecard every 4th).
Telemetry is read-only over session state and consumes no RNG, so all
three make bit-identical decisions (the runner asserts it) and the
comparison isolates pure sampling cost.

The acceptance bar: the shipped default must stay within 5 % of the
untelemetered baseline on this storm-shaped workload — the ISSUE 5
gate for leaving cache-quality telemetry always-on.
"""

from _bench_utils import write_bench_json, write_result
from repro.bench.runners import (
    OVERHEAD_PROBES,
    OVERHEAD_REPEATS,
    OVERHEAD_WARMUP,
    QUALITY_ADVANCE,
    QUALITY_MODES,
    run_quality_overhead,
)


def test_quality_overhead(benchmark):
    envelope = benchmark.pedantic(
        run_quality_overhead, rounds=1, iterations=1
    )
    modes = envelope["details"]["modes"]
    lines = [
        "Quality-telemetry overhead on the serving path",
        f"(Q1, {OVERHEAD_WARMUP} warmup + {OVERHEAD_REPEATS}x"
        f"{OVERHEAD_PROBES} probes, {QUALITY_ADVANCE}s simulated per "
        f"instance, best of {OVERHEAD_REPEATS})",
        "",
    ]
    for name, __ in QUALITY_MODES:
        lines.append(
            f"{name:10s}: {modes[name]['us_per_instance']:8.2f} "
            f"us/instance  ({modes[name]['overhead_pct'] / 100.0:+.1%} "
            "vs off)"
        )
    write_result("quality_overhead", lines)
    write_bench_json("quality", envelope)
    # The shipped default must be cheap enough to leave on.
    assert envelope["metrics"]["sampled_overhead_pct"]["value"] < 5.0
