"""Exit-code contract of ``repro lint`` / ``python -m repro.analysis``."""

import json

from repro.analysis.cli import main

BAD = "import time\ntime.sleep(1.0)\n"
GOOD = "from repro.resilience.clocks import system_sleep\nsystem_sleep(1.0)\n"


def _module_file(tmp_path, name, source):
    path = tmp_path / "repro" / "core" / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return path


def test_clean_tree_exits_zero(tmp_path, capsys):
    path = _module_file(tmp_path, "good.py", GOOD)
    assert main([str(path), "--no-baseline"]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_fresh_finding_exits_one(tmp_path, capsys):
    path = _module_file(tmp_path, "bad.py", BAD)
    assert main([str(path), "--no-baseline"]) == 1
    assert "RPR002" in capsys.readouterr().out


def test_json_format(tmp_path, capsys):
    path = _module_file(tmp_path, "bad.py", BAD)
    assert main([str(path), "--no-baseline", "--format", "json"]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["summary"]["total"] == 1


def test_write_baseline_then_clean(tmp_path, capsys):
    path = _module_file(tmp_path, "bad.py", BAD)
    baseline = tmp_path / "baseline.json"
    assert main([str(path), "--baseline", str(baseline), "--write-baseline"]) == 0
    assert baseline.exists()
    # Baselined findings no longer fail the run...
    assert main([str(path), "--baseline", str(baseline)]) == 0
    # ...but ignoring the baseline surfaces them again.
    capsys.readouterr()
    assert main([str(path), "--no-baseline"]) == 1


def test_malformed_baseline_exits_two(tmp_path, capsys):
    path = _module_file(tmp_path, "bad.py", BAD)
    baseline = tmp_path / "baseline.json"
    baseline.write_text("{not json")
    assert main([str(path), "--baseline", str(baseline)]) == 2


def test_github_format_emits_workflow_commands(tmp_path, capsys):
    path = _module_file(tmp_path, "bad.py", BAD)
    assert main(
        [str(path), "--no-baseline", "--format", "github"]
    ) == 1
    out = capsys.readouterr().out
    (annotation,) = [
        line for line in out.splitlines() if line.startswith("::error ")
    ]
    assert "line=2" in annotation
    assert "title=RPR002" in annotation
    assert "::RPR002 " in annotation


def test_effects_flag_runs_whole_program_rules(tmp_path, capsys):
    # Per-file clean, but the closure reaches time.time through a
    # helper module: only --effects catches it.
    framework = (
        "from repro.core.timing import stamp\n"
        "class TemplateSession:\n"
        "    def execute(self, x):\n"
        "        return stamp(x)\n"
    )
    timing = (
        "import time\n"
        "def stamp(x):\n"
        "    return x, time.perf_counter(), time.time()\n"
    )
    _module_file(tmp_path, "framework.py", framework)
    path = _module_file(tmp_path, "timing.py", timing)
    root = path.parent.parent.parent
    assert main([str(root), "--no-baseline"]) == 1  # RPR002 on time.time
    capsys.readouterr()
    assert main([str(root), "--no-baseline", "--effects"]) == 1
    out = capsys.readouterr().out
    assert "RPR102" in out
    assert "TemplateSession.execute" in out


def test_graph_out_requires_effects(tmp_path, capsys):
    path = _module_file(tmp_path, "good.py", GOOD)
    assert main([str(path), "--graph-out", str(tmp_path / "g.json")]) == 2


def test_graph_out_writes_artifact(tmp_path, capsys):
    path = _module_file(tmp_path, "good.py", GOOD)
    target = tmp_path / "graph.json"
    assert main(
        [str(path), "--no-baseline", "--effects", "--graph-out", str(target)]
    ) == 0
    document = json.loads(target.read_text())
    assert "functions" in document
    assert "calls" in document


def test_selftest_exits_zero(capsys):
    assert main(["--selftest"]) == 0
    assert "selftest OK" in capsys.readouterr().out


def test_list_rules_mentions_every_rule(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in (f"RPR00{i}" for i in range(1, 9)):
        assert code in out
    for code in (f"RPR10{i}" for i in range(1, 5)):
        assert code in out
