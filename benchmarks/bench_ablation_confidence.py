"""Ablation: chord confidence model vs raw relative frequency.

The chord model translates the count ratio through the circle-segment
geometry of Figure 4(b); the raw-frequency baseline uses
c_max / total directly.  At the same threshold, raw frequency is far
laxer near boundaries (a 70/30 split already scores 0.7), so the chord
model should buy precision for a given recall level.
"""

import numpy as np

from _bench_utils import write_result
from repro.core.baseline import BaselinePredictor
from repro.core.confidence import ConfidenceModel, FrequencyConfidenceModel
from repro.experiments.setup import evaluate_offline, offline_truth
from repro.tpch import plan_space_for
from repro.workload import sample_labeled_pool


def test_ablation_confidence_models(benchmark):
    def run():
        space = plan_space_for("Q1")
        pool = sample_labeled_pool(space, 2000, seed=7)
        test, truth = offline_truth(space, 800, seed=11)
        rows = []
        for name, model in (
            ("chord (paper)", ConfidenceModel()),
            ("raw frequency", FrequencyConfidenceModel()),
        ):
            for gamma in (0.7, 0.8, 0.9):
                predictor = BaselinePredictor(
                    pool, radius=0.1, confidence_threshold=gamma,
                    confidence_model=model,
                )
                rows.append(
                    (name, gamma, evaluate_offline(predictor, test, truth))
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Ablation — chord confidence model vs raw relative frequency",
        "(Q1, |X| = 2000, d = 0.1)",
        "",
        f"{'model':>14s} {'gamma':>6s} {'precision':>10s} {'recall':>8s}",
    ]
    for name, gamma, metrics in rows:
        lines.append(
            f"{name:>14s} {gamma:6.1f} {metrics.precision:10.3f} "
            f"{metrics.recall:8.3f}"
        )
    write_result("ablation_confidence", lines)

    chord = [m for n, g, m in rows if n.startswith("chord")]
    raw = [m for n, g, m in rows if n.startswith("raw")]
    # At matched thresholds the chord model answers no more points than
    # raw frequency (it is strictly more conservative for mixed
    # neighborhoods) while keeping precision at least as high.
    assert np.mean([m.recall for m in chord]) <= np.mean(
        [m.recall for m in raw]
    ) + 1e-9
    assert np.mean([m.precision for m in chord]) >= np.mean(
        [m.precision for m in raw]
    ) - 0.01
