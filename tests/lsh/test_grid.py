"""Grid partitioning: cell assignment, ids, neighbors."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.lsh.grid import Grid


@pytest.fixture()
def unit_grid():
    return Grid(np.zeros(2), np.ones(2), resolution=4)


class TestCellAssignment:
    def test_cell_coords_basic(self, unit_grid):
        coords = unit_grid.cell_coords(np.array([[0.1, 0.6], [0.9, 0.2]]))
        assert coords.tolist() == [[0, 2], [3, 0]]

    def test_upper_edge_clipped_into_last_cell(self, unit_grid):
        coords = unit_grid.cell_coords(np.array([[1.0, 1.0]]))
        assert coords.tolist() == [[3, 3]]

    def test_points_outside_bounds_clipped(self, unit_grid):
        coords = unit_grid.cell_coords(np.array([[-0.5, 1.5]]))
        assert coords.tolist() == [[0, 3]]

    def test_cell_ids_unique_per_cell(self, unit_grid):
        centers = np.array(
            [[(i + 0.5) / 4, (j + 0.5) / 4] for i in range(4) for j in range(4)]
        )
        ids = unit_grid.cell_ids(centers)
        assert len(np.unique(ids)) == 16
        assert ids.min() == 0 and ids.max() == 15

    def test_total_cells_and_volume(self, unit_grid):
        assert unit_grid.total_cells == 16
        assert unit_grid.cell_volume == pytest.approx(1.0 / 16.0)

    def test_nonuniform_bounds(self):
        grid = Grid(np.array([-2.0, 0.0]), np.array([2.0, 1.0]), resolution=2)
        assert grid.cell_widths == pytest.approx([2.0, 0.5])
        ids = grid.cell_ids(np.array([[-1.5, 0.75]]))
        assert ids[0] == 0 * 2 + 1


class TestUnitCoords:
    def test_rescaling(self):
        grid = Grid(np.array([-1.0]), np.array([3.0]), resolution=4)
        unit = grid.unit_coords(np.array([[1.0]]))
        assert unit[0, 0] == pytest.approx(0.5)

    def test_output_strictly_below_one(self, unit_grid):
        unit = unit_grid.unit_coords(np.array([[1.0, 2.0]]))
        assert (unit < 1.0).all()


class TestNeighbors:
    def test_ball_inside_one_cell(self, unit_grid):
        ids = list(unit_grid.neighbor_ids(np.array([0.375, 0.375]), 0.05))
        assert ids == [unit_grid.cell_ids(np.array([[0.375, 0.375]]))[0]]

    def test_ball_spanning_cells(self, unit_grid):
        ids = list(unit_grid.neighbor_ids(np.array([0.25, 0.25]), 0.05))
        assert len(ids) == 4  # the four cells around the corner (0.25, 0.25)

    def test_ball_at_domain_corner(self, unit_grid):
        ids = list(unit_grid.neighbor_ids(np.array([0.0, 0.0]), 0.05))
        assert ids == [0]

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            Grid(np.zeros(2), np.zeros(2), 4)
        with pytest.raises(ConfigurationError):
            Grid(np.zeros(2), np.ones(2), 0)
        with pytest.raises(ConfigurationError):
            Grid(np.zeros((2, 2)), np.ones((2, 2)), 4)
