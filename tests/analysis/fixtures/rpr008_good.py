"""Owners mutate their own state; outsiders call methods or read."""


class Owner:
    def __init__(self) -> None:
        self.optimizer_invocations = 0
        self.records = []

    def reset(self) -> None:
        self.optimizer_invocations = 0
        self.records = []


def inspect(session) -> int:
    # Reads are fine; so are local names that merely shadow the
    # protected attribute names.
    records = session.records
    return len(records)
