"""Modified TPC-H benchmark substrate (Appendix A of the paper).

The paper's experiments run over a TPC-H scale-factor-1 database where
every table gained an extra date column populated from a Gaussian
distribution, with indexes over primary keys, foreign keys and the
added date columns.  This package reproduces that setup as catalog
metadata plus synthetic column statistics (no tuples are materialized —
plan choice depends only on statistics), and defines the nine query
templates Q0–Q8 with parameter degrees 2–6 (Table III).
"""

from repro.tpch.datagen import build_statistics
from repro.tpch.queries import (
    TEMPLATE_NAMES,
    plan_space_for,
    query_template,
    query_templates,
)
from repro.tpch.schema import build_catalog

__all__ = [
    "build_catalog",
    "build_statistics",
    "TEMPLATE_NAMES",
    "plan_space_for",
    "query_template",
    "query_templates",
]
