"""Extension: parameter relevance analysis and axis weighting.

The paper's future work warns that irrelevant parameters "pollute the
parameter space ... and reduce the precision of the decision models".
This bench builds exactly that pathology — a five-parameter template
where three parameters sweep near-constant selectivity bands and never
flip the plan — and shows that (a) the relevance analyzer identifies
the two driving axes from labeled samples alone, and (b) feeding its
axis weights to APPROXIMATE-LSH-HISTOGRAMS recovers the recall the
pollution destroyed.
"""

import numpy as np

from _bench_utils import write_result
from repro.core.histogram_predictor import HistogramPredictor
from repro.core.relevance import ParameterRelevanceAnalyzer
from repro.metrics import evaluate_predictions
from repro.optimizer import PlanSpace
from repro.optimizer.expressions import (
    ColumnRef,
    JoinPredicate,
    ParamPredicate,
    QueryTemplate,
)
from repro.tpch.schema import build_catalog
from repro.workload import sample_labeled_pool, sample_points


def _polluted_template() -> QueryTemplate:
    """Orders x customer with 2 driving + 3 near-constant parameters."""
    return QueryTemplate(
        name="polluted",
        tables=("orders", "customer"),
        joins=(
            JoinPredicate(
                ColumnRef("orders", "o_custkey"),
                ColumnRef("customer", "c_custkey"),
            ),
        ),
        predicates=(
            ParamPredicate(ColumnRef("orders", "o_date"), 0),
            ParamPredicate(ColumnRef("customer", "c_date"), 1),
            ParamPredicate(
                ColumnRef("orders", "o_totalprice"), 2,
                sel_range=(0.48, 0.52), scale="linear",
            ),
            ParamPredicate(
                ColumnRef("customer", "c_acctbal"), 3,
                sel_range=(0.58, 0.62), scale="linear",
            ),
            ParamPredicate(
                ColumnRef("customer", "c_nationkey"), 4,
                sel_range=(0.78, 0.82), scale="linear",
            ),
        ),
    )


def test_ext_parameter_selection(benchmark):
    def run():
        space = PlanSpace(_polluted_template(), build_catalog(), seed=0)
        pool = sample_labeled_pool(space, 3000, seed=7)
        test = sample_points(space.dimensions, 800, seed=9)
        truth = space.plan_at(test)

        analyzer = ParameterRelevanceAnalyzer(pool)
        weights = analyzer.axis_weights()

        def score(axis_weights):
            predictor = HistogramPredictor(
                pool, transforms=5, max_buckets=40, radius=0.15,
                confidence_threshold=0.7, axis_weights=axis_weights, seed=1,
            )
            ids = [
                None if p is None else p.plan_id
                for p in predictor.predict_batch(test)
            ]
            return evaluate_predictions(ids, truth)

        return {
            "rates": analyzer.axis_flip_rates(),
            "weights": weights,
            "relevant": analyzer.relevant_axes(),
            "plain": score(None),
            "weighted": score(weights),
            "plan_count": space.plan_count,
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Extension — parameter relevance & axis weighting",
        "(orders x customer with 2 driving + 3 near-constant parameters;",
        f" plan count {results['plan_count']}, |X| = 3000)",
        "",
        f"flip rates     : {np.round(results['rates'], 2)}",
        f"axis weights   : {np.round(results['weights'], 2)}",
        f"relevant axes  : {results['relevant']}  (truth: [0, 1])",
        "",
        f"{'variant':>10s} {'precision':>10s} {'recall':>8s}",
        f"{'plain':>10s} {results['plain'].precision:10.3f} "
        f"{results['plain'].recall:8.3f}",
        f"{'weighted':>10s} {results['weighted'].precision:10.3f} "
        f"{results['weighted'].recall:8.3f}",
    ]
    write_result("ext_parameter_selection", lines)

    assert set(results["relevant"]) == {0, 1}
    assert results["weighted"].recall > results["plain"].recall
    assert results["weighted"].precision > results["plain"].precision - 0.05
