"""Predictor persistence: exact save/load round-trips."""

import numpy as np
import pytest

from repro.core.histogram_predictor import HistogramPredictor
from repro.core.persistence import (
    load_predictor,
    predictor_from_state,
    predictor_to_state,
    save_predictor,
)
from repro.core.point import SamplePool
from repro.exceptions import PersistenceError
from repro.workload import sample_points


@pytest.fixture()
def trained_predictor():
    pool = SamplePool(2)
    rng = np.random.default_rng(0)
    for x in rng.uniform(0.0, 0.45, size=(80, 2)):
        pool.add(x, 0, cost=5.0)
    for x in rng.uniform(0.55, 1.0, size=(80, 2)):
        pool.add(x, 1, cost=9.0)
    return HistogramPredictor(
        pool,
        transforms=3,
        radius=0.1,
        confidence_threshold=0.7,
        noise_fraction=0.002,
        histogram_kind="incremental",
        seed=42,
    )


class TestRoundTrip:
    def test_predictions_identical_after_reload(self, trained_predictor):
        state = predictor_to_state(trained_predictor)
        reloaded = predictor_from_state(state)
        test = sample_points(2, 200, seed=1)
        original = trained_predictor.predict_batch(test)
        restored = reloaded.predict_batch(test)
        for a, b in zip(original, restored, strict=True):
            assert (a is None) == (b is None)
            if a is not None:
                assert a.plan_id == b.plan_id
                assert a.confidence == pytest.approx(b.confidence)
                assert (a.estimated_cost is None) == (b.estimated_cost is None)
                if a.estimated_cost is not None:
                    assert a.estimated_cost == pytest.approx(b.estimated_cost)

    def test_state_is_json_compatible(self, trained_predictor):
        import json

        state = predictor_to_state(trained_predictor)
        round_tripped = json.loads(json.dumps(state))
        assert round_tripped["plan_count"] == 2

    def test_reloaded_predictor_keeps_learning(self, trained_predictor):
        reloaded = predictor_from_state(
            predictor_to_state(trained_predictor)
        )
        before = reloaded.total_points
        reloaded.insert(np.array([0.5, 0.5]), 0, cost=1.0)
        assert reloaded.total_points == before + 1

    def test_file_round_trip(self, trained_predictor, tmp_path):
        path = save_predictor(trained_predictor, tmp_path / "cache.json")
        reloaded = load_predictor(path)
        assert reloaded.plan_count == trained_predictor.plan_count
        assert reloaded.total_points == trained_predictor.total_points

    def test_counters_and_config_preserved(self, trained_predictor):
        reloaded = predictor_from_state(
            predictor_to_state(trained_predictor)
        )
        assert reloaded.total_points == trained_predictor.total_points
        assert reloaded.radius == trained_predictor.radius
        assert reloaded.noise_fraction == trained_predictor.noise_fraction
        assert reloaded.delta == pytest.approx(trained_predictor.delta)

    def test_unknown_version_rejected(self, trained_predictor):
        state = predictor_to_state(trained_predictor)
        state["version"] = 99
        with pytest.raises(PersistenceError):
            predictor_from_state(state)

    def test_axis_weights_survive(self):
        pool = SamplePool(3)
        rng = np.random.default_rng(2)
        for x in rng.uniform(0, 1, size=(40, 3)):
            pool.add(x, 0)
        predictor = HistogramPredictor(
            pool,
            transforms=2,
            histogram_kind="incremental",
            axis_weights=np.array([1.0, 0.5, 0.1]),
            seed=3,
        )
        reloaded = predictor_from_state(predictor_to_state(predictor))
        assert reloaded.axis_weights == pytest.approx([1.0, 0.5, 0.1])
