"""ONLINE-APPROXIMATE-LSH-HISTOGRAMS (Section IV-D).

The online predictor starts from an empty sample pool and learns the
plan space lazily: every time the optimizer is invoked (cache miss, low
confidence, random exploration, or negative feedback), the truly
optimized point is inserted into the incremental histograms.  Policy
pieces bundled here:

* **random optimizer invocations** — even when a prediction exists, the
  optimizer is invoked with a probability derived from the user's mean
  invocation probability, scaled up for low-confidence predictions;
* **negative feedback** — after executing a predicted plan, the
  cost-feedback detector compares observed cost with the histogram cost
  estimate; on a suspected error the optimizer is invoked and the
  corrective point inserted, reducing support for the bad prediction;
* **no positive feedback** — predicted (unverified) points are never
  inserted, so the histograms only ever summarize truth.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.confidence import ConfidenceModel
from repro.core.feedback import CostFeedbackDetector
from repro.core.histogram_predictor import HistogramPredictor
from repro.core.point import SamplePool
from repro.core.positive_feedback import PositiveFeedbackPolicy
from repro.core.predictor import PlanPredictor, Prediction
from repro.exceptions import ConfigurationError
from repro.rng import as_generator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.events import _TemplateEmitter
    from repro.obs.tracing import DecisionTrace

#: Default noise-elimination threshold: a prediction needs support of at
#: least this fraction of all accumulated points (Section IV-C uses "a
#: fixed threshold").
DEFAULT_NOISE_FRACTION = 0.002


class OnlinePredictor(PlanPredictor):
    """Empty-start histogram predictor plus the online policies."""

    def __init__(
        self,
        dimensions: int,
        plan_count: int,
        transforms: int = 5,
        resolution: int = 16,
        max_buckets: int = 40,
        radius: float = 0.05,
        confidence_threshold: float = 0.8,
        noise_fraction: "float | None" = DEFAULT_NOISE_FRACTION,
        mean_invocation_probability: float = 0.05,
        negative_feedback: bool = True,
        cost_epsilon: float = 0.25,
        positive_feedback: "PositiveFeedbackPolicy | None" = None,
        seed: "int | np.random.Generator | None" = 0,
        confidence_model: "ConfidenceModel | None" = None,
    ) -> None:
        if not 0.0 <= mean_invocation_probability <= 1.0:
            raise ConfigurationError(
                "mean invocation probability must be in [0, 1]"
            )
        rng = as_generator(seed)
        self.dimensions = dimensions
        self.mean_invocation_probability = mean_invocation_probability
        self.negative_feedback = negative_feedback
        self.positive_feedback = positive_feedback
        self.detector = CostFeedbackDetector(cost_epsilon)
        self._rng = rng
        self.predictor = HistogramPredictor(
            SamplePool(dimensions),
            plan_count=plan_count,
            transforms=transforms,
            resolution=resolution,
            max_buckets=max_buckets,
            radius=radius,
            confidence_threshold=confidence_threshold,
            noise_fraction=noise_fraction,
            histogram_kind="incremental",
            seed=rng,
            confidence_model=confidence_model,
        )

    # ------------------------------------------------------------------
    # PlanPredictor interface
    # ------------------------------------------------------------------
    def predict(
        self, x: np.ndarray, trace: "DecisionTrace | None" = None
    ) -> "Prediction | None":
        return self.predictor.predict(x, trace=trace)

    def predict_batch(self, points: np.ndarray) -> "list[Prediction | None]":
        """Vectorized prediction over a point batch (the histogram
        predictor's struct-of-arrays primitive)."""
        return self.predictor.predict_batch(points)

    def space_bytes(self) -> int:
        return self.predictor.space_bytes()

    @property
    def sample_count(self) -> int:
        """Number of points inserted so far (weight-independent)."""
        return int(self.predictor.total_points)

    @property
    def mutation_count(self) -> int:
        """Synopsis-mutation counter: batch consumers compare it before
        and after each instance to detect stale precomputed
        predictions."""
        return self.predictor.mutation_count

    def bind_events(self, emitter: "_TemplateEmitter") -> None:
        """Attach a lifecycle event emitter to the inner histograms."""
        self.predictor.bind_events(emitter)

    # ------------------------------------------------------------------
    # Online policies
    # ------------------------------------------------------------------
    def observe(
        self,
        x: np.ndarray,
        plan_id: int,
        cost: float,
        provenance: str = "direct",
    ) -> None:
        """Insert a truly optimized (verified) point into the histograms.

        ``provenance`` names the decision-flow origin of the point
        (cache miss, exploration, negative feedback, ...) and flows
        through to the ``point_inserted`` lifecycle event; it never
        affects the insert.
        """
        self.predictor.insert(x, plan_id, cost, provenance=provenance)
        if self.positive_feedback is not None:
            self.positive_feedback.record_verified()

    def observe_unverified(
        self,
        x: np.ndarray,
        prediction: Prediction,
        observed_cost: float,
    ) -> bool:
        """Offer an executed-but-unverified prediction as positive feedback.

        Accepted only when a positive-feedback policy is configured and
        its checks and balances pass; the point then enters the
        histograms at the policy's discounted weight.  Returns whether
        the point was inserted.
        """
        if self.positive_feedback is None:
            return False
        if not self.positive_feedback.should_insert(prediction):
            return False
        self.predictor.insert(
            x,
            prediction.plan_id,
            observed_cost,
            weight=self.positive_feedback.weight,
            provenance="positive_feedback",
        )
        return True

    def should_invoke_optimizer(self, prediction: "Prediction | None") -> bool:
        """Random-exploration policy (Section IV-D).

        With no prediction, the optimizer must be invoked.  Otherwise
        the invocation probability is the mean probability scaled by
        how unsure the prediction is — ``2 p (1 - confidence)`` — so a
        50 %-confidence prediction is explored at exactly the mean rate
        and a fully confident one almost never.
        """
        if prediction is None:
            return True
        if self.mean_invocation_probability == 0.0:
            return False
        probability = min(
            1.0,
            2.0
            * self.mean_invocation_probability
            * (1.0 - prediction.confidence),
        )
        return bool(self._rng.random() < probability)

    def suspect_error(
        self, prediction: Prediction, observed_cost: float
    ) -> bool:
        """Negative-feedback trigger: does the observed execution cost
        contradict the histogram cost estimate?"""
        if not self.negative_feedback:
            return False
        return self.detector.is_erroneous(
            prediction.estimated_cost, observed_cost
        )

    def drop(self) -> None:
        """Restart learning from scratch (drift response)."""
        self.predictor.drop()
        if self.positive_feedback is not None:
            self.positive_feedback.reset()
