"""Vectorized prediction paths match their scalar counterparts."""

import numpy as np
import pytest

from repro.core.confidence import ConfidenceModel
from repro.core.histogram_predictor import HistogramPredictor
from repro.core.point import SamplePool
from repro.exceptions import ConfigurationError
from repro.workload import sample_points


def _pool():
    pool = SamplePool(2)
    rng = np.random.default_rng(0)
    for x in rng.uniform(0.0, 0.45, size=(120, 2)):
        pool.add(x, 0, cost=5.0)
    for x in rng.uniform(0.55, 1.0, size=(120, 2)):
        pool.add(x, 1, cost=9.0)
    return pool


class TestDecideBatch:
    def test_matches_scalar(self):
        model = ConfidenceModel()
        rng = np.random.default_rng(1)
        counts = rng.integers(0, 20, size=(100, 4)).astype(float)
        winners, confidences = model.decide_batch(counts, 0.7)
        for i in range(100):
            plan, confidence = model.decide(counts[i], 0.7)
            expected = -1 if plan is None else plan
            assert winners[i] == expected
            assert confidences[i] == pytest.approx(confidence, abs=1e-9)

    def test_all_zero_rows_are_null(self):
        model = ConfidenceModel()
        winners, confidences = model.decide_batch(np.zeros((3, 4)), 0.0)
        assert (winners == -1).all()
        assert (confidences == 0.0).all()

    def test_rejects_non_matrix(self):
        with pytest.raises(ConfigurationError):
            ConfidenceModel().decide_batch(np.zeros(4), 0.5)


class TestHistogramPredictBatch:
    @pytest.mark.parametrize("kind", ["maxdiff", "incremental"])
    def test_matches_scalar(self, kind):
        predictor = HistogramPredictor(
            _pool(),
            transforms=5,
            radius=0.1,
            confidence_threshold=0.7,
            noise_fraction=0.002,
            histogram_kind=kind,
            seed=1,
        )
        test = sample_points(2, 200, seed=3)
        scalar = [predictor.predict(test[i]) for i in range(200)]
        batch = predictor.predict_batch(test)
        for s, b in zip(scalar, batch):
            assert (s is None) == (b is None)
            if s is not None:
                assert s.plan_id == b.plan_id
                assert s.confidence == pytest.approx(b.confidence, abs=1e-9)
                if s.estimated_cost is None:
                    assert b.estimated_cost is None
                else:
                    assert s.estimated_cost == pytest.approx(b.estimated_cost)

    def test_single_point_input(self):
        predictor = HistogramPredictor(
            _pool(), radius=0.1, confidence_threshold=0.5, seed=1
        )
        batch = predictor.predict_batch(np.array([0.2, 0.2]))
        assert len(batch) == 1
        assert batch[0].plan_id == 0

    def test_batch_faster_than_scalar(self):
        import time

        predictor = HistogramPredictor(
            _pool(), transforms=5, radius=0.1, seed=1
        )
        test = sample_points(2, 300, seed=4)
        start = time.perf_counter()
        for i in range(300):
            predictor.predict(test[i])
        scalar_time = time.perf_counter() - start
        start = time.perf_counter()
        predictor.predict_batch(test)
        batch_time = time.perf_counter() - start
        assert batch_time < scalar_time


class TestBaselinePredictBatch:
    def test_matches_scalar(self):
        from repro.core.baseline import BaselinePredictor

        predictor = BaselinePredictor(
            _pool(), radius=0.15, confidence_threshold=0.7
        )
        test = sample_points(2, 300, seed=6)
        scalar = [
            BaselinePredictor.predict(predictor, test[i]) for i in range(300)
        ]
        batch = predictor.predict_batch(test, chunk_size=64)
        for s, b in zip(scalar, batch):
            assert (s is None) == (b is None)
            if s is not None:
                assert s.plan_id == b.plan_id
                assert s.confidence == pytest.approx(b.confidence, abs=1e-9)
                if s.estimated_cost is None:
                    assert b.estimated_cost is None
                else:
                    assert s.estimated_cost == pytest.approx(b.estimated_cost)

    def test_chunking_irrelevant_to_results(self):
        from repro.core.baseline import BaselinePredictor

        predictor = BaselinePredictor(_pool(), radius=0.15)
        test = sample_points(2, 100, seed=7)
        small = predictor.predict_batch(test, chunk_size=7)
        large = predictor.predict_batch(test, chunk_size=1000)
        for a, b in zip(small, large):
            assert (a is None) == (b is None)
            if a is not None:
                assert a.plan_id == b.plan_id
