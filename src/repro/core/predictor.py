"""Common predictor interface.

Every plan-prediction algorithm — the Section III comparators, the four
approximation levels of Section IV, and the online variant — answers
the same question: *given a plan-space point, which plan would the
optimizer choose, or NULL if unsure* (the output model of Section
II-B).  :class:`PlanPredictor` fixes that interface so experiments can
treat algorithms uniformly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Prediction:
    """A non-NULL prediction: the plan, the confidence behind it, and —
    when the predictor tracks costs — the expected execution cost of
    the plan at the predicted point (used by negative feedback)."""

    plan_id: int
    confidence: float
    estimated_cost: "float | None" = None


class PlanPredictor(ABC):
    """Interface shared by every plan-prediction algorithm."""

    #: Dimensionality ``r`` of the plan space the predictor serves.
    dimensions: int

    @abstractmethod
    def predict(self, x: np.ndarray) -> "Prediction | None":
        """Predict the optimizer's plan at ``x`` (``None`` = NULL)."""

    def predict_batch(self, points: np.ndarray) -> list["Prediction | None"]:
        """Predict for many points; subclasses may vectorize."""
        points = np.asarray(points, dtype=float)
        if points.ndim == 1:
            points = points[None, :]
        return [self.predict(points[i]) for i in range(points.shape[0])]

    @abstractmethod
    def space_bytes(self) -> int:
        """Memory footprint under the paper's space-accounting model
        (Table I)."""

    def _check_point(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float).reshape(-1)
        if x.shape[0] != self.dimensions:
            raise ValueError(
                f"expected a {self.dimensions}-dimensional point, "
                f"got {x.shape[0]}"
            )
        return x
