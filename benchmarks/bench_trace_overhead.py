"""Decision-tracing overhead on the predict/execute hot path.

Thin wrapper over :func:`repro.bench.runners.run_trace_overhead` — the
same measurement core behind ``repro bench run``.  Three identically
seeded sessions run the same trajectory workload with tracing
disabled, at the default sampling policy (head + error bias — the
shipped configuration), and fully traced (every execution records a
complete span tree).  Sampling is deterministic and RNG-free, so the
three sessions make bit-identical decisions and the comparison
isolates pure tracing cost.

The acceptance bar: the *sampled* default must stay within 10 % of the
untraced baseline — the flight recorder is meant to be always-on.
"""

from _bench_utils import write_bench_json, write_result
from repro.bench.runners import (
    OVERHEAD_PROBES,
    OVERHEAD_REPEATS,
    OVERHEAD_WARMUP,
    TRACE_MODES,
    run_trace_overhead,
)


def test_trace_overhead(benchmark):
    envelope = benchmark.pedantic(run_trace_overhead, rounds=1, iterations=1)
    modes = envelope["details"]["modes"]
    lines = [
        "Decision-tracing overhead on the predict/execute path",
        f"(Q1, {OVERHEAD_WARMUP} warmup + {OVERHEAD_REPEATS}x"
        f"{OVERHEAD_PROBES} probes, best of {OVERHEAD_REPEATS})",
        "",
    ]
    for name, __ in TRACE_MODES:
        lines.append(
            f"{name:8s}: {modes[name]['us_per_instance']:8.2f} "
            f"us/instance  ({modes[name]['overhead_pct'] / 100.0:+.1%} "
            "vs off)"
        )
    write_result("trace_overhead", lines)
    write_bench_json("trace", envelope)
    # The shipped default must be cheap enough to leave on.
    assert envelope["metrics"]["sampled_overhead_pct"]["value"] < 10.0
