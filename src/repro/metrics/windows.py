"""Sliding-window ratio estimators.

Section IV-E tracks the precision of the last ``k`` predictions per
plan and per template (``prec_k``), plus the answer rate ``beta`` that
links precision to recall (``rec_k = beta * prec_k``).  A
:class:`SlidingRatio` is the building block: a bounded window of
booleans with an O(1) ratio query.
"""

from __future__ import annotations

from collections import deque

from repro.exceptions import ConfigurationError


class SlidingRatio:
    """Ratio of ``True`` observations over the last ``k`` pushes."""

    def __init__(self, window: int = 100) -> None:
        if window < 1:
            raise ConfigurationError("window must be >= 1")
        self.window = window
        self._values: deque[bool] = deque(maxlen=window)
        self._true_count = 0

    def push(self, value: bool) -> None:
        if len(self._values) == self.window:
            evicted = self._values[0]
            if evicted:
                self._true_count -= 1
        self._values.append(bool(value))
        if value:
            self._true_count += 1

    @property
    def count(self) -> int:
        """Observations currently inside the window."""
        return len(self._values)

    @property
    def ratio(self) -> float:
        """Fraction of ``True`` in the window (1.0 while empty —
        no evidence of failure yet)."""
        if not self._values:
            return 1.0
        return self._true_count / len(self._values)

    def reset(self) -> None:
        self._values.clear()
        self._true_count = 0
