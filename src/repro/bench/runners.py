"""Measurement cores + registry of every bench ``repro bench`` runs.

Each runner builds its rig from scratch (seeded sessions, deterministic
workloads), measures with best-of-N ``perf_counter`` walls, and returns
a validated schema-v2 envelope.  The pytest benches under
``benchmarks/`` are thin wrappers over these same functions — one
measurement core, two entry points — so the CI gate and the committed
snapshots can never drift apart.

Registry: :data:`BENCHES` maps bench name → definition (runner +
snapshot filename + suites); :data:`SUITES` groups them (``ci`` is what
the CI gate runs, ``full`` adds the slower overhead matrices).
:func:`run_suite` executes a set of benches, refreshes the committed
``BENCH_*.json`` snapshots on request, and journals every run to
``history.jsonl``.
"""

from __future__ import annotations

import json
import pathlib
from time import perf_counter
from typing import Any, Callable, NamedTuple

from repro.bench.history import append_run
from repro.bench.schema import load_envelope, make_envelope, metric
from repro.config import (
    EventsConfig,
    PPCConfig,
    ProfileConfig,
    TelemetryConfig,
    TraceConfig,
)
from repro.core.framework import PPCFramework, TemplateSession
from repro.core.persistence import atomic_write_text
from repro.exceptions import BenchError
from repro.obs import names as metric_names
from repro.resilience import VirtualClock
from repro.tpch import plan_space_for
from repro.workload import RandomTrajectoryWorkload
from repro.workload.runner import run_matrix
from repro.workload.scenarios import SCENARIO_NAMES

__all__ = [
    "BENCHES",
    "SUITES",
    "run_events_overhead",
    "run_predict_throughput",
    "run_profile_overhead",
    "run_quality_overhead",
    "run_scenarios",
    "run_suite",
    "run_trace_overhead",
    "scenarios_envelope",
]

#: Seeds shared by every throughput/overhead rig: the session's RNG
#: stream and the warmup/probe trajectory workloads.
SESSION_SEED = 17
WARM_SEED = 5
PROBE_SEED = 6


def _seeds() -> dict[str, int]:
    return {"session": SESSION_SEED, "warm": WARM_SEED, "probe": PROBE_SEED}


def _hot_path_config(**overrides: Any) -> PPCConfig:
    return PPCConfig(
        confidence_threshold=0.8,
        mean_invocation_probability=0.05,
        drift_response=False,
        **overrides,
    )


# ----------------------------------------------------------------------
# predict_throughput: the vectorized batch primitive vs the scalar loop
# ----------------------------------------------------------------------

PREDICT_WARMUP = 500
PREDICT_PROBES = 1500
PREDICT_REPEATS = 5
PREDICT_TARGET_US = 150.0
PREDICT_HARD_LIMIT_US = 2.0 * PREDICT_TARGET_US
#: Explicit shared-runner allowance for the CI gate: amortized
#: microseconds wobble hard on busy runners, so the committed value may
#: be exceeded by this much before compare calls it a regression (the
#: bench's own HARD_LIMIT assert still backstops a runaway).
PREDICT_TOLERANCE_PCT = 100.0


def run_predict_throughput() -> dict[str, Any]:
    """Best-of-N amortized per-instance cost, batch vs scalar."""
    session = TemplateSession(
        plan_space_for("Q1"), _hot_path_config(), seed=SESSION_SEED
    )
    warm = RandomTrajectoryWorkload(2, spread=0.02, seed=WARM_SEED).generate(
        PREDICT_WARMUP
    )
    for x in warm:
        session.execute(x)
    probes = RandomTrajectoryWorkload(
        2, spread=0.02, seed=PROBE_SEED
    ).generate(PREDICT_PROBES)
    online = session.online

    best_batch = float("inf")
    best_scalar = float("inf")
    batch_predictions = None
    scalar_predictions = None
    for __ in range(PREDICT_REPEATS):
        t0 = perf_counter()
        batch_predictions = online.predict_batch(probes)
        best_batch = min(best_batch, (perf_counter() - t0) / PREDICT_PROBES)

        t0 = perf_counter()
        scalar_predictions = [online.predict(x) for x in probes]
        best_scalar = min(best_scalar, (perf_counter() - t0) / PREDICT_PROBES)

    if batch_predictions != scalar_predictions:
        raise BenchError(
            "batch and scalar predictions diverged on the bench workload"
        )
    batch_us = best_batch * 1e6
    scalar_us = best_scalar * 1e6
    speedup = scalar_us / batch_us if batch_us > 0.0 else float("inf")
    return make_envelope(
        "predict_throughput",
        metrics={
            "batch_us_per_instance": metric(
                batch_us,
                "us/instance",
                "lower",
                tolerance_pct=PREDICT_TOLERANCE_PCT,
            ),
            "scalar_us_per_instance": metric(
                scalar_us, "us/instance", "lower", tolerance_pct=200.0
            ),
            "speedup": metric(speedup, "x", "higher", tolerance_pct=60.0),
        },
        workload={
            "template": "Q1",
            "warmup": PREDICT_WARMUP,
            "probes": PREDICT_PROBES,
            "repeats": PREDICT_REPEATS,
            "seeds": _seeds(),
        },
        gate={
            "target_us": PREDICT_TARGET_US,
            "hard_limit_us": PREDICT_HARD_LIMIT_US,
            "passed": batch_us <= PREDICT_HARD_LIMIT_US,
        },
    )


# ----------------------------------------------------------------------
# Overhead matrices: tracing, quality telemetry, stage profiling
# ----------------------------------------------------------------------

OVERHEAD_WARMUP = 500
OVERHEAD_PROBES = 1500
OVERHEAD_REPEATS = 3

TRACE_MODES = (
    ("off", TraceConfig(enabled=False)),
    ("sampled", TraceConfig()),  # shipped default: head + error bias
    ("full", TraceConfig(interval=1, capacity=4096, error_capacity=512)),
)

QUALITY_MODES = (
    ("off", TelemetryConfig(enabled=False)),
    ("sampled", TelemetryConfig()),  # shipped default: 5 s / every 12th
    ("aggressive", TelemetryConfig(sample_interval=1.0, quality_every=4)),
)

QUALITY_ADVANCE = 1.0  # simulated seconds per instance

PROFILE_WARMUP = 300
PROFILE_PROBES = 1000
PROFILE_REPEATS = 3
#: The profiler's acceptance bar: enabled at the default sampling
#: (every execution), the hot path slows by less than this.
PROFILE_MAX_OVERHEAD_PCT = 5.0

PROFILE_MODES = (
    ("off", ProfileConfig()),
    ("on", ProfileConfig(enabled=True, interval=1)),
)


def _predict_p95(metrics_owner: Any) -> float:
    digest = metrics_owner.metrics.histogram_summary(
        metric_names.STAGE_SECONDS, template="Q1", stage="predict"
    )
    return float(digest["p95"]) if digest else 0.0


def _overhead_workload(
    warmup: int, probes: int, repeats: int
) -> "tuple[Any, Any]":
    warm = RandomTrajectoryWorkload(2, spread=0.02, seed=WARM_SEED).generate(
        warmup
    )
    probe = RandomTrajectoryWorkload(
        2, spread=0.02, seed=PROBE_SEED
    ).generate(probes * repeats)
    return warm, probe


def _mode_payload(
    best: dict[str, float], owners: dict[str, Any]
) -> dict[str, Any]:
    baseline = best["off"]
    return {
        name: {
            "us_per_instance": best[name] * 1e6,
            "overhead_pct": (best[name] / baseline - 1.0) * 100.0,
            "predict_p95_seconds": _predict_p95(owners[name]),
        }
        for name in best
    }


def run_trace_overhead() -> dict[str, Any]:
    """Tracing cost: off vs shipped sampling vs every-execution."""
    sessions = {
        name: TemplateSession(
            plan_space_for("Q1"),
            _hot_path_config(trace=cfg),
            seed=SESSION_SEED,
        )
        for name, cfg in TRACE_MODES
    }
    warm, probes = _overhead_workload(
        OVERHEAD_WARMUP, OVERHEAD_PROBES, OVERHEAD_REPEATS
    )
    for x in warm:
        for session in sessions.values():
            session.execute(x)
    best = dict.fromkeys(sessions, float("inf"))
    for repeat in range(OVERHEAD_REPEATS):
        batch = probes[
            repeat * OVERHEAD_PROBES : (repeat + 1) * OVERHEAD_PROBES
        ]
        for name, session in sessions.items():
            t0 = perf_counter()
            for x in batch:
                session.execute(x)
            best[name] = min(
                best[name], (perf_counter() - t0) / OVERHEAD_PROBES
            )
    if not sessions["full"].tracer.traces() or sessions["off"].tracer.traces():
        raise BenchError("trace rig sanity check failed")
    modes = _mode_payload(best, sessions)
    return make_envelope(
        "trace_overhead",
        metrics={
            "off_us_per_instance": metric(
                modes["off"]["us_per_instance"],
                "us/instance",
                "lower",
                tolerance_pct=100.0,
            ),
            "sampled_overhead_pct": metric(
                modes["sampled"]["overhead_pct"],
                "pct",
                "lower",
                tolerance_abs=10.0,
            ),
            "full_overhead_pct": metric(
                modes["full"]["overhead_pct"],
                "pct",
                "lower",
                tolerance_abs=25.0,
            ),
        },
        workload={
            "template": "Q1",
            "warmup": OVERHEAD_WARMUP,
            "probes": OVERHEAD_PROBES,
            "repeats": OVERHEAD_REPEATS,
            "seeds": _seeds(),
        },
        gate={"mode": "sampled", "max_overhead_pct": 10.0},
        details={"modes": modes},
    )


def run_quality_overhead() -> dict[str, Any]:
    """Quality-telemetry cost on virtual clocks, off vs shipped vs hot."""
    rigs: dict[str, tuple[PPCFramework, VirtualClock]] = {}
    for name, cfg in QUALITY_MODES:
        clock = VirtualClock()
        framework = PPCFramework(
            _hot_path_config(telemetry=cfg),
            seed=SESSION_SEED,
            clock=clock,
            sleep=clock.sleep,
        )
        framework.register(plan_space_for("Q1"))
        rigs[name] = (framework, clock)
    warm, probes = _overhead_workload(
        OVERHEAD_WARMUP, OVERHEAD_PROBES, OVERHEAD_REPEATS
    )
    for x in warm:
        for framework, clock in rigs.values():
            framework.execute("Q1", x)
            clock.advance(QUALITY_ADVANCE)
    best = dict.fromkeys(rigs, float("inf"))
    for repeat in range(OVERHEAD_REPEATS):
        batch = probes[
            repeat * OVERHEAD_PROBES : (repeat + 1) * OVERHEAD_PROBES
        ]
        for name, (framework, clock) in rigs.items():
            t0 = perf_counter()
            for x in batch:
                framework.execute("Q1", x)
                clock.advance(QUALITY_ADVANCE)
            best[name] = min(
                best[name], (perf_counter() - t0) / OVERHEAD_PROBES
            )
    if rigs["off"][0].telemetry is not None:
        raise BenchError("off rig unexpectedly has telemetry")
    if not rigs["sampled"][0].telemetry.sample_count:
        raise BenchError("sampled rig never sampled")
    reference = [
        (r.executed_plan, r.optimizer_invoked)
        for r in rigs["off"][0].session("Q1").records
    ]
    for name, (framework, __) in rigs.items():
        decisions = [
            (r.executed_plan, r.optimizer_invoked)
            for r in framework.session("Q1").records
        ]
        if decisions != reference:
            raise BenchError(f"telemetry mode {name} changed decisions")
    frameworks = {name: rig[0] for name, rig in rigs.items()}
    modes = _mode_payload(best, frameworks)
    return make_envelope(
        "quality_overhead",
        metrics={
            "off_us_per_instance": metric(
                modes["off"]["us_per_instance"],
                "us/instance",
                "lower",
                tolerance_pct=100.0,
            ),
            "sampled_overhead_pct": metric(
                modes["sampled"]["overhead_pct"],
                "pct",
                "lower",
                tolerance_abs=6.0,
            ),
            "aggressive_overhead_pct": metric(
                modes["aggressive"]["overhead_pct"],
                "pct",
                "lower",
                tolerance_abs=15.0,
            ),
        },
        workload={
            "template": "Q1",
            "warmup": OVERHEAD_WARMUP,
            "probes": OVERHEAD_PROBES,
            "repeats": OVERHEAD_REPEATS,
            "advance_seconds": QUALITY_ADVANCE,
            "seeds": _seeds(),
        },
        gate={"mode": "sampled", "max_overhead_pct": 5.0},
        details={"modes": modes},
    )


def run_profile_overhead() -> dict[str, Any]:
    """Stage-profiler cost at default sampling, with decision parity.

    Two identically seeded sessions run the same trajectory in
    lockstep: profiling off (the shipped default) and profiling every
    execution.  The profiler consumes no RNG and never flips
    ``trace.active``, so the decisions must match bit-for-bit — checked
    here, and pinned by the parity test in ``tests/obs``.
    """
    sessions = {
        name: TemplateSession(
            plan_space_for("Q1"),
            _hot_path_config(profiling=cfg),
            seed=SESSION_SEED,
        )
        for name, cfg in PROFILE_MODES
    }
    warm, probes = _overhead_workload(
        PROFILE_WARMUP, PROFILE_PROBES, PROFILE_REPEATS
    )
    for x in warm:
        for session in sessions.values():
            session.execute(x)
    best = dict.fromkeys(sessions, float("inf"))
    for repeat in range(PROFILE_REPEATS):
        batch = probes[
            repeat * PROFILE_PROBES : (repeat + 1) * PROFILE_PROBES
        ]
        for name, session in sessions.items():
            t0 = perf_counter()
            for x in batch:
                session.execute(x)
            best[name] = min(
                best[name], (perf_counter() - t0) / PROFILE_PROBES
            )
    profiler = sessions["on"].profiler
    if profiler is None or not profiler.report()["templates"]:
        raise BenchError("profiled rig recorded nothing")
    if sessions["off"].profiler is not None:
        raise BenchError("off rig unexpectedly owns a profiler")
    reference = [
        (r.executed_plan, r.optimizer_invoked, r.predicted, r.confidence)
        for r in sessions["off"].records
    ]
    profiled = [
        (r.executed_plan, r.optimizer_invoked, r.predicted, r.confidence)
        for r in sessions["on"].records
    ]
    if profiled != reference:
        raise BenchError("profiling changed decisions")
    modes = _mode_payload(best, sessions)
    return make_envelope(
        "profile_overhead",
        metrics={
            "off_us_per_instance": metric(
                modes["off"]["us_per_instance"],
                "us/instance",
                "lower",
                tolerance_pct=100.0,
            ),
            "enabled_overhead_pct": metric(
                modes["on"]["overhead_pct"],
                "pct",
                "lower",
                tolerance_abs=PROFILE_MAX_OVERHEAD_PCT,
            ),
        },
        workload={
            "template": "Q1",
            "warmup": PROFILE_WARMUP,
            "probes": PROFILE_PROBES,
            "repeats": PROFILE_REPEATS,
            "seeds": _seeds(),
        },
        gate={
            "mode": "on",
            "max_overhead_pct": PROFILE_MAX_OVERHEAD_PCT,
            "parity": True,
        },
        details={"modes": modes},
    )


EVENTS_WARMUP = 300
EVENTS_PROBES = 1000
EVENTS_REPEATS = 3
#: The journal's acceptance bar: enabled with a production-sized ring,
#: the hot path slows by less than this.
EVENTS_MAX_OVERHEAD_PCT = 5.0

EVENTS_MODES = (
    ("off", EventsConfig()),
    ("on", EventsConfig(enabled=True, capacity=4096)),
)


def run_events_overhead() -> dict[str, Any]:
    """Lifecycle-journal cost when enabled, with decision parity.

    Two identically seeded sessions run the same trajectory in
    lockstep: events off (the shipped default) and events on with the
    default ring.  Emission consumes no RNG and never flips
    ``trace.active``, so the decisions must match bit-for-bit — checked
    here, and pinned by the parity test in ``tests/obs``.
    """
    sessions = {
        name: TemplateSession(
            plan_space_for("Q1"),
            _hot_path_config(events=cfg),
            seed=SESSION_SEED,
        )
        for name, cfg in EVENTS_MODES
    }
    warm, probes = _overhead_workload(
        EVENTS_WARMUP, EVENTS_PROBES, EVENTS_REPEATS
    )
    for x in warm:
        for session in sessions.values():
            session.execute(x)
    best = dict.fromkeys(sessions, float("inf"))
    for repeat in range(EVENTS_REPEATS):
        batch = probes[
            repeat * EVENTS_PROBES : (repeat + 1) * EVENTS_PROBES
        ]
        for name, session in sessions.items():
            t0 = perf_counter()
            for x in batch:
                session.execute(x)
            best[name] = min(
                best[name], (perf_counter() - t0) / EVENTS_PROBES
            )
    journal = sessions["on"].events
    if journal is None or not journal.emitted:
        raise BenchError("events rig journaled nothing")
    if sessions["off"].events is not None:
        raise BenchError("off rig unexpectedly owns a journal")
    reference = [
        (r.executed_plan, r.optimizer_invoked, r.predicted, r.confidence)
        for r in sessions["off"].records
    ]
    journaled = [
        (r.executed_plan, r.optimizer_invoked, r.predicted, r.confidence)
        for r in sessions["on"].records
    ]
    if journaled != reference:
        raise BenchError("event journaling changed decisions")
    modes = _mode_payload(best, sessions)
    return make_envelope(
        "events_overhead",
        metrics={
            "off_us_per_instance": metric(
                modes["off"]["us_per_instance"],
                "us/instance",
                "lower",
                tolerance_pct=100.0,
            ),
            "enabled_overhead_pct": metric(
                modes["on"]["overhead_pct"],
                "pct",
                "lower",
                tolerance_abs=EVENTS_MAX_OVERHEAD_PCT,
            ),
        },
        workload={
            "template": "Q1",
            "warmup": EVENTS_WARMUP,
            "probes": EVENTS_PROBES,
            "repeats": EVENTS_REPEATS,
            "events_emitted": journal.emitted,
            "seeds": _seeds(),
        },
        gate={
            "mode": "on",
            "max_overhead_pct": EVENTS_MAX_OVERHEAD_PCT,
            "parity": True,
        },
        details={"modes": modes},
    )


# ----------------------------------------------------------------------
# Scenario fleet
# ----------------------------------------------------------------------


def scenarios_envelope(
    payload: dict[str, Any], elapsed_seconds: float
) -> dict[str, Any]:
    """Wrap a :func:`run_matrix` payload in the schema-v2 envelope.

    Shared by the bench runner, the pytest bench, and
    ``repro scenarios run --out`` so the committed snapshot always has
    the same shape no matter which entry point produced it.
    """
    contracts_failed = sum(
        0 if contract["passed"] else 1
        for row in payload["scenarios"]
        for contract in row["contracts"]
    )
    instances = sum(row["instances"] for row in payload["scenarios"])
    return make_envelope(
        "scenarios",
        metrics={
            "contracts_failed": metric(
                contracts_failed, "contracts", "lower", tolerance_abs=0.0
            ),
            "instances": metric(
                instances, "instances", "higher", tolerance_abs=0.0
            ),
            "elapsed_seconds": metric(
                elapsed_seconds, "s", "lower", tolerance_pct=300.0
            ),
        },
        workload={
            "scenarios": [row["scenario"] for row in payload["scenarios"]],
            "tier": payload.get("tier", "fast"),
            "batch_size": payload.get("batch_size", 1),
        },
        gate={"contracts_failed": contracts_failed, "passed": not contracts_failed},
        details={"scenarios": payload["scenarios"]},
    )


def run_scenarios() -> dict[str, Any]:
    """The full adversarial fleet, fast tier, contracts asserted."""
    t0 = perf_counter()
    payload = run_matrix(SCENARIO_NAMES, fast=True)
    return scenarios_envelope(payload, perf_counter() - t0)


# ----------------------------------------------------------------------
# Registry + suite runner
# ----------------------------------------------------------------------


class BenchDef(NamedTuple):
    """One registered bench: how to run it and where its baseline lives."""

    name: str
    snapshot: str  # committed baseline: benchmarks/results/BENCH_<snapshot>.json
    runner: Callable[[], dict[str, Any]]
    suites: tuple[str, ...]


BENCHES: dict[str, BenchDef] = {
    bench.name: bench
    for bench in (
        BenchDef(
            "predict_throughput", "predict", run_predict_throughput, ("ci", "full")
        ),
        BenchDef(
            "profile_overhead", "profile", run_profile_overhead, ("ci", "full")
        ),
        BenchDef(
            "events_overhead", "events", run_events_overhead, ("ci", "full")
        ),
        BenchDef("scenarios", "scenarios", run_scenarios, ("ci", "full")),
        BenchDef("trace_overhead", "trace", run_trace_overhead, ("full",)),
        BenchDef("quality_overhead", "quality", run_quality_overhead, ("full",)),
    )
}

SUITES: dict[str, tuple[str, ...]] = {
    suite: tuple(
        name for name, bench in BENCHES.items() if suite in bench.suites
    )
    for suite in ("ci", "full")
}


def snapshot_path(results_dir: "str | pathlib.Path", bench: str) -> pathlib.Path:
    return pathlib.Path(results_dir) / f"BENCH_{BENCHES[bench].snapshot}.json"


def load_baselines(
    results_dir: "str | pathlib.Path", names: "tuple[str, ...] | list[str]"
) -> dict[str, dict[str, Any]]:
    """The committed envelopes for ``names`` (missing files skipped)."""
    baselines: dict[str, dict[str, Any]] = {}
    for name in names:
        path = snapshot_path(results_dir, name)
        if path.exists():
            baselines[name] = load_envelope(path)
    return baselines


def run_suite(
    names: "tuple[str, ...] | list[str]",
    results_dir: "str | pathlib.Path",
    history_path: "str | pathlib.Path | None" = None,
    refresh_baselines: bool = False,
    suite_label: str = "",
    log: "Callable[[str], None] | None" = None,
) -> dict[str, Any]:
    """Run benches, journal the results, optionally refresh baselines."""
    say = log if log is not None else (lambda _line: None)
    envelopes: dict[str, dict[str, Any]] = {}
    for name in names:
        if name not in BENCHES:
            raise BenchError(
                f"unknown bench {name!r}; registered: {sorted(BENCHES)}"
            )
        say(f"running {name} ...")
        envelope = BENCHES[name].runner()
        envelopes[name] = envelope
        for metric_name, entry in envelope["metrics"].items():
            say(f"  {metric_name} = {entry['value']:.4g} {entry['unit']}")
    run_id = None
    if history_path is not None:
        run_id = append_run(history_path, envelopes, suite=suite_label)
        say(f"journaled run {run_id} -> {history_path}")
    if refresh_baselines:
        for name, envelope in envelopes.items():
            path = snapshot_path(results_dir, name)
            path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_text(
                path, json.dumps(envelope, indent=2, sort_keys=True) + "\n"
            )
            say(f"baseline refreshed -> {path}")
    return {"run_id": run_id, "envelopes": envelopes}
