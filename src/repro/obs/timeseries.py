"""Windowed time-series view over a metrics registry.

The registry answers "what happened so far"; this module answers "what
happened *lately*".  A :class:`TimeSeriesStore` periodically snapshots
every counter, gauge, and histogram into fixed-capacity
:class:`RingSeries` buffers and derives windowed statistics from them:
counter deltas and rates, gauge trends, and quantile envelopes — the
raw material for the SLO burn-rate engine and ``repro report``
sparklines.

Timestamps come exclusively from the injected clock (RPR002): under a
``VirtualClock`` a fault storm fills hours of windows in milliseconds,
and in production ``system_clock`` drives real 5-minute/1-hour windows.
Memory is O(capacity) per live series; appends are O(1).
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from time import perf_counter

from repro.exceptions import ConfigurationError
from repro.obs import names
from repro.obs.registry import MetricsRegistry, _label_key
from repro.resilience.clocks import system_clock

#: Histogram summary fields captured per sample.
HISTOGRAM_FIELDS = ("count", "sum", "p50", "p95", "p99")


class RingSeries:
    """Fixed-capacity ring of ``(time, value)`` points, O(1) append."""

    __slots__ = ("_times", "_values", "_capacity", "_size", "_head")

    def __init__(self, capacity: int) -> None:
        if capacity < 2:
            raise ConfigurationError("ring series capacity must be >= 2")
        self._capacity = capacity
        self._times = [0.0] * capacity
        self._values = [0.0] * capacity
        self._size = 0
        self._head = 0  # next write slot

    def __len__(self) -> int:
        return self._size

    @property
    def capacity(self) -> int:
        return self._capacity

    def append(self, timestamp: float, value: float) -> None:
        self._times[self._head] = timestamp
        self._values[self._head] = value
        self._head = (self._head + 1) % self._capacity
        if self._size < self._capacity:
            self._size += 1

    def points(self) -> "list[tuple[float, float]]":
        """All retained points, oldest first."""
        return list(self._iter_points())

    def _iter_points(self) -> "Iterator[tuple[float, float]]":
        start = (self._head - self._size) % self._capacity
        for offset in range(self._size):
            index = (start + offset) % self._capacity
            yield self._times[index], self._values[index]

    def last(self) -> "tuple[float, float] | None":
        if self._size == 0:
            return None
        index = (self._head - 1) % self._capacity
        return self._times[index], self._values[index]

    def first(self) -> "tuple[float, float] | None":
        if self._size == 0:
            return None
        index = (self._head - self._size) % self._capacity
        return self._times[index], self._values[index]

    def value_at_or_before(self, timestamp: float) -> "float | None":
        """Latest recorded value with time <= *timestamp* (None if all
        retained points are newer)."""
        result: "float | None" = None
        for time, value in self._iter_points():
            if time > timestamp:
                break
            result = value
        return result

    def window_delta(self, now: float, window: float) -> float:
        """Last value minus the value at the window's start.

        For counters this is the number of events inside
        ``[now - window, now]``.  When the series is younger than the
        window the earliest retained point is the base — the delta
        degrades to "since start", never to garbage.
        """
        tail = self.last()
        if tail is None:
            return 0.0
        base = self.value_at_or_before(now - window)
        if base is None:
            head = self.first()
            base = head[1] if head is not None else 0.0
        return tail[1] - base

    def window_max(self, now: float, window: float) -> "float | None":
        """Max value among points inside ``[now - window, now]``."""
        result: "float | None" = None
        for time, value in self._iter_points():
            if time < now - window or time > now:
                continue
            if result is None or value > result:
                result = value
        return result

    def window_values(self, now: float, window: float) -> "list[float]":
        return [
            value
            for time, value in self._iter_points()
            if now - window <= time <= now
        ]


class TimeSeriesStore:
    """Periodic whole-registry sampler with windowed derivations.

    ``maybe_sample()`` is the hot-path entry: one clock read and a
    comparison when no sample is due.  When one is due it walks the
    registry snapshot and appends every sample to its ring — counters
    and gauges as scalars, histograms as one ring per summary field
    (:data:`HISTOGRAM_FIELDS`) so quantile trends are queryable.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        clock: "Callable[[], float]" = system_clock,
        capacity: int = 256,
        interval: float = 5.0,
    ) -> None:
        if interval <= 0.0:
            raise ConfigurationError("sample interval must be > 0")
        self._registry = registry
        self._clock = clock
        self._capacity = capacity
        self._interval = interval
        self._last_sample: "float | None" = None
        #: key -> (labels, ring); key is (kind, name, label_key[, field])
        self._series: "dict[tuple, tuple[dict, RingSeries]]" = {}
        self._samples_total = registry.counter(names.TELEMETRY_SAMPLES_TOTAL)
        self._sample_seconds = registry.histogram(
            names.TELEMETRY_SAMPLE_SECONDS
        )

    @property
    def interval(self) -> float:
        return self._interval

    @property
    def sample_count(self) -> int:
        return int(self._samples_total.value)

    def now(self) -> float:
        return self._clock()

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def maybe_sample(self) -> bool:
        """Take a snapshot if the interval elapsed; True if one was taken."""
        now = self._clock()
        if (
            self._last_sample is not None
            and now - self._last_sample < self._interval
        ):
            return False
        self.sample(now)
        return True

    def sample(self, now: "float | None" = None) -> None:
        """Snapshot every registry metric into the ring series."""
        if now is None:
            now = self._clock()
        started = perf_counter()
        snapshot = self._registry.snapshot()
        for name, samples in snapshot["counters"].items():
            for sample in samples:
                self._append(
                    ("counter", name, _label_key(sample["labels"])),
                    sample["labels"],
                    now,
                    sample["value"],
                )
        for name, samples in snapshot["gauges"].items():
            for sample in samples:
                self._append(
                    ("gauge", name, _label_key(sample["labels"])),
                    sample["labels"],
                    now,
                    sample["value"],
                )
        for name, samples in snapshot["histograms"].items():
            for sample in samples:
                key_base = _label_key(sample["labels"])
                for field in HISTOGRAM_FIELDS:
                    self._append(
                        ("histogram", name, key_base, field),
                        sample["labels"],
                        now,
                        sample[field],
                    )
        self._last_sample = now
        self._samples_total.inc()
        self._sample_seconds.observe(perf_counter() - started)

    def _append(
        self, key: tuple, labels: dict, now: float, value: float
    ) -> None:
        entry = self._series.get(key)
        if entry is None:
            entry = (dict(labels), RingSeries(self._capacity))
            self._series[key] = entry
        entry[1].append(now, float(value))

    # ------------------------------------------------------------------
    # Windowed reads
    # ------------------------------------------------------------------
    def counter_delta(
        self,
        name: str,
        window: float,
        now: "float | None" = None,
        **labels: str,
    ) -> float:
        """Counter increase inside ``[now - window, now]`` (0.0 when the
        series never sampled)."""
        if now is None:
            now = self._clock()
        entry = self._series.get(("counter", name, _label_key(labels)))
        if entry is None:
            return 0.0
        return entry[1].window_delta(now, window)

    def counter_rate(
        self,
        name: str,
        window: float,
        now: "float | None" = None,
        **labels: str,
    ) -> float:
        """Counter events per second over the window."""
        return self.counter_delta(name, window, now, **labels) / window

    def gauge_series(self, name: str, **labels: str) -> "RingSeries | None":
        entry = self._series.get(("gauge", name, _label_key(labels)))
        return entry[1] if entry else None

    def histogram_field_max(
        self,
        name: str,
        field: str,
        window: float,
        now: "float | None" = None,
        **labels: str,
    ) -> "float | None":
        """Max sampled histogram summary *field* (e.g. ``p95``) in the
        window; None when nothing was sampled there."""
        if field not in HISTOGRAM_FIELDS:
            raise ConfigurationError(
                f"unknown histogram field {field!r}; "
                f"expected one of {HISTOGRAM_FIELDS}"
            )
        if now is None:
            now = self._clock()
        entry = self._series.get(
            ("histogram", name, _label_key(labels), field)
        )
        if entry is None:
            return None
        return entry[1].window_max(now, window)

    def series_points(
        self,
        kind: str,
        name: str,
        field: "str | None" = None,
        **labels: str,
    ) -> "list[tuple[float, float]]":
        """Raw retained points of one series, oldest first."""
        key: tuple
        if kind == "histogram":
            key = (kind, name, _label_key(labels), field or "p95")
        else:
            key = (kind, name, _label_key(labels))
        entry = self._series.get(key)
        return entry[1].points() if entry else []

    def stats(self) -> dict:
        """Small JSON-ready summary (for ``service.metrics()``)."""
        return {
            "samples": self.sample_count,
            "interval": self._interval,
            "capacity": self._capacity,
            "series": len(self._series),
            "last_sample": self._last_sample,
        }

    def to_dict(self, tail: int = 32) -> dict:
        """JSON-ready digest: per-series metadata plus the last *tail*
        points (sparkline feed for ``repro report``)."""
        series = []
        for key, (labels, ring) in sorted(
            self._series.items(), key=lambda item: tuple(map(str, item[0]))
        ):
            kind, name = key[0], key[1]
            entry: dict = {
                "kind": kind,
                "name": name,
                "labels": dict(labels),
                "points": [
                    [round(t, 6), value] for t, value in ring.points()[-tail:]
                ],
            }
            if kind == "histogram":
                entry["field"] = key[3]
            series.append(entry)
        return {
            "interval": self._interval,
            "capacity": self._capacity,
            "samples": self.sample_count,
            "series": series,
        }
