"""ManipulatedPlanSpace edge cases, promoted into tested contracts.

The wrapper went from an on/off switch to the scenario fleet's drift
primitive; these tests pin the behaviors the scenarios (and the
Section V-D experiment) rely on: idempotent activation, validated and
monotone intensity, cost-only mode, the memory guard, and seeded
determinism of the scramble itself.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.workload import ManipulatedPlanSpace
from repro.workload.uniform import sample_points


@pytest.fixture(scope="module")
def points(tiny_space):
    return sample_points(tiny_space.dimensions, 400, seed=5)


class TestConstruction:
    def test_memory_guard_names_the_limit(self, tiny_space):
        with pytest.raises(ConfigurationError, match="memory guard"):
            ManipulatedPlanSpace(tiny_space, resolution=3000)

    def test_memory_guard_message_shows_the_arithmetic(self, tiny_space):
        with pytest.raises(ConfigurationError, match=r"3000\^2"):
            ManipulatedPlanSpace(tiny_space, resolution=3000)

    def test_cost_jitter_must_be_positive(self, tiny_space):
        with pytest.raises(ConfigurationError, match="cost_jitter"):
            ManipulatedPlanSpace(tiny_space, cost_jitter=0.0)

    def test_oracle_interface_mirrors_base(self, tiny_space):
        oracle = ManipulatedPlanSpace(tiny_space, seed=0)
        assert oracle.dimensions == tiny_space.dimensions
        assert oracle.plan_count == tiny_space.plan_count
        assert oracle.template is tiny_space.template
        assert oracle.plan(0) is tiny_space.plan(0)


class TestActivation:
    def test_inactive_wrapper_is_transparent(self, tiny_space, points):
        oracle = ManipulatedPlanSpace(tiny_space, seed=0)
        assert not oracle.active
        ids, costs = oracle.label(points)
        base_ids, base_costs = tiny_space.label(points)
        assert (ids == base_ids).all()
        assert (costs == base_costs).all()
        assert (
            oracle.cost_at(points, 0) == tiny_space.cost_at(points, 0)
        ).all()

    def test_activate_scrambles_labels_and_costs(self, tiny_space, points):
        oracle = ManipulatedPlanSpace(tiny_space, seed=0)
        oracle.activate()
        assert oracle.active
        assert oracle.intensity == 1.0
        ids, costs = oracle.label(points)
        base_ids, base_costs = tiny_space.label(points)
        # Offsets are drawn in [1, plan_count), so every point's label
        # moves under a full scramble.
        assert (ids != base_ids).all()
        assert not np.allclose(costs, base_costs)

    def test_double_activate_is_idempotent(self, tiny_space, points):
        oracle = ManipulatedPlanSpace(tiny_space, seed=0)
        oracle.activate()
        first_ids, first_costs = oracle.label(points)
        oracle.activate()
        again_ids, again_costs = oracle.label(points)
        assert (first_ids == again_ids).all()
        assert (first_costs == again_costs).all()

    def test_deactivate_restores_truth_and_reactivation_repeats(
        self, tiny_space, points
    ):
        oracle = ManipulatedPlanSpace(tiny_space, seed=0)
        oracle.activate()
        scrambled, __ = oracle.label(points)
        oracle.deactivate()
        assert not oracle.active
        restored, __ = oracle.label(points)
        assert (restored == tiny_space.plan_at(points)).all()
        # The scramble is fixed at construction: re-activation never
        # re-rolls it.
        oracle.activate()
        rescrambled, __ = oracle.label(points)
        assert (rescrambled == scrambled).all()


class TestIntensity:
    @pytest.mark.parametrize("bad", [-0.1, 1.1, float("nan")])
    def test_out_of_range_intensity_rejected(self, tiny_space, bad):
        oracle = ManipulatedPlanSpace(tiny_space, seed=0)
        with pytest.raises(ConfigurationError, match="intensity"):
            oracle.set_intensity(bad)

    def test_scrambled_set_grows_monotonically(self, tiny_space, points):
        oracle = ManipulatedPlanSpace(tiny_space, seed=0)
        base_ids = tiny_space.plan_at(points)
        previous: "set[int]" = set()
        previous_size = -1
        for fraction in (0.0, 0.25, 0.5, 0.75, 1.0):
            oracle.set_intensity(fraction)
            changed = {
                int(i)
                for i in np.flatnonzero(oracle.plan_at(points) != base_ids)
            }
            assert previous <= changed, (
                f"intensity {fraction} un-drifted already corrupted points"
            )
            assert len(changed) >= previous_size
            previous, previous_size = changed, len(changed)
        assert len(previous) == len(points)

    def test_partial_intensity_scrambles_roughly_that_fraction(
        self, tiny_space, points
    ):
        oracle = ManipulatedPlanSpace(tiny_space, seed=0)
        oracle.set_intensity(0.5)
        changed = (oracle.plan_at(points) != tiny_space.plan_at(points)).mean()
        assert 0.25 < changed < 0.75

    def test_set_intensity_one_equals_activate(self, tiny_space, points):
        stepped = ManipulatedPlanSpace(tiny_space, seed=3)
        stepped.activate()
        ramped = ManipulatedPlanSpace(tiny_space, seed=3)
        ramped.set_intensity(1.0)
        assert (
            stepped.plan_at(points) == ramped.plan_at(points)
        ).all()


class TestCostOnlyMode:
    def test_scramble_labels_false_preserves_plan_choice(
        self, tiny_space, points
    ):
        oracle = ManipulatedPlanSpace(
            tiny_space, seed=0, scramble_labels=False, cost_jitter=6.0
        )
        oracle.activate()
        ids, costs = oracle.label(points)
        base_ids, base_costs = tiny_space.label(points)
        assert (ids == base_ids).all(), "Assumption 1 must stay intact"
        assert not np.allclose(costs, base_costs), (
            "Assumption 2 must be violated"
        )

    def test_cost_at_jitters_fixed_plan_costs_too(self, tiny_space, points):
        oracle = ManipulatedPlanSpace(
            tiny_space, seed=0, scramble_labels=False, cost_jitter=6.0
        )
        oracle.activate()
        assert not np.allclose(
            oracle.cost_at(points, 0), tiny_space.cost_at(points, 0)
        )


class TestDeterminism:
    def test_equal_seeds_scramble_identically(self, tiny_space, points):
        a = ManipulatedPlanSpace(tiny_space, seed=9)
        b = ManipulatedPlanSpace(tiny_space, seed=9)
        a.activate()
        b.activate()
        ids_a, costs_a = a.label(points)
        ids_b, costs_b = b.label(points)
        assert (ids_a == ids_b).all()
        assert (costs_a == costs_b).all()

    def test_different_seeds_scramble_differently(self, tiny_space, points):
        a = ManipulatedPlanSpace(tiny_space, seed=9)
        b = ManipulatedPlanSpace(tiny_space, seed=10)
        a.activate()
        b.activate()
        assert (a.plan_at(points) != b.plan_at(points)).any()
