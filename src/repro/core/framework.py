"""The parametric plan-caching framework: the Figure-1 workflow.

A :class:`TemplateSession` owns everything the RDBMS keeps per query
template: the online predictor (clustered plan-space synopses), the
performance monitor, and the plan cache.  ``execute`` runs one query
instance through the full decision flow:

1. validate the instance (NaN/inf/out-of-domain points are rejected
   with a clean :class:`~repro.exceptions.PredictionError`);
2. predict the plan from the clustered plan space;
3. decide whether to invoke the optimizer anyway (NULL prediction,
   random exploration, or plan missing from the cache);
4. execute; afterwards compare the observed cost against the synopsis
   estimate and — on a suspected misprediction — invoke the optimizer
   and feed the corrective point back (negative feedback);
5. update precision/recall estimators, trigger the drift response when
   estimated precision collapses.

The flow is **guarded**: a degraded component never takes down query
execution.  A predictor exception degrades to the optimizer (counted
in :mod:`repro.obs`); optimizer invocations get retry with capped
exponential backoff under a deadline, behind a per-template circuit
breaker; when the optimizer is unavailable (retries exhausted or
breaker open), the session answers from the fallback chain —

    prediction (if cached) → last served plan → most recent cached plan

— recording which source served and the suboptimality it accepted.
Only when that chain is empty (optimizer down before any plan was ever
cached) does execution fail, with
:class:`~repro.exceptions.ResilienceError`.

The plan-space oracle plays two roles, exactly as in the paper's
prototype: it is the black-box optimizer the session invokes, and it
supplies the experimenter's ground truth recorded in every
:class:`ExecutionRecord` (the session itself never peeks).

Every session reports into a :class:`~repro.obs.registry.MetricsRegistry`
(per-stage wall-clock, invocation reasons, drift events, feedback
outcomes, degradations, breaker state); a framework shares one registry
across all its sessions.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.buildinfo import VERSION, commit_id
from repro.config import PPCConfig
from repro.core.cache import PlanCache
from repro.core.monitor import PerformanceMonitor
from repro.core.online import OnlinePredictor
from repro.core.positive_feedback import PositiveFeedbackPolicy
from repro.exceptions import PredictionError, ResilienceError
from repro.metrics.classification import PrecisionRecall, summarize
from repro.metrics.classification import PredictionOutcome
from repro.obs import MetricsRegistry, names as metric_names
from repro.obs.events import EventJournal
from repro.obs.profiling import StageProfiler
from repro.obs.quality import export_quality_gauges
from repro.obs.slo import SLOEngine
from repro.obs.timeseries import TimeSeriesStore
from repro.obs.tracing import DecisionTrace, DecisionTracer, NoopTrace
from repro.optimizer.plan_space import PlanSpace
from repro.resilience.breaker import BREAKER_STATE_VALUES, CircuitBreaker
from repro.resilience.clocks import system_clock, system_sleep
from repro.resilience.faults import FaultInjector
from repro.resilience.retry import (
    RetryExhaustedError,
    RetryPolicy,
    retry_call,
)


#: Sentinel: "no precomputed prediction — run the scalar predict path".
_RECOMPUTE = object()


@dataclass(frozen=True)
class ExecutionRecord:
    """Everything that happened for one query instance."""

    template: str
    point: np.ndarray
    predicted: "int | None"
    confidence: float
    optimizer_invoked: bool
    invocation_reason: str
    executed_plan: int
    execution_cost: float
    optimal_plan: int
    optimal_cost: float
    drift_triggered: bool
    #: A guarded component failed while serving this instance (the
    #: instance still executed, possibly suboptimally).
    degraded: bool = False
    #: Which fallback source answered when the optimizer was
    #: unavailable ("" = the normal flow answered).
    fallback_source: str = ""

    @property
    def correct(self) -> bool:
        """Ground-truth correctness of the prediction (experimenter view)."""
        return self.predicted is not None and self.predicted == self.optimal_plan

    @property
    def suboptimality(self) -> float:
        """Cost of what ran relative to the optimum (>= 1)."""
        if self.optimal_cost <= 0.0:
            return 1.0
        return self.execution_cost / self.optimal_cost


class TemplateSession:
    """Per-template plan-caching state and decision flow."""

    def __init__(
        self,
        plan_space: PlanSpace,
        config: "PPCConfig | None" = None,
        seed: "int | np.random.Generator | None" = 0,
        metrics: "MetricsRegistry | None" = None,
        fault_injector: "FaultInjector | None" = None,
        clock: "Callable[[], float] | None" = None,
        sleep: "Callable[[float], None] | None" = None,
        profiler: "StageProfiler | None" = None,
        events: "EventJournal | None" = None,
    ) -> None:
        self.plan_space = plan_space
        self.config = config or PPCConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        template = plan_space.template.name
        resilience = self.config.resilience
        self._clock = clock if clock is not None else system_clock
        self._sleep = sleep if sleep is not None else system_sleep
        # Lifecycle event journal: a framework passes its shared journal
        # in; a standalone session builds its own when configured.
        # Disabled (the default) no journal exists and every emission
        # site below pays one ``is None`` check.
        if events is None and self.config.events.enabled:
            events = EventJournal(self.config.events, clock=self._clock)
        self.events = events
        self._events = events.bind(template) if events is not None else None
        self.retry_policy = RetryPolicy(
            attempts=resilience.retry_attempts,
            base_delay=resilience.retry_base_delay,
            multiplier=resilience.retry_multiplier,
            max_delay=resilience.retry_max_delay,
            deadline=resilience.retry_deadline,
        )
        self.breaker = CircuitBreaker(
            failure_threshold=resilience.breaker_failure_threshold,
            recovery_time=resilience.breaker_recovery_time,
            half_open_trials=resilience.breaker_half_open_trials,
            clock=self._clock,
            on_transition=self._on_breaker_transition,
        )
        self.monitor = PerformanceMonitor(
            window=self.config.monitor_window,
            drift_threshold=self.config.drift_threshold,
            min_observations=self.config.drift_min_observations,
        )
        self.cache = PlanCache(
            self.config.cache_capacity,
            self.monitor,
            metrics=self.metrics,
            template=template,
        )
        policy = None
        if self.config.positive_feedback:
            policy = PositiveFeedbackPolicy(
                min_confidence=self.config.positive_feedback_min_confidence,
                weight=self.config.positive_feedback_weight,
                mass_cap_ratio=self.config.positive_feedback_mass_cap,
            )
        self.online = OnlinePredictor(
            dimensions=plan_space.dimensions,
            plan_count=plan_space.plan_count,
            transforms=self.config.transforms,
            resolution=self.config.resolution,
            max_buckets=self.config.max_buckets,
            radius=self.config.radius,
            confidence_threshold=self.config.confidence_threshold,
            noise_fraction=self.config.noise_fraction,
            mean_invocation_probability=self.config.mean_invocation_probability,
            negative_feedback=self.config.negative_feedback,
            cost_epsilon=self.config.cost_epsilon,
            positive_feedback=policy,
            seed=seed,
        )
        self.online.predictor.bind_metrics(self.metrics, template=template)
        if self._events is not None:
            # Binding journals one ``histogram_built`` (the synopsis
            # going live); the cache emits evictions with the prec/rec
            # scores that chose the victim.
            self.online.bind_events(self._events)
            self.cache.bind_events(self._events)
        if profiler is None and self.config.profiling.enabled:
            profiler = StageProfiler(self.config.profiling)
        self.profiler = profiler
        self.tracer = DecisionTracer(
            template,
            config=self.config.trace,
            metrics=self.metrics,
            profiler=self.profiler,
        )
        self.optimizer_invocations = 0
        self.drift_events = 0
        self.records: list[ExecutionRecord] = []
        self._last_plan_id: "int | None" = None

        # Fault-injectable call surfaces: the optimizer, the predictor's
        # predict, and its insert.  Without an injector these are the
        # bare bound methods (zero overhead).
        if fault_injector is not None:
            self._label = fault_injector.wrap("optimizer", plan_space.label)
            self._predict = fault_injector.wrap(
                "predictor", self.online.predict
            )
            self._predict_batch = fault_injector.wrap(
                "predictor", self.online.predict_batch
            )
            self._observe = fault_injector.wrap(
                "predictor_insert", self.online.observe
            )
        else:
            self._label = plan_space.label
            self._predict = self.online.predict
            self._predict_batch = self.online.predict_batch
            self._observe = self.online.observe

        # Stable metric handles: fetched once, updated lock-free in the
        # hot path below.
        self._stage_timers = {
            stage: self.metrics.histogram(
                metric_names.STAGE_SECONDS, template=template, stage=stage
            )
            for stage in metric_names.STAGES
        }
        self._executions_counter = self.metrics.counter(
            metric_names.EXECUTIONS_TOTAL, template=template
        )
        self._reason_counters = {
            reason: self.metrics.counter(
                metric_names.INVOCATIONS_TOTAL,
                template=template,
                reason=reason,
            )
            for reason in metric_names.INVOCATION_REASONS
        }
        self._feedback_counters = {
            outcome: self.metrics.counter(
                metric_names.POSITIVE_FEEDBACK_TOTAL,
                template=template,
                outcome=outcome,
            )
            for outcome in ("accepted", "rejected")
        }
        self._drift_counter = self.metrics.counter(
            metric_names.DRIFT_EVENTS_TOTAL, template=template
        )
        self._degraded_counters = {
            component: self.metrics.counter(
                metric_names.DEGRADED_TOTAL,
                template=template,
                component=component,
            )
            for component in metric_names.DEGRADED_COMPONENTS
        }
        self._fallback_counters = {
            source: self.metrics.counter(
                metric_names.FALLBACK_SERVED_TOTAL,
                template=template,
                source=source,
            )
            for source in metric_names.FALLBACK_SOURCES
        }
        self._rejected_counters = {
            reason: self.metrics.counter(
                metric_names.REJECTED_INSTANCES_TOTAL,
                template=template,
                reason=reason,
            )
            for reason in metric_names.REJECTION_REASONS
        }
        self._retries_counter = self.metrics.counter(
            metric_names.OPTIMIZER_RETRIES_TOTAL, template=template
        )
        self._regret_counter = self.metrics.counter(
            metric_names.REGRET_TOTAL, template=template
        )
        self._fallback_suboptimality = self.metrics.histogram(
            metric_names.FALLBACK_SUBOPTIMALITY, template=template
        )
        self._breaker_gauge = self.metrics.gauge(
            metric_names.BREAKER_STATE, template=template
        )
        self._breaker_transition_counters = {
            state: self.metrics.counter(
                metric_names.BREAKER_TRANSITIONS_TOTAL,
                template=template,
                state=state,
            )
            for state in BREAKER_STATE_VALUES
        }

    def _on_breaker_transition(self, state: str) -> None:
        self._breaker_gauge.set(BREAKER_STATE_VALUES[state])
        self._breaker_transition_counters[state].inc()
        if self._events is not None:
            self._events("breaker_transition", state=state)

    # ------------------------------------------------------------------
    # The decision flow
    # ------------------------------------------------------------------
    def _validate_point(self, x: np.ndarray) -> np.ndarray:
        """Reject malformed instances before they enter the flow.

        NaN poisons every density estimate downstream (NaN comparisons
        are silently false), so the guard runs up front and raises a
        clean :class:`PredictionError`, counted per rejection reason.
        """
        x = np.asarray(x, dtype=float).reshape(-1)
        if x.shape[0] != self.plan_space.dimensions:
            self._rejected_counters["bad_shape"].inc()
            raise PredictionError(
                f"expected a {self.plan_space.dimensions}-dimensional "
                f"point, got {x.shape[0]}"
            )
        if not np.isfinite(x).all():
            self._rejected_counters["non_finite"].inc()
            raise PredictionError(
                "plan-space point contains NaN or infinity"
            )
        if (x < 0.0).any() or (x > 1.0).any():
            self._rejected_counters["out_of_domain"].inc()
            raise PredictionError(
                "plan-space point must lie in [0, 1]^r"
            )
        return x

    def _invoke_optimizer(
        self, x: np.ndarray, reason: str = "direct"
    ) -> "tuple[int, float] | None":
        """Guarded black-box optimizer call.

        Behind the circuit breaker, with retry + capped exponential
        backoff under the configured deadline.  Returns the true
        (plan id, cost) at ``x`` — inserted into the synopses and the
        plan cache — or ``None`` when the optimizer is unavailable
        (breaker open, or every attempt failed).  ``reason`` is the
        invocation reason driving the call; it flows into the
        ``point_inserted`` lifecycle event as the point's provenance
        and never affects the decision.
        """
        if not self.breaker.allow():
            self._degraded_counters["optimizer"].inc()
            return None
        try:
            ids, costs = retry_call(
                lambda: self._label(x[None, :]),
                self.retry_policy,
                clock=self._clock,
                sleep=self._sleep,
                on_retry=self._retries_counter.inc,
            )
        except RetryExhaustedError:
            self.breaker.record_failure()
            self._degraded_counters["optimizer"].inc()
            return None
        self.breaker.record_success()
        self.optimizer_invocations += 1
        plan_id, cost = int(ids[0]), float(costs[0])
        try:
            self._observe(x, plan_id, cost, provenance=reason)
        except Exception:
            # A lost training point degrades learning, never execution.
            self._degraded_counters["predictor_insert"].inc()
        self.cache.put(plan_id, self.plan_space.plan(plan_id))
        return plan_id, cost

    def _fallback_plan(self, prediction) -> tuple[int, str]:
        """The optimizer is unavailable: serve the best plan we hold.

        Preference order: the current prediction if its plan is still
        cached, then the plan served for the previous instance, then
        the most recently used resident plan.  Raises
        :class:`ResilienceError` only when the cache is empty — before
        the first successful optimization there is nothing to serve.
        """
        if prediction is not None and prediction.plan_id in self.cache:
            self.cache.get(prediction.plan_id)
            return prediction.plan_id, "prediction"
        if self._last_plan_id is not None and self._last_plan_id in self.cache:
            self.cache.get(self._last_plan_id)
            return self._last_plan_id, "last_plan"
        recent = self.cache.most_recent()
        if recent is not None:
            return recent, "cache"
        raise ResilienceError(
            f"optimizer unavailable for template "
            f"{self.plan_space.template.name!r} and the plan cache is "
            "empty: no executable plan exists"
        )

    def execute(self, x: np.ndarray) -> ExecutionRecord:
        """Run one query instance through the PPC workflow."""
        trace = self.tracer.begin()
        return self._run(x, trace)

    def execute_batch(self, points: np.ndarray) -> list[ExecutionRecord]:
        """Run a batch of instances, amortizing prediction across it.

        Lockstep-equivalent to calling :meth:`execute` per point —
        bit-for-bit identical records, counters and RNG consumption —
        but the predict stage runs vectorized: the remaining batch tail
        is predicted in one ``predict_batch`` call, and each instance
        then flows through the normal decision path with its prediction
        precomputed.  Any synopsis mutation (optimizer feedback,
        positive feedback, a drift drop) invalidates the precomputed
        tail, which is re-predicted against the updated synopses —
        exactly what the sequential path would have seen.

        Traced instances re-predict through the span-annotating scalar
        path (same numeric core, identical decision), preserving trace
        parity.  Rows the vectorized validation rejects (non-finite
        coordinates) fall back to the scalar path so they raise — or
        degrade — exactly as a sequential ``execute`` would.
        """
        points = np.asarray(points, dtype=float)
        if points.ndim != 2:
            raise PredictionError(
                f"execute_batch expects an (m, "
                f"{self.plan_space.dimensions}) batch, got shape "
                f"{points.shape}"
            )
        records: list[ExecutionRecord] = []
        total = points.shape[0]
        start = 0
        while start < total:
            predictions, amortized = self._prefetch_predictions(
                points[start:]
            )
            version = self.online.mutation_count
            advanced = 0
            for offset, precomputed in enumerate(predictions):
                if offset > 0 and self.online.mutation_count != version:
                    break  # Synopses changed: the tail is stale.
                trace = self.tracer.begin()
                records.append(
                    self._run(
                        points[start + offset],
                        trace,
                        precomputed=precomputed,
                        predict_seconds=amortized,
                    )
                )
                advanced += 1
            start += advanced
        return records

    def _prefetch_predictions(
        self, tail: np.ndarray
    ) -> tuple[list, float]:
        """Vectorized predictions for the remaining batch tail.

        Returns ``(predictions, amortized_seconds)`` where each entry is
        either a precomputed prediction or the ``_RECOMPUTE`` sentinel
        (non-finite rows, or the whole tail when the batch predictor
        itself failed — both then replay the scalar path per point).
        """
        started = perf_counter()
        finite = np.isfinite(tail).all(axis=1)
        predictions: list = [_RECOMPUTE] * tail.shape[0]
        clean = tail[finite] if not finite.all() else tail
        if clean.shape[0]:
            try:
                computed = self._predict_batch(clean)
            except Exception:
                # Degradation accounting happens per point in the
                # scalar fallback, exactly like sequential execution.
                return predictions, 0.0
            for row, prediction in zip(
                np.flatnonzero(finite), computed, strict=True
            ):
                predictions[row] = prediction
        amortized = (perf_counter() - started) / max(1, tail.shape[0])
        return predictions, amortized

    def explain(self, x: np.ndarray) -> DecisionTrace:
        """Run one instance fully traced; returns its decision trace.

        Bypasses the sampler (decision ``forced``) but is otherwise a
        normal execution: the session's state advances exactly as an
        untraced ``execute`` would (sampling consumes no RNG), which is
        what the explain/execute parity test pins down.  The produced
        :class:`ExecutionRecord` is ``self.records[-1]``; its summary
        is the trace's ``outcome``.
        """
        trace = self.tracer.begin(force=True)
        self._run(x, trace)
        return trace

    def _run(
        self,
        x: np.ndarray,
        trace: "DecisionTrace | NoopTrace",
        precomputed=_RECOMPUTE,
        predict_seconds: float = 0.0,
    ) -> ExecutionRecord:
        """Drive one decision, sealing the trace on every exit path."""
        if self._events is not None:
            # Cross-link: lifecycle events emitted while this decision
            # runs carry the active trace seq (None when unsampled).
            self._events.set_trace(getattr(trace, "seq", None))
        try:
            record = self._decide_and_execute(
                x, trace, precomputed=precomputed,
                predict_seconds=predict_seconds,
            )
        except BaseException as exc:
            self.tracer.finish(trace, error=exc)
            raise
        self.tracer.finish(trace, record=record)
        return record

    def _decide_and_execute(
        self,
        x: np.ndarray,
        trace: "DecisionTrace | NoopTrace",
        precomputed=_RECOMPUTE,
        predict_seconds: float = 0.0,
    ) -> ExecutionRecord:
        """The Figure-1 decision flow, annotated onto ``trace``.

        All trace attribute computation hides behind ``trace.active``
        so the unsampled path stays behaviorally and metrically
        identical to the untraced flow — and allocation-free.

        ``precomputed`` (from :meth:`execute_batch`) supplies the
        predict-stage result computed vectorized for the whole batch;
        ``predict_seconds`` is that call's amortized per-instance cost,
        observed into the predict stage timer in place of a wall-clock
        read.  Traced instances ignore the precomputed value and
        re-predict through the span-annotating path (same numeric core,
        identical decision).
        """
        with trace.span("normalize"):
            x = (
                self._validate_point(x)
                if self.config.resilience.validate_points
                else np.asarray(x, dtype=float).reshape(-1)
            )
            if trace.active:
                trace.point = [float(v) for v in x]
                trace.annotate(
                    dimensions=int(x.shape[0]),
                    validated=self.config.resilience.validate_points,
                )
        self._executions_counter.inc()
        invocations_before = self.optimizer_invocations
        # Experimenter-side ground truth; the session only learns it if
        # and when it invokes the optimizer below.
        true_ids, true_costs = self.plan_space.label(x[None, :])
        optimal_plan, optimal_cost = int(true_ids[0]), float(true_costs[0])

        degraded = False
        fallback_source = ""
        use_precomputed = precomputed is not _RECOMPUTE and not trace.active
        stage_start = perf_counter()
        with trace.span("predict") as predict_span:
            if use_precomputed:
                prediction = precomputed
            else:
                try:
                    prediction = (
                        self._predict(x, trace=trace)
                        if trace.active
                        else self._predict(x)
                    )
                except Exception:
                    # A broken predictor degrades to the optimizer path.
                    prediction = None
                    degraded = True
                    self._degraded_counters["predictor"].inc()
                    predict_span.set(
                        degraded=True, status_detail="predictor raised"
                    )
            if trace.active:
                if prediction is None:
                    predict_span.set(plan=None)
                else:
                    predict_span.set(
                        plan=prediction.plan_id,
                        confidence=prediction.confidence,
                        estimated_cost=prediction.estimated_cost,
                    )
        self._stage_timers["predict"].observe(
            predict_seconds if use_precomputed
            else perf_counter() - stage_start
        )

        reason = ""
        if prediction is None:
            reason = "null_prediction"
        elif self.online.should_invoke_optimizer(prediction):
            reason = "exploration"
        elif prediction.plan_id not in self.cache:
            reason = "cache_miss"
        if trace.active:
            # Membership via ``in`` is accounting-free — the real
            # lookup below still owns the hit/miss counters.
            with trace.span("decide") as decide_span:
                decide_span.set(
                    action=reason or "serve_prediction",
                    plan_cached=prediction is not None
                    and prediction.plan_id in self.cache,
                )

        if reason:
            stage_start = perf_counter()
            with trace.span("optimize") as optimize_span:
                if trace.active:
                    optimize_span.set(
                        reason=reason, breaker_before=self.breaker.state
                    )
                retries_before = self._retries_counter.value
                outcome = self._invoke_optimizer(x, reason)
                if trace.active:
                    optimize_span.set(
                        breaker_after=self.breaker.state,
                        retries=int(
                            self._retries_counter.value - retries_before
                        ),
                        available=outcome is not None,
                    )
                    if outcome is not None:
                        optimize_span.set(
                            plan=outcome[0], cost=outcome[1]
                        )
            self._stage_timers["optimize"].observe(
                perf_counter() - stage_start
            )
            if outcome is not None:
                executed_plan, execution_cost = outcome
                if prediction is None:
                    self.monitor.record_null()
                else:
                    self.monitor.record_prediction(
                        prediction.plan_id,
                        prediction.plan_id == executed_plan,
                    )
            else:
                # Optimizer down: answer from the fallback chain.  The
                # estimators see nothing — there is no verified signal.
                degraded = True
                with trace.span("fallback") as fallback_span:
                    executed_plan, fallback_source = self._fallback_plan(
                        prediction
                    )
                    execution_cost = float(
                        self.plan_space.cost_at(x[None, :], executed_plan)[0]
                    )
                    if trace.active:
                        fallback_span.set(
                            source=fallback_source,
                            plan=executed_plan,
                            suboptimality=execution_cost / optimal_cost
                            if optimal_cost > 0.0
                            else 1.0,
                        )
                self._fallback_counters[fallback_source].inc()
                if self._events is not None:
                    self._events(
                        "fallback_served",
                        source=fallback_source,
                        plan=int(executed_plan),
                    )
                self._fallback_suboptimality.observe(
                    execution_cost / optimal_cost
                    if optimal_cost > 0.0
                    else 1.0
                )
        else:
            executed_plan = prediction.plan_id
            self.cache.get(executed_plan)
            with trace.span("execute_plan") as execute_span:
                stage_start = perf_counter()
                execution_cost = float(
                    self.plan_space.cost_at(x[None, :], executed_plan)[0]
                )
                self._stage_timers["execute"].observe(
                    perf_counter() - stage_start
                )
                if trace.active:
                    execute_span.set(plan=executed_plan, cost=execution_cost)
            stage_start = perf_counter()
            with trace.span("feedback") as feedback_span:
                suspect = self.online.suspect_error(
                    prediction, execution_cost
                )
                if trace.active:
                    feedback_span.set(
                        estimated_cost=prediction.estimated_cost,
                        observed_cost=execution_cost,
                        suspect=suspect,
                    )
                if suspect:
                    reason = "negative_feedback"
                    with trace.span("optimize") as verify_span:
                        if trace.active:
                            verify_span.set(
                                reason=reason,
                                breaker_before=self.breaker.state,
                            )
                        outcome = self._invoke_optimizer(x, reason)
                        if trace.active:
                            verify_span.set(
                                breaker_after=self.breaker.state,
                                available=outcome is not None,
                            )
                            if outcome is not None:
                                verify_span.set(
                                    plan=outcome[0], cost=outcome[1]
                                )
                    if outcome is not None:
                        true_plan, __ = outcome
                        self.monitor.record_prediction(
                            prediction.plan_id,
                            prediction.plan_id == true_plan,
                        )
                        if trace.active:
                            feedback_span.set(verified_plan=true_plan)
                    else:
                        # Optimizer down: the suspicion stays
                        # unverified; the executed plan stands and the
                        # estimators see nothing.
                        degraded = True
                        if trace.active:
                            feedback_span.set(verified=False)
                else:
                    # No ground truth available: the cost estimator
                    # believes the prediction, and the estimators record
                    # that belief.
                    self.monitor.record_prediction(prediction.plan_id, True)
                    # Trusted execution: optionally offer the point as
                    # positive feedback (discounted + capped by the
                    # policy).
                    try:
                        inserted = self.online.observe_unverified(
                            x, prediction, execution_cost
                        )
                    except Exception:
                        inserted = False
                        degraded = True
                        self._degraded_counters["predictor_insert"].inc()
                    if self.online.positive_feedback is not None:
                        outcome_label = "accepted" if inserted else "rejected"
                        self._feedback_counters[outcome_label].inc()
                        if trace.active:
                            feedback_span.set(
                                positive_feedback=outcome_label
                            )
            self._stage_timers["feedback"].observe(
                perf_counter() - stage_start
            )

        if reason:
            self._reason_counters[reason].inc()

        drift = False
        if self.config.drift_response and self.monitor.drift_detected():
            drift = True
            self.drift_events += 1
            self._drift_counter.inc()
            with trace.span("drift") as drift_span:
                if self._events is not None:
                    # Journal the pre-drop picture: the monitor scores
                    # that tripped the response and what it wiped out.
                    self._events(
                        "drift_drop",
                        precision=float(self.monitor.precision_estimate),
                        recall=float(self.monitor.recall_estimate),
                        cached_plans=len(self.cache),
                        points_held=int(self.online.sample_count),
                    )
                self.online.drop()
                self.monitor.reset()
                self.cache.clear()
                if trace.active:
                    drift_span.set(
                        response=["drop_synopses", "reset_monitor", "clear_cache"]
                    )

        record = ExecutionRecord(
            template=self.plan_space.template.name,
            point=x,
            predicted=None if prediction is None else prediction.plan_id,
            confidence=0.0 if prediction is None else prediction.confidence,
            optimizer_invoked=self.optimizer_invocations
            > invocations_before,
            invocation_reason=reason,
            executed_plan=executed_plan,
            execution_cost=execution_cost,
            optimal_plan=optimal_plan,
            optimal_cost=optimal_cost,
            drift_triggered=drift,
            degraded=degraded,
            fallback_source=fallback_source,
        )
        self._last_plan_id = executed_plan
        self.records.append(record)
        self._regret_counter.inc(max(0.0, record.suboptimality - 1.0))
        return record

    # ------------------------------------------------------------------
    # Experimenter-side accounting
    # ------------------------------------------------------------------
    def ground_truth_metrics(self) -> PrecisionRecall:
        """True precision/recall of all predictions so far."""
        return summarize(
            PredictionOutcome(r.predicted, r.optimal_plan)
            for r in self.records
        )


class PPCFramework:
    """Multi-template facade: one session per query template.

    With ``memory_budget_bytes`` set, a
    :class:`~repro.core.governor.MemoryGovernor` keeps the combined
    synopsis footprint of all sessions under the budget, reclaiming
    from the coldest templates first (enforced every
    ``governor_interval`` executions).

    Each registered template receives an independently seeded random
    stream spawned from the framework seed (via
    :class:`numpy.random.SeedSequence`), so templates never share LSH
    transform ensembles or correlated exploration coin-flips, while the
    whole multi-template run stays reproducible from one seed.
    """

    def __init__(
        self,
        config: "PPCConfig | None" = None,
        seed: "int | np.random.Generator | None" = 0,
        memory_budget_bytes: "int | None" = None,
        governor_interval: int = 32,
        metrics: "MetricsRegistry | None" = None,
        fault_injector: "FaultInjector | None" = None,
        clock: "Callable[[], float] | None" = None,
        sleep: "Callable[[float], None] | None" = None,
    ) -> None:
        self.config = config or PPCConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.fault_injector = fault_injector
        self._clock = clock
        self._sleep = sleep
        if isinstance(seed, np.random.Generator):
            self._seed_root: "np.random.Generator | np.random.SeedSequence" = (
                seed
            )
        else:
            self._seed_root = np.random.SeedSequence(seed)
        self.sessions: dict[str, TemplateSession] = {}
        # One shared stage profiler, so report()/collapsed() aggregate
        # across every template of the deployment.  Disabled → None:
        # the tracer seam stays exactly as it was without the feature.
        self.profiler: "StageProfiler | None" = (
            StageProfiler(self.config.profiling)
            if self.config.profiling.enabled
            else None
        )
        # One shared lifecycle event journal, so sequence numbers give
        # a total order across every template of the deployment (the
        # merge story sharded serving will need).  Disabled → None: no
        # session or predictor holds an emitter.
        self.events: "EventJournal | None" = (
            EventJournal(
                self.config.events,
                clock=clock if clock is not None else system_clock,
            )
            if self.config.events.enabled
            else None
        )
        if self.events is not None:
            self.events.bind_metrics(self.metrics)
        # Build identity: constant 1-valued gauge carrying version and
        # commit labels, so every scrape (and every merged fleet
        # registry) says exactly what code produced it.
        self.metrics.gauge(
            metric_names.BUILD_INFO, version=VERSION, commit=commit_id()
        ).set(1.0)
        self.governor = None
        if memory_budget_bytes is not None:
            from repro.core.governor import MemoryGovernor

            self.governor = MemoryGovernor(
                memory_budget_bytes, metrics=self.metrics
            )
        self.governor_interval = governor_interval
        self._executions = 0

        # Windowed telemetry: time-series sampler + SLO burn-rate
        # engine, both on the injected clock.  Disabled, they cost
        # nothing — not even the per-execute clock read.
        telemetry_config = self.config.telemetry
        self.telemetry: "TimeSeriesStore | None" = None
        self.slo_engine: "SLOEngine | None" = None
        if telemetry_config.enabled:
            self.telemetry = TimeSeriesStore(
                self.metrics,
                clock=clock if clock is not None else system_clock,
                capacity=telemetry_config.series_capacity,
                interval=telemetry_config.sample_interval,
            )
            self.slo_engine = SLOEngine(
                self.telemetry, telemetry_config.slos, self.metrics
            )

    def _spawn_seed(self) -> np.random.Generator:
        """An independent per-template stream off the framework seed."""
        child = self._seed_root.spawn(1)[0]
        if isinstance(child, np.random.Generator):
            return child
        return np.random.default_rng(child)

    def register(self, plan_space: PlanSpace) -> TemplateSession:
        """Start plan caching for a template."""
        session = TemplateSession(
            plan_space,
            self.config,
            self._spawn_seed(),
            metrics=self.metrics,
            fault_injector=self.fault_injector,
            clock=self._clock,
            sleep=self._sleep,
            profiler=self.profiler,
            events=self.events,
        )
        self.sessions[plan_space.template.name] = session
        if self.governor is not None:
            self.governor.register(session)
        return session

    def session(self, template_name: str) -> TemplateSession:
        return self.sessions[template_name]

    def execute(self, template_name: str, x: np.ndarray) -> ExecutionRecord:
        """Run one instance of a registered template."""
        record = self.sessions[template_name].execute(x)
        if self.governor is not None:
            self.governor.touch(template_name)
            self._executions += 1
            if self._executions % self.governor_interval == 0:
                self.governor.enforce()
        self._telemetry_tick()
        return record

    def execute_batch(
        self, template_name: str, points: np.ndarray
    ) -> list[ExecutionRecord]:
        """Run a batch of instances of one template.

        Without a memory governor this is the vectorized session batch
        path plus one telemetry tick per record — lockstep-identical to
        sequential :meth:`execute` calls.  With a governor, reclamation
        must interleave between instances at exactly the configured
        cadence (and governor shrinks mutate synopses behind the
        predictor's mutation counter), so the batch falls back to the
        sequential path rather than drift from it.
        """
        if self.governor is not None:
            points = np.asarray(points, dtype=float)
            return [
                self.execute(template_name, points[i])
                for i in range(points.shape[0])
            ]
        records = self.sessions[template_name].execute_batch(points)
        for __ in records:
            self._telemetry_tick()
        return records

    def explain(self, template_name: str, x: np.ndarray) -> DecisionTrace:
        """Run one instance fully traced and return its decision trace."""
        trace = self.sessions[template_name].explain(x)
        if self.governor is not None:
            self.governor.touch(template_name)
            self._executions += 1
            if self._executions % self.governor_interval == 0:
                self.governor.enforce()
        self._telemetry_tick()
        return trace

    def _telemetry_tick(self) -> None:
        """Post-execution telemetry hook: one clock read when idle.

        When the sample interval elapsed, snapshots every metric into
        the ring series; every ``quality_every``-th snapshot also
        refreshes the per-template scorecard gauges (the synopsis scan,
        deliberately the rarest step).  Strictly read-only over session
        state — the lockstep parity test pins that down.
        """
        if self.telemetry is None:
            return
        if not self.telemetry.maybe_sample():
            return
        config = self.config.telemetry
        if self.telemetry.sample_count % config.quality_every == 0:
            self.refresh_quality()

    def refresh_quality(self) -> "dict[str, dict]":
        """Recompute every session's scorecard gauges; scorecards by
        template."""
        return {
            name: export_quality_gauges(
                session,
                self.metrics,
                probes=self.config.telemetry.quality_probes,
                window=self.config.telemetry.quality_window,
            )
            for name, session in self.sessions.items()
        }

    def profile_report(self) -> "dict | None":
        """Aggregated stage-profiler report, or ``None`` when disabled."""
        if self.profiler is None:
            return None
        return self.profiler.report()

    def lineage(self) -> "LineageEngine | None":
        """A lineage engine over the shared lifecycle journal, or
        ``None`` when the event journal is disabled."""
        if self.events is None:
            return None
        from repro.obs.lineage import LineageEngine

        return LineageEngine(self.events.events())

    @property
    def clock_source(self) -> str:
        """Which clock times the resilience machinery (not wall-clock
        by contract — tests and storms inject a ``VirtualClock``)."""
        if self._clock is None:
            return "repro.resilience.clocks.system_clock"
        name = getattr(self._clock, "__qualname__", None)
        if name is None:
            name = type(self._clock).__name__
        return name

    @property
    def optimizer_invocations(self) -> int:
        return sum(s.optimizer_invocations for s in self.sessions.values())

    @property
    def space_bytes(self) -> int:
        """Combined synopsis footprint of all sessions."""
        return sum(
            s.online.space_bytes() for s in self.sessions.values()
        )
