"""Database-histogram substrate.

The paper stores plan-space synopses inside "standard database
histograms" (Section IV-C): unidimensional structures holding, per
bucket, a boundary, a point count and an average plan cost.  This
package provides the histogram family used throughout the library:

* :class:`~repro.histograms.equiwidth.EquiWidthHistogram` — fixed-width
  buckets (the weakest construction; used as an ablation baseline).
* :class:`~repro.histograms.equidepth.EquiDepthHistogram` — quantile
  buckets (equal mass).
* :class:`~repro.histograms.maxdiff.MaxDiffHistogram` — boundaries placed
  at the largest gaps in the sorted data, the "choose boundaries to
  minimize estimation error" construction the paper relies on.
* :class:`~repro.histograms.voptimal.VOptimalHistogram` — exact
  variance-optimal boundaries by dynamic programming (the optimum that
  MaxDiff approximates).
* :class:`~repro.histograms.incremental.IncrementalHistogram` — an
  online-insertable bounded-bucket histogram (merge-on-overflow) backing
  the ONLINE-APPROXIMATE-LSH-HISTOGRAMS predictor.
"""

from repro.histograms.base import Bucket, Histogram
from repro.histograms.equidepth import EquiDepthHistogram
from repro.histograms.equiwidth import EquiWidthHistogram
from repro.histograms.incremental import IncrementalHistogram
from repro.histograms.maxdiff import MaxDiffHistogram
from repro.histograms.voptimal import VOptimalHistogram

__all__ = [
    "Bucket",
    "Histogram",
    "EquiWidthHistogram",
    "EquiDepthHistogram",
    "MaxDiffHistogram",
    "VOptimalHistogram",
    "IncrementalHistogram",
]
