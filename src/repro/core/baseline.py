"""BASELINE: exact density-based plan prediction (Algorithm 1).

Stores the entire sample pool.  For a test point, counts the sample
points of each plan within radius ``d`` and applies the confidence
sanity check: predict the majority plan iff ``sin(theta(ratio))``
exceeds the confidence threshold ``gamma``.  Exact but expensive —
``O(|X|)`` per prediction and ``O(|X|)`` space — which is exactly why
Section IV develops the approximations.
"""

from __future__ import annotations

import numpy as np

from repro.core.confidence import ConfidenceModel
from repro.core.point import SamplePool
from repro.core.predictor import PlanPredictor, Prediction
from repro.exceptions import PredictionError

#: Bytes per stored sample: r float32 coordinates + plan id + cost.
def _bytes_per_point(dimensions: int) -> int:
    return 4 * dimensions + 8


class BaselinePredictor(PlanPredictor):
    """Algorithm 1 over a fixed sample pool."""

    def __init__(
        self,
        pool: SamplePool,
        radius: float = 0.05,
        confidence_threshold: float = 0.7,
        confidence_model: "ConfidenceModel | None" = None,
    ) -> None:
        if len(pool) == 0:
            raise PredictionError("BASELINE needs a non-empty sample pool")
        if radius <= 0.0:
            raise PredictionError("radius must be > 0")
        if not 0.0 <= confidence_threshold <= 1.0:
            raise PredictionError("confidence threshold must be in [0, 1]")
        self.dimensions = pool.dimensions
        self.radius = radius
        self.confidence_threshold = confidence_threshold
        self.model = confidence_model or ConfidenceModel()
        self._coords = pool.coords
        self._plan_ids = pool.plan_ids
        self._costs = pool.costs
        self._plan_count = int(self._plan_ids.max()) + 1

    def neighborhood_counts(self, x: np.ndarray) -> np.ndarray:
        """Per-plan sample counts within the query ball (lines 1-5)."""
        x = self._check_point(x)
        distances = np.linalg.norm(self._coords - x, axis=1)
        inside = distances <= self.radius
        return np.bincount(
            self._plan_ids[inside], minlength=self._plan_count
        ).astype(float)

    def predict(self, x: np.ndarray) -> "Prediction | None":
        counts = self.neighborhood_counts(x)
        plan_id, confidence = self.model.decide(
            counts, self.confidence_threshold
        )
        if plan_id is None:
            return None
        estimated_cost = self._neighborhood_cost(x, plan_id)
        return Prediction(plan_id, confidence, estimated_cost)

    def _neighborhood_cost(self, x: np.ndarray, plan_id: int) -> "float | None":
        """Average recorded cost of the plan's samples inside the ball."""
        distances = np.linalg.norm(self._coords - x, axis=1)
        mask = (distances <= self.radius) & (self._plan_ids == plan_id)
        if not mask.any():
            return None
        return float(self._costs[mask].mean())

    def predict_batch(
        self, points: np.ndarray, chunk_size: int = 256
    ) -> "list[Prediction | None]":
        """Vectorized Algorithm 1 over a point batch.

        Chunked distance matrices keep memory bounded; per-plan counts
        come from one matrix product against a plan one-hot matrix, and
        the confidence decisions run vectorized.  Results are identical
        to per-point :meth:`predict`.  Shares the batch contract of
        :meth:`PlanPredictor.predict_batch`: ``(0, r)`` returns ``[]``,
        a ``(0,)`` vector is a shape error, non-finite rows raise.
        """
        points = self._check_batch(points)
        onehot = np.zeros((self._coords.shape[0], self._plan_count))
        onehot[np.arange(self._coords.shape[0]), self._plan_ids] = 1.0
        cost_onehot = onehot * self._costs[:, None]

        predictions: "list[Prediction | None]" = []
        for start in range(0, points.shape[0], chunk_size):
            block = points[start : start + chunk_size]
            distances = np.linalg.norm(
                block[:, None, :] - self._coords[None, :, :], axis=2
            )
            inside = (distances <= self.radius).astype(float)
            counts = inside @ onehot  # (m, plans)
            cost_sums = inside @ cost_onehot
            winners, confidences = self.model.decide_batch(
                counts, self.confidence_threshold
            )
            for j in range(block.shape[0]):
                plan_id = int(winners[j])
                if plan_id < 0:
                    predictions.append(None)
                    continue
                count = counts[j, plan_id]
                cost = (
                    float(cost_sums[j, plan_id] / count)
                    if count > 0
                    else None
                )
                predictions.append(
                    Prediction(plan_id, float(confidences[j]), cost)
                )
        return predictions

    def space_bytes(self) -> int:
        return self._coords.shape[0] * _bytes_per_point(self.dimensions)
