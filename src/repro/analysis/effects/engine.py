"""Whole-program effect analysis: call graph + transitive signatures.

The per-file rules (RPR001–RPR009) prove properties of single modules;
this engine proves properties of *paths*.  It parses every project
file once (reusing :class:`~repro.analysis.core.ModuleContext` for
import-alias resolution), builds the project call graph, infers a
local effect signature per function from AST facts plus the
numpy/stdlib stub table (:mod:`repro.analysis.effects.stubs`), and
propagates signatures transitively to a fixpoint.  The RPR1xx rules
(:mod:`repro.analysis.effects.rules`) are queries over the result,
each carrying a *witness* — the exact call chain from a root to the
offending site.

The effect lattice (a powerset; join is set union):

``rng``
    unseeded / global-state randomness (RPR001's set, plus OS entropy)
``clock``
    raw wall-clock reads or sleeps (RPR002's set; ``perf_counter``
    and the injected ``system_clock``/``system_sleep`` aliases are
    effect-free by design)
``fs`` / ``net``
    filesystem and network I/O
``alloc``
    fresh-array allocation (report-only; surfaced in ``--graph-out``)
``mutates_shared``
    attribute stores rooted at a parameter or module global — writes
    to state the function does not own

Self-mutation (``self.x = ...``) and the raised-exception set are
tracked separately: self-mutation propagates only through intra-class
calls (RPR103), and raises propagate per call site *minus* the
exceptions the enclosing ``try`` provably catches (RPR104).

Everything here is static and optimistic: dynamic dispatch through
containers, ``getattr``, and unknown externals contribute no effect.
The per-file rules remain the backstop for what a call graph cannot
see.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from collections.abc import Iterable

from repro.analysis.core import ModuleContext, _module_name
from repro.analysis.effects import stubs

#: Effects a function summary can carry (stable display order).
EFFECT_ORDER = ("rng", "clock", "fs", "net", "alloc", "mutates_shared")

#: Catching one of these catches everything.
_CATCH_ALL = frozenset({"Exception", "BaseException"})

#: Upper bound on re-export chase depth (cycle backstop).
_MAX_CHASE = 16


@dataclass
class EffectSite:
    """One local effect with its anchor (for witnesses and findings)."""

    effect: str
    lineno: int
    end_lineno: int
    detail: str


@dataclass
class RaiseSite:
    """One ``raise <Name>(...)`` statement, with the exceptions the
    enclosing ``try`` blocks would catch before it escapes."""

    name: str
    lineno: int
    end_lineno: int
    caught: frozenset = frozenset()
    catches_all: bool = False


@dataclass
class CallSite:
    """One call expression and its enclosing-``try`` catch mask."""

    raw: "str | None"
    lineno: int
    end_lineno: int
    caught: frozenset = frozenset()
    catches_all: bool = False
    argless: bool = False
    #: Project qualname after global resolution (None = external or
    #: dynamic).
    resolved: "str | None" = None


@dataclass
class FunctionInfo:
    """Per-function facts plus the propagated summaries."""

    qualname: str
    module: str
    cls: "str | None"
    name: str
    path: str
    lineno: int
    is_public: bool
    effect_sites: "list[EffectSite]" = field(default_factory=list)
    raise_sites: "list[RaiseSite]" = field(default_factory=list)
    calls: "list[CallSite]" = field(default_factory=list)
    #: ``self.<attr>`` roots written by assignment/augassign/delete.
    self_writes: set = field(default_factory=set)
    #: ``self.<attr>`` roots mutated via in-place methods/functions
    #: (directly or through a local alias).
    self_mutated: set = field(default_factory=set)
    #: Transitive effect summary (fixpoint output).
    effects: set = field(default_factory=set)
    #: Transitive escaping-exception summary (fixpoint output).
    raises: set = field(default_factory=set)

    @property
    def display(self) -> str:
        """Short human name: ``Class.method`` or ``function``."""
        return f"{self.cls}.{self.name}" if self.cls else self.name


@dataclass
class ClassInfo:
    name: str
    module: str
    qualname: str
    #: Raw dotted base names (per-module resolution; chased globally).
    bases: "list[str]" = field(default_factory=list)
    methods: set = field(default_factory=set)
    is_public: bool = True


@dataclass
class ModuleInfo:
    name: str
    path: str
    ctx: ModuleContext


class Project:
    """The parsed project: modules, functions, classes, hierarchies."""

    def __init__(self) -> None:
        self.modules: "dict[str, ModuleInfo]" = {}
        self.functions: "dict[str, FunctionInfo]" = {}
        self.classes: "dict[str, ClassInfo]" = {}
        #: Leaf names of exception classes descending from ReproError.
        self.repro_exceptions: set = set()
        #: leaf exception name -> descendant leaf names (project-known).
        self._exception_children: "dict[str, set]" = {}
        self.errors: "list[str]" = []

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def expand_caught(self, names: Iterable[str]) -> set:
        """A catch set closed over the project exception hierarchy:
        catching ``ReproError`` catches every project exception."""
        expanded: set = set()
        for name in names:
            expanded.add(name)
            expanded |= self._exception_children.get(name, set())
        return expanded

    def functions_in(self, *prefixes: str) -> "list[FunctionInfo]":
        return [
            info
            for info in self.functions.values()
            if any(
                info.module == p or info.module.startswith(p + ".")
                for p in prefixes
            )
        ]

    def suppressed(self, info: FunctionInfo, rule: str, lineno: int,
                   end_lineno: int) -> bool:
        """Range-aware ``# repro: noqa[...]`` check at a finding site."""
        ctx = self.modules[info.module].ctx
        return any(
            ctx.suppressed(line, rule)
            for line in range(lineno, max(lineno, end_lineno) + 1)
        )

    def reachable(
        self, roots: Iterable[str]
    ) -> "dict[str, tuple[str | None, CallSite | None]]":
        """BFS over resolved call edges; returns parent pointers
        (``qualname -> (caller qualname, call site)``) for witness
        reconstruction.  Roots map to ``(None, None)``."""
        parents: dict = {}
        queue: list = []
        for root in roots:
            if root in self.functions and root not in parents:
                parents[root] = (None, None)
                queue.append(root)
        while queue:
            current = queue.pop(0)
            for site in self.functions[current].calls:
                callee = site.resolved
                if callee in self.functions and callee not in parents:
                    parents[callee] = (current, site)
                    queue.append(callee)
        return parents

    def witness(
        self,
        parents: "dict[str, tuple[str | None, CallSite | None]]",
        sink: str,
    ) -> str:
        """Render ``root -> ... -> sink`` with per-hop call lines."""
        hops: "list[str]" = []
        current: "str | None" = sink
        while current is not None:
            info = self.functions[current]
            parent, site = parents[current]
            label = info.display
            if site is not None and parent is not None:
                caller = self.functions[parent]
                label += f" ({caller.path}:{site.lineno})"
            hops.append(label)
            current = parent
        return " -> ".join(reversed(hops))

    def raise_reachable(
        self, roots: Iterable[str], exc_name: str
    ) -> "dict[str, tuple[str | None, CallSite | None]]":
        """Like :meth:`reachable`, but only along edges where
        ``exc_name`` escapes the call site's catch mask."""
        parents: dict = {}
        queue: list = []
        for root in roots:
            if root in self.functions and root not in parents:
                parents[root] = (None, None)
                queue.append(root)
        while queue:
            current = queue.pop(0)
            for site in self.functions[current].calls:
                callee = site.resolved
                if callee not in self.functions or callee in parents:
                    continue
                if site.catches_all:
                    continue
                if exc_name in self.expand_caught(site.caught):
                    continue
                parents[callee] = (current, site)
                queue.append(callee)
        return parents

    # ------------------------------------------------------------------
    # Graph export
    # ------------------------------------------------------------------
    def graph_as_dict(self) -> dict:
        """JSON-ready call graph with per-function effect signatures."""
        nodes = []
        edges = []
        for qualname in sorted(self.functions):
            info = self.functions[qualname]
            nodes.append(
                {
                    "qualname": qualname,
                    "module": info.module,
                    "path": info.path,
                    "line": info.lineno,
                    "public": info.is_public,
                    "effects": sorted(info.effects),
                    "raises": sorted(info.raises),
                    "local_effects": sorted(
                        {site.effect for site in info.effect_sites}
                    ),
                    "mutates_self": sorted(
                        info.self_writes | info.self_mutated
                    ),
                }
            )
            for site in info.calls:
                if site.resolved is not None:
                    edges.append(
                        {
                            "caller": qualname,
                            "callee": site.resolved,
                            "line": site.lineno,
                        }
                    )
        return {
            "functions": nodes,
            "calls": edges,
            "modules": sorted(self.modules),
            "errors": list(self.errors),
        }

    def graph_as_dot(self) -> str:
        """Graphviz form of the resolved call graph; effectful nodes
        carry their summary in the label."""
        lines = ["digraph effects {", "  rankdir=LR;", "  node [shape=box];"]
        for qualname in sorted(self.functions):
            info = self.functions[qualname]
            label = qualname
            if info.effects:
                label += "\\n[" + ",".join(sorted(info.effects)) + "]"
            lines.append(f'  "{qualname}" [label="{label}"];')
        for qualname in sorted(self.functions):
            for site in self.functions[qualname].calls:
                if site.resolved is not None:
                    lines.append(f'  "{qualname}" -> "{site.resolved}";')
        lines.append("}")
        return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Local extraction
# ----------------------------------------------------------------------
def _attr_root(node: ast.AST) -> "tuple[str, str] | None":
    """``(base name, first attribute)`` of a chain like
    ``self._counts[i]`` / ``self.a.b`` — the owner-rooted attribute an
    assignment or mutator call touches."""
    attrs: "list[str]" = []
    while True:
        if isinstance(node, (ast.Subscript, ast.Starred)):
            node = node.value
        elif isinstance(node, ast.Attribute):
            attrs.append(node.attr)
            node = node.value
        else:
            break
    if isinstance(node, ast.Name) and attrs:
        return node.id, attrs[-1]
    return None


def _self_attr_reads(node: ast.AST) -> set:
    """Attribute names read as ``self.<attr>`` anywhere in a subtree."""
    reads: set = set()
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Attribute)
            and isinstance(sub.value, ast.Name)
            and sub.value.id == "self"
        ):
            reads.add(sub.attr)
    return reads


def _names_in(node: ast.AST) -> set:
    return {
        sub.id for sub in ast.walk(node) if isinstance(sub, ast.Name)
    }


def _bound_names(target: ast.AST) -> set:
    """Plain local names bound by an assignment/loop target."""
    names: set = set()
    for sub in ast.walk(target):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
    return names


class _FunctionExtractor(ast.NodeVisitor):
    """Collects local facts for one function body.

    Nested ``def``/``lambda`` bodies are folded into the enclosing
    function (conservative: a defined-but-unused closure still charges
    its effects; precise closure tracking buys nothing here).
    """

    def __init__(self, ctx: ModuleContext, info: FunctionInfo) -> None:
        self.ctx = ctx
        self.info = info
        #: Stack of (caught frozenset, catches_all) for enclosing
        #: try-bodies.
        self._try_stack: "list[tuple[frozenset, bool]]" = []

    # -- catch-mask plumbing -------------------------------------------
    def _mask(self) -> "tuple[frozenset, bool]":
        caught: set = set()
        catches_all = False
        for names, all_ in self._try_stack:
            caught |= names
            catches_all = catches_all or all_
        return frozenset(caught), catches_all

    def visit_Try(self, node: ast.Try) -> None:
        caught: set = set()
        catches_all = False
        for handler in node.handlers:
            if handler.type is None:
                catches_all = True
                continue
            types = (
                handler.type.elts
                if isinstance(handler.type, ast.Tuple)
                else [handler.type]
            )
            for item in types:
                dotted = self.ctx.resolve(item)
                if dotted is None:
                    continue
                leaf = dotted.rsplit(".", 1)[-1]
                if leaf in _CATCH_ALL:
                    catches_all = True
                else:
                    caught.add(leaf)
        self._try_stack.append((frozenset(caught), catches_all))
        for statement in node.body:
            self.visit(statement)
        self._try_stack.pop()
        # Handlers, else and finally run outside this try's protection.
        for handler in node.handlers:
            for statement in handler.body:
                self.visit(statement)
        for statement in node.orelse + node.finalbody:
            self.visit(statement)

    visit_TryStar = visit_Try

    # -- raises --------------------------------------------------------
    def visit_Raise(self, node: ast.Raise) -> None:
        exc = node.exc
        is_call = isinstance(exc, ast.Call)
        if is_call:
            exc = exc.func
        if exc is not None:
            dotted = self.ctx.resolve(exc)
            if dotted is not None:
                leaf = dotted.rsplit(".", 1)[-1]
                # `raise SomeError(...)` and `raise SomeError` name a
                # class; `raise primary_error` re-raises a local holding
                # an instance — dynamic, not modeled (like bare `raise`).
                # Exception classes are CapWords by convention (PEP 8),
                # so a lowercase leaf on a non-call raise is a variable.
                if is_call or leaf[:1].isupper():
                    caught, catches_all = self._mask()
                    self.info.raise_sites.append(
                        RaiseSite(
                            name=leaf,
                            lineno=node.lineno,
                            end_lineno=node.end_lineno or node.lineno,
                            caught=caught,
                            catches_all=catches_all,
                        )
                    )
        self.generic_visit(node)

    # -- calls ---------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        raw = self.ctx.resolve(node.func)
        if raw is None and isinstance(node.func, ast.Attribute):
            # Unresolved receiver: keep the method name so the stub
            # table's pathlib-style heuristics can still classify it.
            raw = f"?.{node.func.attr}"
        caught, catches_all = self._mask()
        self.info.calls.append(
            CallSite(
                raw=raw,
                lineno=node.lineno,
                end_lineno=node.end_lineno or node.lineno,
                caught=caught,
                catches_all=catches_all,
                argless=not node.args and not node.keywords,
            )
        )
        # In-place mutators taking the target as first argument
        # (np.add.at(self._counts[i], ...)).
        if raw in stubs.INPLACE_FUNCTIONS and node.args:
            reads = _self_attr_reads(node.args[0])
            self.info.self_mutated |= reads
        # Receiver-mutating method calls on self-rooted chains
        # (self._histograms.append(...)); alias-tainted locals are
        # handled in the post-pass.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in stubs.MUTATOR_METHODS
        ):
            root = _attr_root(node.func.value)
            if root is not None and root[0] == "self":
                self.info.self_mutated.add(root[1])
        self.generic_visit(node)

    # -- state writes --------------------------------------------------
    def _record_write_targets(self, targets: "list[ast.AST]") -> None:
        for target in targets:
            root = _attr_root(target)
            if root is None:
                continue
            base, attr = root
            if base == "self":
                self.info.self_writes.add(attr)
            elif base not in ("cls",):
                site_detail = f"write to {base}.{attr}"
                # Writes rooted at locals are ownership-neutral; only
                # parameter/global roots count as shared mutation.
                if base in self._owned_locals:
                    continue
                self.info.effect_sites.append(
                    EffectSite(
                        effect="mutates_shared",
                        lineno=target.lineno,
                        end_lineno=target.end_lineno or target.lineno,
                        detail=site_detail,
                    )
                )

    def visit_Assign(self, node: ast.Assign) -> None:
        self._record_write_targets(list(node.targets))
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_write_targets([node.target])
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_write_targets([node.target])
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        self._record_write_targets(list(node.targets))
        self.generic_visit(node)

    # Populated before the walk: names the function owns (locals).
    _owned_locals: set = frozenset()


def _collect_locals(body: "list[ast.stmt]") -> set:
    """Names bound inside the function body (assignments, loops,
    withs, comprehension-free approximation)."""
    owned: set = set()
    for statement in body:
        for node in ast.walk(statement):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    owned |= _bound_names(target)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                owned |= _bound_names(node.target)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                owned |= _bound_names(node.target)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        owned |= _bound_names(item.optional_vars)
            elif isinstance(node, ast.comprehension):
                owned |= _bound_names(node.target)
    return owned


def _alias_taint(node_body: "list[ast.stmt]", info: FunctionInfo) -> None:
    """Track locals aliasing ``self.<attr>`` state and fold mutator
    calls on them back into ``self_mutated``.

    This is what proves ``HistogramPredictor.insert`` mutates the
    synopsis: the histograms are pulled into a local list before
    ``histogram.insert(...)`` runs on loop variables.
    """
    taint: "dict[str, set]" = {}
    for _ in range(8):  # fixpoint over chained aliases, small bound
        changed = False
        for statement in node_body:
            for node in ast.walk(statement):
                value = None
                targets: "list[ast.AST]" = []
                if isinstance(node, ast.Assign):
                    value, targets = node.value, list(node.targets)
                elif isinstance(node, ast.AnnAssign) and node.value:
                    value, targets = node.value, [node.target]
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    value, targets = node.iter, [node.target]
                if value is None:
                    continue
                attrs = _self_attr_reads(value)
                for name in _names_in(value) & set(taint):
                    attrs = attrs | taint[name]
                if not attrs:
                    continue
                for target in targets:
                    for name in _bound_names(target):
                        if attrs - taint.get(name, set()):
                            taint[name] = taint.get(name, set()) | attrs
                            changed = True
        if not changed:
            break
    if not taint:
        return
    for statement in node_body:
        for node in ast.walk(statement):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in stubs.MUTATOR_METHODS
            ):
                continue
            root = _attr_root(node.func.value)
            if root is not None and root[0] in taint:
                info.self_mutated |= taint[root[0]]


# ----------------------------------------------------------------------
# Project construction
# ----------------------------------------------------------------------
def _extract_module(project: Project, ctx: ModuleContext) -> None:
    module = ModuleInfo(name=ctx.module, path=ctx.path, ctx=ctx)
    project.modules[ctx.module] = module

    def register(node, cls_name, cls_public=True):
        public = node.name == "__init__" or not node.name.startswith("_")
        qualname = (
            f"{ctx.module}.{cls_name}.{node.name}"
            if cls_name
            else f"{ctx.module}.{node.name}"
        )
        info = FunctionInfo(
            qualname=qualname,
            module=ctx.module,
            cls=cls_name,
            name=node.name,
            path=ctx.path,
            lineno=node.lineno,
            is_public=public and cls_public,
        )
        extractor = _FunctionExtractor(ctx, info)
        extractor._owned_locals = _collect_locals(node.body)
        for statement in node.body:
            extractor.visit(statement)
        _alias_taint(node.body, info)
        project.functions[qualname] = info
        return info

    for node in ctx.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            register(node, None)
        elif isinstance(node, ast.ClassDef):
            qualname = f"{ctx.module}.{node.name}"
            cls = ClassInfo(
                name=node.name,
                module=ctx.module,
                qualname=qualname,
                bases=[
                    dotted
                    for base in node.bases
                    if (dotted := ctx.resolve(base)) is not None
                ],
                is_public=not node.name.startswith("_"),
            )
            project.classes[qualname] = cls
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    register(item, node.name, cls.is_public)
                    cls.methods.add(item.name)


def _chase_export(project: Project, dotted: str) -> str:
    """Follow ``from m import x as y`` re-export chains across project
    modules until the name lands on a real definition (or leaves the
    project)."""
    seen: set = set()
    for _ in range(_MAX_CHASE):
        if dotted in project.functions or dotted in project.classes:
            return dotted
        if dotted in seen:
            return dotted
        seen.add(dotted)
        parts = dotted.split(".")
        stepped = False
        # Longest project-module prefix owning the next attribute.
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            module = project.modules.get(prefix)
            if module is None:
                continue
            leaf = parts[cut]
            rest = parts[cut + 1 :]
            target = module.ctx.imported_names.get(
                leaf, module.ctx.module_aliases.get(leaf)
            )
            if target is None:
                return dotted
            dotted = ".".join([target, *rest])
            stepped = True
            break
        if not stepped:
            return dotted
    return dotted


def _resolve_class(project: Project, module: str, dotted: str) -> "str | None":
    """Class qualname for a raw dotted/bare base-class reference."""
    for candidate in (dotted, f"{module}.{dotted}"):
        chased = _chase_export(project, candidate)
        if chased in project.classes:
            return chased
    return None


def _method_lookup(
    project: Project, cls_qualname: str, method: str
) -> "str | None":
    """Find ``method`` on a class or its (project-visible) bases."""
    seen: set = set()
    stack = [cls_qualname]
    while stack:
        current = stack.pop(0)
        if current in seen or current not in project.classes:
            continue
        seen.add(current)
        cls = project.classes[current]
        if method in cls.methods:
            return f"{current}.{method}"
        for base in cls.bases:
            resolved = _resolve_class(project, cls.module, base)
            if resolved is not None:
                stack.append(resolved)
    return None


def _resolve_calls(project: Project) -> None:
    for info in project.functions.values():
        module = project.modules[info.module]
        for site in info.calls:
            raw = site.raw
            if raw is None:
                continue
            if raw.startswith("?."):
                method = raw[2:]
                if method in stubs.FS_METHODS:
                    info.effect_sites.append(
                        EffectSite(
                            effect="fs",
                            lineno=site.lineno,
                            end_lineno=site.end_lineno,
                            detail=f".{method}() (pathlib-style I/O)",
                        )
                    )
                continue
            root = raw.split(".", 1)
            if root[0] in ("self", "cls") and info.cls is not None:
                if len(root) == 2 and "." not in root[1]:
                    resolved = _method_lookup(
                        project, f"{info.module}.{info.cls}", root[1]
                    )
                    site.resolved = resolved
                continue
            dotted = _chase_export(project, raw)
            if "." not in dotted:
                # Bare name: a function defined in the same module?
                local = f"{info.module}.{dotted}"
                if local in project.functions:
                    site.resolved = local
                    continue
            if dotted in project.functions:
                site.resolved = dotted
                continue
            if dotted in project.classes:
                init = _method_lookup(project, dotted, "__init__")
                site.resolved = init
                continue
            effect = stubs.classify_call(dotted, site.argless)
            if effect is not None:
                info.effect_sites.append(
                    EffectSite(
                        effect=effect,
                        lineno=site.lineno,
                        end_lineno=site.end_lineno,
                        detail=f"{dotted}()",
                    )
                )


def _build_exception_hierarchy(project: Project) -> None:
    """Leaf-name hierarchy of project exception classes, rooted at
    ``repro.exceptions.ReproError`` (plus stdlib bases by name)."""
    parent_of: "dict[str, set]" = {}
    for cls in project.classes.values():
        parents: set = set()
        for base in cls.bases:
            resolved = _resolve_class(project, cls.module, base)
            leaf = (resolved or base).rsplit(".", 1)[-1]
            parents.add(leaf)
        parent_of[cls.name] = parents

    def ancestors(name: str, seen: set) -> set:
        if name in seen:
            return set()
        seen.add(name)
        result = set()
        for parent in parent_of.get(name, set()):
            result.add(parent)
            result |= ancestors(parent, seen)
        return result

    children: "dict[str, set]" = {}
    for name in parent_of:
        chain = ancestors(name, set())
        if "ReproError" in chain or name == "ReproError":
            project.repro_exceptions.add(name)
        for ancestor in chain:
            children.setdefault(ancestor, set()).add(name)
    project._exception_children = children


def _propagate(project: Project) -> None:
    """Transitive closure of effects and escaping raises (fixpoint)."""
    for info in project.functions.values():
        info.effects = {site.effect for site in info.effect_sites}
        info.raises = {
            site.name
            for site in info.raise_sites
            if not site.catches_all
            and site.name not in project.expand_caught(site.caught)
        }
    changed = True
    passes = 0
    while changed and passes < 1000:
        changed = False
        passes += 1
        for info in project.functions.values():
            effects = set(info.effects)
            raises = set(info.raises)
            for site in info.calls:
                callee = project.functions.get(site.resolved)
                if callee is None:
                    continue
                effects |= callee.effects
                if not site.catches_all:
                    raises |= callee.raises - project.expand_caught(
                        site.caught
                    )
            if effects != info.effects or raises != info.raises:
                info.effects = effects
                info.raises = raises
                changed = True


def build_project_from_contexts(
    contexts: "Iterable[ModuleContext]",
    errors: "Iterable[str]" = (),
) -> Project:
    project = Project()
    project.errors = list(errors)
    for ctx in contexts:
        _extract_module(project, ctx)
    _build_exception_hierarchy(project)
    _resolve_calls(project)
    _propagate(project)
    return project


def build_project(paths: "Iterable") -> Project:
    """Parse files/directories into an analyzed :class:`Project`."""
    from repro.analysis.core import iter_python_files

    contexts = []
    errors = []
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            errors.append(f"{path}: unreadable ({exc})")
            continue
        try:
            contexts.append(
                ModuleContext(
                    source,
                    path=path.as_posix(),
                    module=_module_name(path.as_posix()),
                )
            )
        except SyntaxError as exc:
            errors.append(
                f"{path}: syntax error ({exc.msg}, line {exc.lineno})"
            )
    return build_project_from_contexts(contexts, errors)


def build_project_from_sources(sources: "dict[str, str]") -> Project:
    """In-memory construction (selftests, unit tests): ``module name ->
    source``."""
    contexts = [
        ModuleContext(source, path=f"<{module}>", module=module)
        for module, source in sources.items()
    ]
    return build_project_from_contexts(contexts)


def write_graph(project: Project, path: str) -> None:
    """Write the call-graph artifact: Graphviz for ``.dot`` targets,
    JSON otherwise — through the atomic persistence helper, as RPR005
    demands of every writer in the tree."""
    from repro.core.persistence import atomic_write_text

    if str(path).endswith(".dot"):
        atomic_write_text(path, project.graph_as_dot())
    else:
        atomic_write_text(
            path,
            json.dumps(project.graph_as_dict(), indent=2, sort_keys=True)
            + "\n",
        )
