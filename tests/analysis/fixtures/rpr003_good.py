"""Metric names flow from the declared constants module."""
from repro.obs import names as metric_names


def record(registry, name: str) -> None:
    registry.counter(metric_names.EXECUTIONS_TOTAL).inc()
    registry.histogram(metric_names.STAGE_SECONDS).observe(1.0)
    # A plain variable is allowed: callers thread constants through.
    registry.counter(name).inc()
