"""Observability for the PPC pipeline: metrics, timing, export.

A dependency-free metrics layer sized for a hot path:

* :class:`~repro.obs.registry.MetricsRegistry` — counters, gauges and
  streaming latency histograms (p50/p95/p99 over fixed log-scale
  buckets), keyed by name + labels;
* :func:`~repro.obs.timing.timed` / :func:`~repro.obs.timing.time_block`
  — decorator and context-manager timing helpers;
* :func:`~repro.obs.prometheus.render_prometheus` — Prometheus text
  exposition of a registry;
* :mod:`repro.obs.names` — the canonical metric-name inventory the
  instrumented pipeline emits;
* :mod:`repro.obs.tracing` — span-based decision tracing with a
  bounded, error-biased per-template flight recorder
  (:class:`~repro.obs.tracing.DecisionTracer`), behind deterministic
  sampling so the unsampled hot path stays allocation-free;
* :mod:`repro.obs.profiling` — the deterministic stage profiler riding
  the span seam (:class:`~repro.obs.profiling.StageProfiler`):
  per-template self/cumulative stage times, text tree and
  collapsed-stack output for ``repro profile``;
* :mod:`repro.obs.events` — the synopsis lifecycle event journal
  (:class:`~repro.obs.events.EventJournal`): typed, RNG-free,
  clock-injected events for every mutation of the learned cache state,
  bounded by a rotating ring with non-silent drop accounting and
  exportable as checksummed JSONL;
* :mod:`repro.obs.lineage` — cache lineage forensics over the journal
  (:class:`~repro.obs.lineage.LineageEngine`): time-travel state
  reconstruction and provenance queries for ``repro lineage``;
* :mod:`repro.obs.audit` — the misprediction regret audit that joins
  recorded traces against optimizer ground truth and blames the
  pipeline stage that caused each suboptimal decision;
* :mod:`repro.obs.timeseries` — fixed-capacity ring series sampling
  every metric on the injected clock, with windowed deltas/rates and
  quantile trends;
* :mod:`repro.obs.quality` — the per-template plan-space scorecard
  (synopsis coverage/purity/entropy, rolling accuracy/regret,
  confidence margin, drift pressure);
* :mod:`repro.obs.slo` — declarative SLOs evaluated with multi-window
  burn rates over the time series, exported as gauges;
* :mod:`repro.obs.report` — text/JSON/HTML renderers of the service
  health report (``repro report``).

Every :class:`~repro.core.framework.PPCFramework` (and therefore every
:class:`~repro.service.PlanCachingService`) owns one registry; pass
``metrics=`` to share a registry across frameworks or swap in your own.
"""

from repro.obs import names
from repro.obs.prometheus import render_prometheus
from repro.obs.registry import (
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
)
from repro.obs.profiling import ProfileTrace, StageProfiler, render_profile
from repro.obs.timing import time_block, timed
from repro.obs.tracing import (
    NOOP_TRACE,
    DecisionTrace,
    DecisionTracer,
    FlightRecorder,
    Span,
    render_trace,
)
from repro.obs.audit import attribute_stage, regret_audit
from repro.obs.events import (
    EVENT_KINDS,
    EventJournal,
    export_journal,
    load_journal,
    render_timeline,
    stream_digest,
)
from repro.obs.lineage import CACHING_PROVENANCES, LineageEngine
from repro.obs.quality import compute_scorecard, synopsis_scorecard
from repro.obs.report import (
    render_report_html,
    render_report_json,
    render_report_text,
    sparkline,
)
from repro.obs.slo import SLOEngine, evaluate_slo
from repro.obs.timeseries import RingSeries, TimeSeriesStore

__all__ = [
    "CACHING_PROVENANCES",
    "EVENT_KINDS",
    "NOOP_TRACE",
    "Counter",
    "DecisionTrace",
    "DecisionTracer",
    "EventJournal",
    "FlightRecorder",
    "Gauge",
    "LatencyHistogram",
    "LineageEngine",
    "MetricsRegistry",
    "ProfileTrace",
    "RingSeries",
    "SLOEngine",
    "Span",
    "StageProfiler",
    "TimeSeriesStore",
    "attribute_stage",
    "compute_scorecard",
    "evaluate_slo",
    "export_journal",
    "load_journal",
    "names",
    "regret_audit",
    "render_profile",
    "render_prometheus",
    "render_report_html",
    "render_report_json",
    "render_report_text",
    "render_timeline",
    "render_trace",
    "sparkline",
    "stream_digest",
    "synopsis_scorecard",
    "time_block",
    "timed",
]
