"""Histogram base class and bucket representation.

A histogram summarizes a weighted one-dimensional point set.  Each
bucket stores its boundaries, the number of points that fell inside it
and the sum of their associated costs.  Range queries interpolate under
the standard *continuous-values assumption*: points are uniformly
distributed within a bucket, so a query range receives mass
proportional to its overlap with the bucket.

The paper's space accounting (Table I) charges 12 bytes per bucket — a
32-bit count, a 32-bit average cost and a 32-bit boundary — which
:meth:`Histogram.space_bytes` reproduces.
"""

from __future__ import annotations

from abc import ABC
from dataclasses import dataclass

import numpy as np

from repro.exceptions import HistogramError

#: Bytes per bucket: 32-bit count + 32-bit average cost + 32-bit boundary.
BYTES_PER_BUCKET = 12


@dataclass
class Bucket:
    """A single histogram bucket over ``[lo, hi]``.

    ``count`` is the number of inserted points, ``cost_sum`` the sum of
    their cost annotations.  A zero-width bucket (``lo == hi``) models a
    point mass, which arises naturally in the incremental histogram.
    """

    lo: float
    hi: float
    count: float = 0.0
    cost_sum: float = 0.0

    @property
    def width(self) -> float:
        return self.hi - self.lo

    @property
    def average_cost(self) -> float:
        """Mean cost of the points in this bucket (0 when empty)."""
        if self.count <= 0.0:
            return 0.0
        return self.cost_sum / self.count

    def overlap_fraction(self, lo: float, hi: float) -> float:
        """Fraction of this bucket's mass inside the query range."""
        if self.width <= 0.0:
            return 1.0 if lo <= self.lo <= hi else 0.0
        inter = min(hi, self.hi) - max(lo, self.lo)
        if inter <= 0.0:
            return 0.0
        return min(1.0, inter / self.width)


class Histogram(ABC):
    """Common query interface shared by all histogram variants.

    Subclasses populate :attr:`buckets` (kept sorted by ``lo``) either
    at construction time (static variants) or via ``insert`` (the
    incremental variant).
    """

    def __init__(self, domain: tuple[float, float] = (0.0, 1.0)) -> None:
        lo, hi = domain
        if not lo < hi:
            raise HistogramError(f"empty histogram domain [{lo}, {hi}]")
        self.domain = (float(lo), float(hi))
        self.buckets: list[Bucket] = []
        # Mutation counter driving the vectorized-query array cache.
        self._version = 0
        self._arrays_version = -1
        self._arrays: "tuple[np.ndarray, ...] | None" = None

    def _mutated(self) -> None:
        """Subclasses call this after any bucket mutation."""
        self._version += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def total_count(self) -> float:
        """Total mass stored in the histogram."""
        return sum(b.count for b in self.buckets)

    @property
    def bucket_count(self) -> int:
        return len(self.buckets)

    def range_count(self, lo: float, hi: float) -> float:
        """Estimated number of points in ``[lo, hi]``."""
        if hi < lo:
            lo, hi = hi, lo
        return sum(b.count * b.overlap_fraction(lo, hi) for b in self.buckets)

    def range_cost(self, lo: float, hi: float) -> float:
        """Estimated average cost of the points in ``[lo, hi]``.

        Returns 0 when the range holds no mass, mirroring a histogram
        query that finds no qualifying buckets.
        """
        if hi < lo:
            lo, hi = hi, lo
        count = 0.0
        cost = 0.0
        for bucket in self.buckets:
            fraction = bucket.overlap_fraction(lo, hi)
            if fraction > 0.0:
                count += bucket.count * fraction
                cost += bucket.cost_sum * fraction
        if count <= 0.0:
            return 0.0
        return cost / count

    def space_bytes(self) -> int:
        """Storage footprint under the paper's 12-bytes-per-bucket model."""
        return self.bucket_count * BYTES_PER_BUCKET

    # ------------------------------------------------------------------
    # Vectorized range queries
    # ------------------------------------------------------------------
    def _bucket_arrays(self) -> tuple[np.ndarray, ...]:
        """Columnar bucket view, cached until the histogram mutates."""
        if self._arrays is None or self._arrays_version != self._version:
            los = np.array([b.lo for b in self.buckets])
            his = np.array([b.hi for b in self.buckets])
            counts = np.array([b.count for b in self.buckets])
            cost_sums = np.array([b.cost_sum for b in self.buckets])
            self._arrays = (los, his, counts, cost_sums)
            self._arrays_version = self._version
        return self._arrays

    def _overlap_matrix(
        self, lo: np.ndarray, hi: np.ndarray
    ) -> "np.ndarray | None":
        """Overlap fractions, shape ``(queries, buckets)``."""
        if not self.buckets:
            return None
        los, his, __, __ = self._bucket_arrays()
        lo = np.asarray(lo, dtype=float)[:, None]
        hi = np.asarray(hi, dtype=float)[:, None]
        widths = his - los
        inter = np.minimum(hi, his) - np.maximum(lo, los)
        with np.errstate(divide="ignore", invalid="ignore"):
            fraction = np.clip(inter / widths, 0.0, 1.0)
        # Point-mass buckets: in range iff lo <= bucket.lo <= hi.
        point_mass = widths <= 0.0
        in_range = (lo <= los) & (los <= hi)
        return np.where(point_mass, in_range.astype(float), fraction)

    def range_count_batch(
        self, lo: np.ndarray, hi: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`range_count` over query arrays ``(m,)``.

        Uses an explicit multiply + trailing-axis sum instead of a BLAS
        ``@`` so each query's mass is reduced over its own contiguous
        strip — bitwise independent of how many queries share the batch
        (the scalar/batch parity contract).
        """
        fractions = self._overlap_matrix(lo, hi)
        if fractions is None:
            return np.zeros(np.asarray(lo).shape[0])
        __, __, counts, __ = self._bucket_arrays()
        return (fractions * counts).sum(axis=1)

    def range_cost_batch(self, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`range_cost` over query arrays ``(m,)``."""
        __, average = self.range_query_batch(lo, hi)
        return average

    def range_query_batch(
        self, lo: np.ndarray, hi: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Counts and average costs for query arrays ``(m,)`` in one
        overlap pass — the fused lookup the batched predictors issue per
        (transform, plan) synopsis."""
        fractions = self._overlap_matrix(lo, hi)
        if fractions is None:
            zeros = np.zeros(np.asarray(lo).shape[0])
            return zeros, zeros.copy()
        __, __, counts, cost_sums = self._bucket_arrays()
        mass = (fractions * counts).sum(axis=1)
        cost = (fractions * cost_sums).sum(axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            average = np.where(mass > 0.0, cost / np.maximum(mass, 1e-300), 0.0)
        return mass, average

    # ------------------------------------------------------------------
    # Helpers for subclasses
    # ------------------------------------------------------------------
    def _check_in_domain(self, value: float) -> None:
        lo, hi = self.domain
        if not lo <= value <= hi:
            raise HistogramError(
                f"value {value!r} outside histogram domain [{lo}, {hi}]"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(buckets={self.bucket_count}, "
            f"count={self.total_count:g})"
        )
