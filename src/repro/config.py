"""Configuration dataclasses for the PPC framework.

Defaults follow the paper's reference configuration where one is given:
``t = 5`` transforms, ``b_h = 40`` histogram buckets, confidence
threshold ``gamma = 0.8`` online (0.7 offline), 5 % mean optimizer
invocation probability, cost error bound ``epsilon = 0.25``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class ResilienceConfig:
    """Degraded-mode knobs of the guarded decision flow.

    Optimizer invocations get ``retry_attempts`` tries with capped
    exponential backoff under ``retry_deadline`` seconds; after
    ``breaker_failure_threshold`` consecutive exhausted invocations the
    per-template circuit breaker opens and the session serves the last
    cached plan until ``breaker_recovery_time`` elapses (then admits
    ``breaker_half_open_trials`` probes).  ``validate_points`` rejects
    NaN/inf/out-of-domain instances up front with a clean
    :class:`~repro.exceptions.PredictionError`.
    """

    retry_attempts: int = 3
    retry_base_delay: float = 0.01
    retry_multiplier: float = 2.0
    retry_max_delay: float = 0.25
    retry_deadline: "float | None" = 2.0
    breaker_failure_threshold: int = 3
    breaker_recovery_time: float = 5.0
    breaker_half_open_trials: int = 1
    validate_points: bool = True

    def __post_init__(self) -> None:
        if self.retry_attempts < 1:
            raise ConfigurationError("retry attempts must be >= 1")
        if self.retry_base_delay < 0.0 or self.retry_max_delay < 0.0:
            raise ConfigurationError("retry delays must be >= 0")
        if self.retry_multiplier < 1.0:
            raise ConfigurationError("retry multiplier must be >= 1")
        if self.retry_deadline is not None and self.retry_deadline <= 0.0:
            raise ConfigurationError("retry deadline must be > 0")
        if self.breaker_failure_threshold < 1:
            raise ConfigurationError("breaker failure threshold must be >= 1")
        if self.breaker_recovery_time < 0.0:
            raise ConfigurationError("breaker recovery time must be >= 0")
        if self.breaker_half_open_trials < 1:
            raise ConfigurationError("breaker half-open trials must be >= 1")


@dataclass(frozen=True)
class TraceConfig:
    """Sampling knobs of the per-template decision flight recorder.

    Every ``TemplateSession.execute`` asks the sampler whether to build
    a full :class:`~repro.obs.tracing.DecisionTrace`; unsampled
    executions pay one no-op method call per stage and allocate
    nothing.  Sampling is deterministic (no RNG): the first ``head``
    executions are always traced, every ``interval``-th execution after
    that (0 disables interval sampling), and — error-biased — the
    ``error_burst`` executions following any degraded/fallback/raised
    instance, so the recorder holds the run-up to every incident.
    ``explain`` bypasses the sampler entirely (decision ``forced``).
    """

    enabled: bool = True
    head: int = 8
    interval: int = 0
    error_burst: int = 4
    capacity: int = 256
    error_capacity: int = 64

    def __post_init__(self) -> None:
        if self.head < 0:
            raise ConfigurationError("trace head must be >= 0")
        if self.interval < 0:
            raise ConfigurationError("trace interval must be >= 0")
        if self.error_burst < 0:
            raise ConfigurationError("trace error burst must be >= 0")
        if self.capacity < 1 or self.error_capacity < 1:
            raise ConfigurationError("trace capacities must be >= 1")


@dataclass(frozen=True)
class ProfileConfig:
    """Stage-profiler knobs (see :mod:`repro.obs.profiling`).

    Disabled (the default) the profiler does not exist: the tracer owns
    no profiler object and unsampled executions keep returning the
    shared ``NOOP_TRACE`` singleton — the hot path is bit-identical to
    a build without the feature.  Enabled, every ``interval``-th
    execution per template is timed stage-by-stage on the existing span
    seam; sampling is deterministic (a per-template counter, no RNG),
    so profiled runs make the same decisions as unprofiled ones.
    """

    enabled: bool = False
    interval: int = 1
    max_paths: int = 256

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise ConfigurationError("profile interval must be >= 1")
        if self.max_paths < 8:
            raise ConfigurationError("profile max_paths must be >= 8")


@dataclass(frozen=True)
class EventsConfig:
    """Synopsis lifecycle event-journal knobs (:mod:`repro.obs.events`).

    Disabled (the default) the journal does not exist: no session or
    predictor holds an emitter, mutation paths pay one ``is None``
    check, and nothing is allocated — the hot path is bit-identical to
    a build without the feature.  Enabled, every synopsis mutation,
    eviction, drift drop, breaker transition and fallback serving
    appends one typed event to a bounded ring (oldest events rotate
    out under a non-silent ``dropped`` counter, like the profiler's
    ``max_paths``).  Emission is RNG-free and clock-injected, so
    journaled runs make bit-identical decisions to unjournaled ones.
    """

    enabled: bool = False
    capacity: int = 4096

    def __post_init__(self) -> None:
        if self.capacity < 64:
            raise ConfigurationError("events capacity must be >= 64")


#: Signals an SLO can be defined over (``signal`` field of
#: :class:`SLODefinition`).
SLO_SIGNALS = ("hit_rate", "predict_p95", "regret")

#: SLO evaluation states, ordered by severity (the exported
#: ``ppc_slo_state`` gauge uses the index as its value).
SLO_STATES = ("ok", "warning", "breach")


@dataclass(frozen=True)
class SLODefinition:
    """One declarative service-level objective over the cached decisions.

    ``signal`` picks the underlying health signal:

    * ``hit_rate`` — plan-cache hit fraction must stay at or above
      ``objective``; the error budget is ``1 - objective`` and the burn
      rate is the windowed miss fraction divided by that budget;
    * ``predict_p95`` — p95 of ``ppc_stage_seconds{stage="predict"}``
      must stay at or below ``objective`` seconds; the burn rate is the
      windowed p95 divided by the objective;
    * ``regret`` — average regret (``suboptimality - 1``) per execution
      must stay at or below ``objective``; the burn rate is the
      windowed mean regret divided by the objective.

    Burn rates are evaluated over two windows on the *injected* clock
    (Kepler-style continuous evaluation against a regression budget):
    ``breach`` needs both windows burning at ``breach_burn`` or more,
    ``warning`` needs either window at ``warning_burn`` or more — the
    standard multi-window policy that ignores short blips while still
    catching slow leaks.
    """

    name: str
    signal: str
    objective: float
    short_window: float = 300.0
    long_window: float = 3600.0
    breach_burn: float = 2.0
    warning_burn: float = 1.0

    def __post_init__(self) -> None:
        if self.signal not in SLO_SIGNALS:
            raise ConfigurationError(
                f"unknown SLO signal {self.signal!r}; "
                f"expected one of {SLO_SIGNALS}"
            )
        if self.signal == "hit_rate" and not 0.0 <= self.objective < 1.0:
            raise ConfigurationError("hit-rate objective must be in [0, 1)")
        if self.signal != "hit_rate" and self.objective <= 0.0:
            raise ConfigurationError("SLO objective must be > 0")
        if not 0.0 < self.short_window <= self.long_window:
            raise ConfigurationError(
                "SLO windows must satisfy 0 < short <= long"
            )
        if self.breach_burn < self.warning_burn or self.warning_burn <= 0.0:
            raise ConfigurationError(
                "SLO burn thresholds must satisfy 0 < warning <= breach"
            )


#: The shipped SLO set: generous enough that a healthy seeded workload
#: never breaches (CI fails the build on breach), tight enough that a
#: collapsed synopsis or an optimizer outage shows up within a window.
DEFAULT_SLOS: "tuple[SLODefinition, ...]" = (
    SLODefinition(name="cache_hit_rate", signal="hit_rate", objective=0.5),
    SLODefinition(
        name="predict_latency_p95", signal="predict_p95", objective=0.05
    ),
    SLODefinition(name="regret_budget", signal="regret", objective=0.10),
)


@dataclass(frozen=True)
class TelemetryConfig:
    """Windowed cache-quality telemetry knobs (time series + SLOs).

    The framework snapshots every metric into fixed-capacity ring
    series each ``sample_interval`` seconds *of the injected clock* —
    no wall-clock reads, so storms on a ``VirtualClock`` fill hours of
    windows in milliseconds and the memory stays O(capacity) per
    series.  Every ``quality_every``-th sample additionally refreshes
    the per-template plan-space scorecard gauges (coverage, purity,
    rolling accuracy/regret, drift pressure) — the expensive synopsis
    scan, gated to well under 5 % of the serving path (enforced by
    ``benchmarks/bench_quality_overhead.py``).
    """

    enabled: bool = True
    sample_interval: float = 5.0
    series_capacity: int = 256
    quality_every: int = 12
    quality_probes: int = 64
    quality_window: int = 200
    slos: "tuple[SLODefinition, ...]" = DEFAULT_SLOS

    def __post_init__(self) -> None:
        if self.sample_interval <= 0.0:
            raise ConfigurationError("telemetry sample interval must be > 0")
        if self.series_capacity < 2:
            raise ConfigurationError("telemetry series capacity must be >= 2")
        if self.quality_every < 1:
            raise ConfigurationError("telemetry quality_every must be >= 1")
        if self.quality_probes < 2:
            raise ConfigurationError("telemetry quality_probes must be >= 2")
        if self.quality_window < 1:
            raise ConfigurationError("telemetry quality_window must be >= 1")


@dataclass(frozen=True)
class PPCConfig:
    """Knobs of one template's online plan-caching session."""

    transforms: int = 5
    resolution: int = 16
    max_buckets: int = 40
    radius: float = 0.05
    confidence_threshold: float = 0.8
    noise_fraction: "float | None" = 0.002
    mean_invocation_probability: float = 0.05
    negative_feedback: bool = True
    cost_epsilon: float = 0.25
    #: Positive feedback (the paper's future-work extension): insert
    #: trusted predictions as discounted, capped sample points.
    positive_feedback: bool = False
    positive_feedback_min_confidence: float = 0.97
    positive_feedback_weight: float = 0.25
    positive_feedback_mass_cap: float = 0.5
    monitor_window: int = 100
    drift_threshold: float = 0.5
    drift_min_observations: int = 30
    drift_response: bool = True
    cache_capacity: int = 32
    #: Degraded-mode behavior (retry/backoff, circuit breaker, input
    #: validation); the defaults cost nothing while dependencies are
    #: healthy.
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    #: Decision-trace sampling and flight-recorder sizing; the default
    #: traces the first few executions plus an error-biased burst.
    trace: TraceConfig = field(default_factory=TraceConfig)
    #: Windowed telemetry (time-series sampling, plan-space scorecards,
    #: SLO burn rates); sampling runs on the injected clock only.
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)
    #: Hot-path stage profiler (self/cumulative time per decision
    #: stage); off by default — enabling it never changes a decision.
    profiling: ProfileConfig = field(default_factory=ProfileConfig)
    #: Synopsis lifecycle event journal (cache lineage forensics); off
    #: by default — enabling it never changes a decision.
    events: EventsConfig = field(default_factory=EventsConfig)

    def __post_init__(self) -> None:
        if self.transforms < 1:
            raise ConfigurationError("transforms must be >= 1")
        if self.max_buckets < 1:
            raise ConfigurationError("max_buckets must be >= 1")
        if self.radius <= 0.0:
            raise ConfigurationError("radius must be > 0")
        if not 0.0 <= self.confidence_threshold <= 1.0:
            raise ConfigurationError("confidence threshold must be in [0, 1]")
        if not 0.0 <= self.mean_invocation_probability <= 1.0:
            raise ConfigurationError(
                "mean invocation probability must be in [0, 1]"
            )
        if self.cache_capacity < 1:
            raise ConfigurationError("cache capacity must be >= 1")
