"""Exception hierarchy for the :mod:`repro` library.

Every error raised deliberately by the library derives from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while still distinguishing the failure domain.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid parameter or combination of parameters was supplied."""


class CatalogError(ReproError):
    """A catalog object (table, column, index) is missing or malformed."""


class OptimizationError(ReproError):
    """The optimizer could not produce a plan for a query instance."""


class HistogramError(ReproError):
    """A histogram operation received out-of-domain input."""


class WorkloadError(ReproError):
    """A workload generator was asked for an impossible workload."""


class PredictionError(ReproError):
    """A predictor was used incorrectly (e.g. before any samples exist)."""


class PersistenceError(ReproError):
    """A predictor state file is missing, truncated, corrupt, or of an
    unsupported version — distinct from :class:`ConfigurationError` so
    boot code can catch storage damage specifically."""


class ResilienceError(ReproError):
    """The degraded-mode machinery itself failed: the optimizer is
    unavailable (circuit open or retries exhausted) and no fallback
    plan exists, or a fault-injection harness raised deliberately."""


class BenchError(ReproError):
    """A benchmark envelope, baseline, or history record is malformed —
    the bench harness refuses to compare apples to unparseable oranges
    rather than report a spurious pass."""
