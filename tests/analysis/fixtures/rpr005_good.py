"""Durable state goes through the atomic-write helper; reads are free."""
import json

from repro.core.persistence import atomic_write_text


def snapshot(state, path):
    atomic_write_text(path, json.dumps(state))


def load(path):
    with open(path) as handle:
        return json.load(handle)
