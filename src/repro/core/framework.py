"""The parametric plan-caching framework: the Figure-1 workflow.

A :class:`TemplateSession` owns everything the RDBMS keeps per query
template: the online predictor (clustered plan-space synopses), the
performance monitor, and the plan cache.  ``execute`` runs one query
instance through the full decision flow:

1. predict the plan from the clustered plan space;
2. decide whether to invoke the optimizer anyway (NULL prediction,
   random exploration, or plan missing from the cache);
3. execute; afterwards compare the observed cost against the synopsis
   estimate and — on a suspected misprediction — invoke the optimizer
   and feed the corrective point back (negative feedback);
4. update precision/recall estimators, trigger the drift response when
   estimated precision collapses.

The plan-space oracle plays two roles, exactly as in the paper's
prototype: it is the black-box optimizer the session invokes, and it
supplies the experimenter's ground truth recorded in every
:class:`ExecutionRecord` (the session itself never peeks).

Every session reports into a :class:`~repro.obs.registry.MetricsRegistry`
(per-stage wall-clock, invocation reasons, drift events, feedback
outcomes); a framework shares one registry across all its sessions.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.config import PPCConfig
from repro.core.cache import PlanCache
from repro.core.monitor import PerformanceMonitor
from repro.core.online import OnlinePredictor
from repro.core.positive_feedback import PositiveFeedbackPolicy
from repro.metrics.classification import PrecisionRecall, summarize
from repro.metrics.classification import PredictionOutcome
from repro.obs import MetricsRegistry, names as metric_names
from repro.optimizer.plan_space import PlanSpace


@dataclass(frozen=True)
class ExecutionRecord:
    """Everything that happened for one query instance."""

    template: str
    point: np.ndarray
    predicted: "int | None"
    confidence: float
    optimizer_invoked: bool
    invocation_reason: str
    executed_plan: int
    execution_cost: float
    optimal_plan: int
    optimal_cost: float
    drift_triggered: bool

    @property
    def correct(self) -> bool:
        """Ground-truth correctness of the prediction (experimenter view)."""
        return self.predicted is not None and self.predicted == self.optimal_plan

    @property
    def suboptimality(self) -> float:
        """Cost of what ran relative to the optimum (>= 1)."""
        if self.optimal_cost <= 0.0:
            return 1.0
        return self.execution_cost / self.optimal_cost


class TemplateSession:
    """Per-template plan-caching state and decision flow."""

    def __init__(
        self,
        plan_space: PlanSpace,
        config: "PPCConfig | None" = None,
        seed: "int | np.random.Generator | None" = 0,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.plan_space = plan_space
        self.config = config or PPCConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        template = plan_space.template.name
        self.monitor = PerformanceMonitor(
            window=self.config.monitor_window,
            drift_threshold=self.config.drift_threshold,
            min_observations=self.config.drift_min_observations,
        )
        self.cache = PlanCache(
            self.config.cache_capacity,
            self.monitor,
            metrics=self.metrics,
            template=template,
        )
        policy = None
        if self.config.positive_feedback:
            policy = PositiveFeedbackPolicy(
                min_confidence=self.config.positive_feedback_min_confidence,
                weight=self.config.positive_feedback_weight,
                mass_cap_ratio=self.config.positive_feedback_mass_cap,
            )
        self.online = OnlinePredictor(
            dimensions=plan_space.dimensions,
            plan_count=plan_space.plan_count,
            transforms=self.config.transforms,
            resolution=self.config.resolution,
            max_buckets=self.config.max_buckets,
            radius=self.config.radius,
            confidence_threshold=self.config.confidence_threshold,
            noise_fraction=self.config.noise_fraction,
            mean_invocation_probability=self.config.mean_invocation_probability,
            negative_feedback=self.config.negative_feedback,
            cost_epsilon=self.config.cost_epsilon,
            positive_feedback=policy,
            seed=seed,
        )
        self.online.predictor.bind_metrics(self.metrics, template=template)
        self.optimizer_invocations = 0
        self.drift_events = 0
        self.records: list[ExecutionRecord] = []

        # Stable metric handles: fetched once, updated lock-free in the
        # hot path below.
        self._stage_timers = {
            stage: self.metrics.histogram(
                metric_names.STAGE_SECONDS, template=template, stage=stage
            )
            for stage in metric_names.STAGES
        }
        self._executions_counter = self.metrics.counter(
            metric_names.EXECUTIONS_TOTAL, template=template
        )
        self._reason_counters = {
            reason: self.metrics.counter(
                metric_names.INVOCATIONS_TOTAL,
                template=template,
                reason=reason,
            )
            for reason in metric_names.INVOCATION_REASONS
        }
        self._feedback_counters = {
            outcome: self.metrics.counter(
                metric_names.POSITIVE_FEEDBACK_TOTAL,
                template=template,
                outcome=outcome,
            )
            for outcome in ("accepted", "rejected")
        }
        self._drift_counter = self.metrics.counter(
            metric_names.DRIFT_EVENTS_TOTAL, template=template
        )

    # ------------------------------------------------------------------
    # The decision flow
    # ------------------------------------------------------------------
    def _invoke_optimizer(self, x: np.ndarray) -> tuple[int, float]:
        """Black-box optimizer call: learn the true plan and cost at x."""
        self.optimizer_invocations += 1
        ids, costs = self.plan_space.label(x[None, :])
        plan_id, cost = int(ids[0]), float(costs[0])
        self.online.observe(x, plan_id, cost)
        self.cache.put(plan_id, self.plan_space.plan(plan_id))
        return plan_id, cost

    def execute(self, x: np.ndarray) -> ExecutionRecord:
        """Run one query instance through the PPC workflow."""
        x = np.asarray(x, dtype=float).reshape(-1)
        self._executions_counter.inc()
        # Experimenter-side ground truth; the session only learns it if
        # and when it invokes the optimizer below.
        true_ids, true_costs = self.plan_space.label(x[None, :])
        optimal_plan, optimal_cost = int(true_ids[0]), float(true_costs[0])

        stage_start = perf_counter()
        prediction = self.online.predict(x)
        self._stage_timers["predict"].observe(perf_counter() - stage_start)

        reason = ""
        if prediction is None:
            reason = "null_prediction"
        elif self.online.should_invoke_optimizer(prediction):
            reason = "exploration"
        elif prediction.plan_id not in self.cache:
            reason = "cache_miss"

        if reason:
            stage_start = perf_counter()
            executed_plan, execution_cost = self._invoke_optimizer(x)
            self._stage_timers["optimize"].observe(
                perf_counter() - stage_start
            )
            if prediction is None:
                self.monitor.record_null()
            else:
                self.monitor.record_prediction(
                    prediction.plan_id, prediction.plan_id == executed_plan
                )
        else:
            executed_plan = prediction.plan_id
            self.cache.get(executed_plan)
            stage_start = perf_counter()
            execution_cost = float(
                self.plan_space.cost_at(x[None, :], executed_plan)[0]
            )
            self._stage_timers["execute"].observe(
                perf_counter() - stage_start
            )
            stage_start = perf_counter()
            if self.online.suspect_error(prediction, execution_cost):
                reason = "negative_feedback"
                true_plan, __ = self._invoke_optimizer(x)
                self.monitor.record_prediction(
                    prediction.plan_id, prediction.plan_id == true_plan
                )
            else:
                # No ground truth available: the cost estimator believes
                # the prediction, and the estimators record that belief.
                self.monitor.record_prediction(prediction.plan_id, True)
                # Trusted execution: optionally offer the point as
                # positive feedback (discounted + capped by the policy).
                inserted = self.online.observe_unverified(
                    x, prediction, execution_cost
                )
                if self.online.positive_feedback is not None:
                    outcome = "accepted" if inserted else "rejected"
                    self._feedback_counters[outcome].inc()
            self._stage_timers["feedback"].observe(
                perf_counter() - stage_start
            )

        if reason:
            self._reason_counters[reason].inc()

        drift = False
        if self.config.drift_response and self.monitor.drift_detected():
            drift = True
            self.drift_events += 1
            self._drift_counter.inc()
            self.online.drop()
            self.monitor.reset()
            self.cache.clear()

        record = ExecutionRecord(
            template=self.plan_space.template.name,
            point=x,
            predicted=None if prediction is None else prediction.plan_id,
            confidence=0.0 if prediction is None else prediction.confidence,
            optimizer_invoked=bool(reason) and reason != "",
            invocation_reason=reason,
            executed_plan=executed_plan,
            execution_cost=execution_cost,
            optimal_plan=optimal_plan,
            optimal_cost=optimal_cost,
            drift_triggered=drift,
        )
        self.records.append(record)
        return record

    # ------------------------------------------------------------------
    # Experimenter-side accounting
    # ------------------------------------------------------------------
    def ground_truth_metrics(self) -> PrecisionRecall:
        """True precision/recall of all predictions so far."""
        return summarize(
            PredictionOutcome(r.predicted, r.optimal_plan)
            for r in self.records
        )


class PPCFramework:
    """Multi-template facade: one session per query template.

    With ``memory_budget_bytes`` set, a
    :class:`~repro.core.governor.MemoryGovernor` keeps the combined
    synopsis footprint of all sessions under the budget, reclaiming
    from the coldest templates first (enforced every
    ``governor_interval`` executions).

    Each registered template receives an independently seeded random
    stream spawned from the framework seed (via
    :class:`numpy.random.SeedSequence`), so templates never share LSH
    transform ensembles or correlated exploration coin-flips, while the
    whole multi-template run stays reproducible from one seed.
    """

    def __init__(
        self,
        config: "PPCConfig | None" = None,
        seed: "int | np.random.Generator | None" = 0,
        memory_budget_bytes: "int | None" = None,
        governor_interval: int = 32,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.config = config or PPCConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if isinstance(seed, np.random.Generator):
            self._seed_root: "np.random.Generator | np.random.SeedSequence" = (
                seed
            )
        else:
            self._seed_root = np.random.SeedSequence(seed)
        self.sessions: dict[str, TemplateSession] = {}
        self.governor = None
        if memory_budget_bytes is not None:
            from repro.core.governor import MemoryGovernor

            self.governor = MemoryGovernor(
                memory_budget_bytes, metrics=self.metrics
            )
        self.governor_interval = governor_interval
        self._executions = 0

    def _spawn_seed(self) -> np.random.Generator:
        """An independent per-template stream off the framework seed."""
        child = self._seed_root.spawn(1)[0]
        if isinstance(child, np.random.Generator):
            return child
        return np.random.default_rng(child)

    def register(self, plan_space: PlanSpace) -> TemplateSession:
        """Start plan caching for a template."""
        session = TemplateSession(
            plan_space, self.config, self._spawn_seed(), metrics=self.metrics
        )
        self.sessions[plan_space.template.name] = session
        if self.governor is not None:
            self.governor.register(session)
        return session

    def session(self, template_name: str) -> TemplateSession:
        return self.sessions[template_name]

    def execute(self, template_name: str, x: np.ndarray) -> ExecutionRecord:
        """Run one instance of a registered template."""
        record = self.sessions[template_name].execute(x)
        if self.governor is not None:
            self.governor.touch(template_name)
            self._executions += 1
            if self._executions % self.governor_interval == 0:
                self.governor.enforce()
        return record

    @property
    def optimizer_invocations(self) -> int:
        return sum(s.optimizer_invocations for s in self.sessions.values())

    @property
    def space_bytes(self) -> int:
        """Combined synopsis footprint of all sessions."""
        return sum(
            s.online.space_bytes() for s in self.sessions.values()
        )
