"""Synthetic statistics generation for the modified TPC-H catalog.

The paper's setup populates the added date columns with Gaussian values
and leaves the rest of the schema as TPC-H generates it (keys uniform,
prices roughly uniform over their ranges).  Since plan selection
depends only on statistics, we generate the *statistics* those tuples
would produce — per-column quantile sketches — rather than the tuples
themselves.
"""

from __future__ import annotations

from repro.optimizer.catalog import Catalog
from repro.optimizer.statistics import (
    CatalogStatistics,
    ColumnStatistics,
    TableStatistics,
)
from repro.rng import as_generator
from repro.tpch.schema import DATE_SPAN


def build_statistics(
    catalog: Catalog,
    seed: "int | None" = 0,
    gaussian_samples: int = 20_000,
) -> CatalogStatistics:
    """Generate quantile sketches for every column of ``catalog``.

    Gaussian date columns get sketches built from sampled values with
    mean at the domain centre and a standard deviation of one sixth of
    the span (so essentially all mass lies inside the domain); every
    other column is treated as uniform over its declared range, which
    is exact for keys and a good approximation for TPC-H's price and
    quantity columns.
    """
    rng = as_generator(seed)
    statistics = CatalogStatistics(catalog)
    for table in catalog.tables.values():
        table_stats = TableStatistics(table.name, table.row_count)
        for column in table.columns.values():
            sketch = (
                ColumnStatistics.gaussian(
                    column,
                    mean=DATE_SPAN / 2.0,
                    std=DATE_SPAN / 6.0,
                    sample_count=gaussian_samples,
                    seed=rng,
                )
                if column.distribution == "gaussian"
                else ColumnStatistics.uniform(column)
            )
            table_stats.add(sketch)
        statistics.add_table(table_stats)
    return statistics
