"""Plan-space diagnostics."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.optimizer.diagnostics import profile_plan_space


@pytest.fixture(scope="module")
def profile(q1_space):
    return profile_plan_space(q1_space, samples=2000, seed=3)


class TestProfile:
    def test_area_fractions_sum_to_one(self, profile):
        assert sum(profile.area_fractions.values()) == pytest.approx(1.0)

    def test_observed_within_harvested(self, profile, q1_space):
        assert profile.observed_plans <= q1_space.plan_count
        assert profile.observed_plans >= 3

    def test_gini_in_unit_interval(self, profile):
        assert 0.0 <= profile.gini <= 1.0

    def test_boundary_fraction_sane(self, profile):
        # Q1's space is predictable: most points are interior.
        assert 0.0 < profile.boundary_fraction < 0.3

    def test_axis_rates_positive_for_2d(self, profile):
        assert len(profile.axis_transition_rates) == 2
        assert all(rate > 0 for rate in profile.axis_transition_rates)

    def test_predictability_decays_with_distance(self, profile):
        curve = profile.predictability
        distances = sorted(curve)
        values = [curve[d] for d in distances]
        assert values == sorted(values, reverse=True)
        assert values[0] > 0.9

    def test_dominant_plan_is_argmax(self, profile):
        dominant = profile.dominant_plan
        assert profile.area_fractions[dominant] == max(
            profile.area_fractions.values()
        )

    def test_summary_readable(self, profile):
        text = profile.summary()
        assert "Q1" in text
        assert "plans observed" in text

    def test_too_few_samples_rejected(self, q1_space):
        with pytest.raises(ConfigurationError):
            profile_plan_space(q1_space, samples=5)

    def test_deterministic_under_seed(self, q1_space):
        a = profile_plan_space(q1_space, samples=500, seed=9)
        b = profile_plan_space(q1_space, samples=500, seed=9)
        assert a.gini == b.gini
        assert a.boundary_fraction == b.boundary_fraction


class TestCrossTemplateComparison:
    def test_harder_template_has_more_boundary(self, q1_space, q5_space):
        """The higher-degree template is structurally harder: more
        plans and at least comparable boundary exposure."""
        easy = profile_plan_space(q1_space, samples=1500, seed=3)
        hard = profile_plan_space(q5_space, samples=1500, seed=3)
        assert hard.observed_plans > easy.observed_plans
