"""Catalog metadata: tables, columns, indexes, lookups."""

import pytest

from repro.exceptions import CatalogError
from repro.optimizer.catalog import (
    TUPLES_PER_PAGE,
    Catalog,
    Column,
    Index,
    Table,
)


@pytest.fixture()
def catalog():
    catalog = Catalog()
    catalog.add_table(
        Table("t", 1000, {"a": Column("a", 0, 10, 10), "b": Column("b", 0, 1, 2)})
    )
    return catalog


class TestColumn:
    def test_invalid_domain(self):
        with pytest.raises(CatalogError):
            Column("c", 5, 1, 10)

    def test_invalid_distinct_count(self):
        with pytest.raises(CatalogError):
            Column("c", 0, 1, 0)


class TestTable:
    def test_pages_round_up(self):
        assert Table("t", TUPLES_PER_PAGE + 1).pages == 2
        assert Table("t", TUPLES_PER_PAGE).pages == 1

    def test_tiny_table_occupies_one_page(self):
        assert Table("t", 1).pages == 1

    def test_missing_column(self, catalog):
        with pytest.raises(CatalogError):
            catalog.table("t").column("zzz")


class TestCatalog:
    def test_duplicate_table_rejected(self, catalog):
        with pytest.raises(CatalogError):
            catalog.add_table(Table("t", 5))

    def test_unknown_table(self, catalog):
        with pytest.raises(CatalogError):
            catalog.table("nope")

    def test_index_lookup(self, catalog):
        catalog.add_index(Index("ix_a", "t", "a"))
        assert catalog.index_on("t", "a").name == "ix_a"
        assert catalog.index_on("t", "b") is None

    def test_index_on_unknown_table_rejected(self, catalog):
        with pytest.raises(CatalogError):
            catalog.add_index(Index("ix", "nope", "a"))

    def test_index_on_unknown_column_rejected(self, catalog):
        with pytest.raises(CatalogError):
            catalog.add_index(Index("ix", "t", "nope"))

    def test_duplicate_index_name_rejected(self, catalog):
        catalog.add_index(Index("ix_a", "t", "a"))
        with pytest.raises(CatalogError):
            catalog.add_index(Index("ix_a", "t", "b"))
