"""Figure 2: the plan space of Q1.

Rasterizes Q1's plan diagram (each glyph = one plan), reports per-plan
area fractions, and times the vectorized oracle labeling that every
other experiment builds on.
"""

import numpy as np

from _bench_utils import write_result
from repro.experiments.diagrams import plan_diagram
from repro.tpch import plan_space_for
from repro.workload import sample_points


def test_fig02_plan_diagram(benchmark):
    diagram = plan_diagram("Q1", resolution=48)
    lines = [
        "Figure 2 — plan space of Q1 (48x48 raster, one glyph per plan)",
        "",
        diagram.render(),
        "",
        "plan area fractions:",
    ]
    for plan, fraction in sorted(diagram.plan_fractions.items()):
        lines.append(f"  P{plan}: {fraction:6.1%}")
    write_result("fig02_plan_space", lines)

    space = plan_space_for("Q1")
    points = sample_points(2, 1000, seed=0)
    benchmark(space.label, points)

    assert len(diagram.plan_fractions) >= 3
