"""Tables I and III.

* :func:`run_space_accounting` (Table I) — complexity class and
  measured space consumption of the four algorithms at a common sample
  size.
* :func:`run_template_inventory` (Table III) — the nine query
  templates: SQL shape, parameter degree and a lower bound on the plan
  count obtained by probing the optimizer at a finite set of points
  (exactly how the paper estimated its plan counts).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.baseline import BaselinePredictor
from repro.core.histogram_predictor import HistogramPredictor
from repro.core.lsh_predictor import LshPredictor
from repro.core.naive import NaivePredictor
from repro.experiments.setup import (
    DEFAULT_BUCKETS,
    DEFAULT_TRANSFORMS,
    OFFLINE_GAMMA,
    OFFLINE_RADIUS,
)
from repro.tpch import plan_space_for, query_template
from repro.workload import sample_labeled_pool, sample_points


@dataclass(frozen=True)
class SpaceRow:
    """Table I entry: complexity class and measured bytes."""

    algorithm: str
    prediction_complexity: str
    space_formula: str
    measured_bytes: int


def run_space_accounting(
    template: str = "Q1",
    sample_size: int = 3200,
    transforms: int = DEFAULT_TRANSFORMS,
    resolution: int = 8,
    max_buckets: int = DEFAULT_BUCKETS,
    seed: int = 7,
) -> list[SpaceRow]:
    """Instantiate the four algorithms and report their footprints."""
    plan_space = plan_space_for(template)
    pool = sample_labeled_pool(plan_space, sample_size, seed=seed)
    n = plan_space.plan_count

    baseline = BaselinePredictor(pool, OFFLINE_RADIUS, OFFLINE_GAMMA)
    naive = NaivePredictor(
        pool, plan_count=n, resolution=resolution, radius=OFFLINE_RADIUS
    )
    lsh = LshPredictor(
        pool, plan_count=n, transforms=transforms, resolution=resolution,
        seed=seed,
    )
    hist = HistogramPredictor(
        pool,
        plan_count=n,
        transforms=transforms,
        max_buckets=max_buckets,
        radius=OFFLINE_RADIUS,
        seed=seed,
    )
    return [
        SpaceRow(
            "BASELINE", "O(|X|) per prediction", "|X| * (4r + 8)",
            baseline.space_bytes(),
        ),
        SpaceRow(
            "NAIVE", "O(1) per prediction", "n * b_g * 8",
            naive.space_bytes(),
        ),
        SpaceRow(
            "APPROXIMATE-LSH", "O(t) per prediction", "t * n * b_g * 8",
            lsh.space_bytes(),
        ),
        SpaceRow(
            "APPROXIMATE-LSH-HISTOGRAMS", "O(t * b_h) per prediction",
            "t * n * b_h * 12", hist.space_bytes(),
        ),
    ]


@dataclass(frozen=True)
class TemplateRow:
    """Table III entry for one query template."""

    name: str
    tables: tuple[str, ...]
    parameter_degree: int
    estimated_plan_count: int
    sql: str
    description: str


def run_template_inventory(
    probe_points: int = 2000,
    seed: int = 7,
) -> list[TemplateRow]:
    """Probe every template's plan space for a plan-count lower bound."""
    rows = []
    for index in range(9):
        name = f"Q{index}"
        template = query_template(name)
        plan_space = plan_space_for(name)
        probes = sample_points(plan_space.dimensions, probe_points, seed=seed)
        observed = len(set(plan_space.plan_at(probes).tolist()))
        rows.append(
            TemplateRow(
                name=name,
                tables=template.tables,
                parameter_degree=template.parameter_degree,
                estimated_plan_count=observed,
                sql=template.sql(),
                description=template.description,
            )
        )
    return rows
