"""The value-level plan-caching service."""

import json

import numpy as np
import pytest

from repro.config import PPCConfig
from repro.exceptions import ConfigurationError, WorkloadError
from repro.service import PlanCachingService
from repro.workload import QueryInstance, RandomTrajectoryWorkload


@pytest.fixture(scope="module")
def service():
    service = PlanCachingService.tpch(
        scale_factor=0.1,
        config=PPCConfig(confidence_threshold=0.8, drift_response=False),
        seed=0,
    )
    service.register("Q1")
    return service


class TestLifecycle:
    def test_registration(self, service):
        assert service.templates == ["Q1"]

    def test_double_registration_rejected(self, service):
        with pytest.raises(ConfigurationError):
            service.register("Q1")

    def test_unregistered_execution_rejected(self, service):
        with pytest.raises(WorkloadError):
            service.execute(QueryInstance("Q3", (1.0, 2.0, 3.0)))

    def test_mismatched_statistics_rejected(self):
        from repro.tpch import build_catalog, build_statistics

        catalog_a = build_catalog(0.01)
        catalog_b = build_catalog(0.01)
        stats_b = build_statistics(catalog_b, seed=0, gaussian_samples=500)
        with pytest.raises(ConfigurationError):
            PlanCachingService(catalog_a, stats_b)


class TestExecution:
    def test_value_level_round_trip(self, service):
        """instance_at and execute agree: executing the instance placed
        at a point reports (approximately) that point's optimal plan."""
        point = np.array([0.3, 0.6])
        instance = service.instance_at("Q1", point)
        record = service.execute(instance)
        assert record.template == "Q1"
        assert record.executed_plan >= 0
        # The bound point round-trips near the requested location.
        assert record.point == pytest.approx(point, abs=0.03)

    def test_workload_produces_caching_benefit(self, service):
        workload = RandomTrajectoryWorkload(2, spread=0.02, seed=5).generate(
            400
        )
        for point in workload:
            service.execute(service.instance_at("Q1", point))
        report = service.report()["Q1"]
        assert report["invocation_rate"] < 0.9
        assert report["precision"] > 0.9
        assert report["space_bytes"] > 0

    def test_report_covers_all_templates(self, service):
        report = service.report()
        assert set(report) == {"Q1"}
        assert {"instances", "precision", "recall"} <= set(report["Q1"])


class TestMetrics:
    def test_metrics_snapshot_after_mixed_workload(self, service):
        workload = RandomTrajectoryWorkload(2, spread=0.02, seed=9).generate(
            100
        )
        for point in workload:
            service.execute(service.instance_at("Q1", point))
        snapshot = service.metrics()
        json.dumps(snapshot)  # must be JSON-ready

        q1 = snapshot["templates"]["Q1"]
        assert q1["executions"] >= 100
        # Per-stage latency digests with p50/p95.
        predict = q1["stage_seconds"]["predict"]
        assert predict["count"] == q1["executions"]
        assert {"p50", "p95", "p99", "count", "sum"} <= set(predict)
        assert predict["p95"] >= predict["p50"] >= 0.0
        # Invocation reasons tile the optimizer invocations exactly.
        reasons = q1["invocation_reasons"]
        assert set(reasons) == {
            "null_prediction",
            "exploration",
            "cache_miss",
            "negative_feedback",
        }
        assert sum(reasons.values()) == q1["optimizer_invocations"]
        # Cache hit rate and synopsis footprint.
        assert 0.0 <= q1["cache"]["hit_rate"] <= 1.0
        assert q1["cache"]["hits"] > 0
        assert q1["synopsis_bytes"] > 0
        assert q1["predictor"]["transform_seconds"]["count"] >= 100
        # No budget configured: governor section absent.
        assert snapshot["governor"] is None
        assert {"counters", "gauges", "histograms"} <= set(
            snapshot["registry"]
        )

    def test_prometheus_exposition(self, service):
        text = service.prometheus()
        assert "# TYPE ppc_stage_seconds summary" in text
        assert 'ppc_executions_total{template="Q1"}' in text
        assert 'ppc_synopsis_bytes{template="Q1"}' in text
        assert 'quantile="0.95"' in text

    def test_governor_section_present_with_budget(self):
        service = PlanCachingService.tpch(
            scale_factor=0.1,
            config=PPCConfig(drift_response=False),
            memory_budget_bytes=10**9,
            seed=0,
        )
        service.register("Q1")
        governor = service.metrics()["governor"]
        assert governor == {
            "budget_bytes": 10**9,
            "total_bytes": governor["total_bytes"],
            "reclaimed_bytes": 0,
            "shrinks": 0,
            "drops": 0,
        }


class TestTracing:
    def test_explain_returns_forced_trace(self, service):
        instance = service.instance_at("Q1", np.array([0.4, 0.6]))
        trace = service.explain(instance)
        assert trace.decision == "forced"
        assert trace.template == "Q1"
        span_names = {span.name for span in trace.spans()}
        assert {"normalize", "predict"} <= span_names
        assert trace.outcome is not None
        assert trace.outcome["executed_plan"] >= 0

    def test_explain_rejects_unregistered_template(self, service):
        with pytest.raises(WorkloadError):
            service.explain(QueryInstance("Q3", (1.0, 2.0, 3.0)))

    def test_traces_accessor(self, service):
        assert service.traces("Q1") == service.traces()
        with pytest.raises(WorkloadError):
            service.traces("Q3")
        # Recorded traces are oldest-first by execution sequence.
        seqs = [trace.seq for trace in service.traces("Q1")]
        assert seqs == sorted(seqs)

    def test_metrics_trace_block_and_clock_source(self, service):
        snapshot = service.metrics()
        trace = snapshot["templates"]["Q1"]["trace"]
        assert trace["enabled"] is True
        assert trace["occupancy"] <= trace["capacity"] + trace["error_capacity"]
        assert trace["recorded"] >= trace["occupancy"]
        assert set(trace["sampler"]) == {
            "forced",
            "head",
            "error_bias",
            "interval",
            "skipped",
        }
        assert snapshot["clock"] == {
            "source": "repro.resilience.clocks.system_clock"
        }

    def test_injected_clock_is_reported(self):
        from repro.resilience.faults import VirtualClock

        service = PlanCachingService.tpch(
            scale_factor=0.1,
            config=PPCConfig(drift_response=False),
            clock=VirtualClock(),
            seed=0,
        )
        service.register("Q1")
        assert service.metrics()["clock"] == {"source": "VirtualClock"}
