"""Workload generation: binding, history, sampling, trajectories, drift."""

import numpy as np
import pytest

from repro.exceptions import WorkloadError
from repro.tpch import build_catalog, build_statistics, query_template
from repro.workload import (
    ManipulatedPlanSpace,
    QueryInstance,
    RandomTrajectoryWorkload,
    TemplateBinder,
    WorkloadHistory,
    sample_labeled_pool,
    sample_points,
)


@pytest.fixture(scope="module")
def binder():
    catalog = build_catalog(scale_factor=0.01)
    statistics = build_statistics(catalog, seed=0, gaussian_samples=5000)
    return TemplateBinder(query_template("Q1"), statistics)


class TestTemplateBinder:
    def test_round_trip_point_instance_point(self, binder):
        point = np.array([0.3, 0.7])
        instance = binder.to_instance(point)
        assert instance.template_name == "Q1"
        assert instance.parameter_degree == 2
        back = binder.to_point(instance)
        assert back == pytest.approx(point, abs=0.02)

    def test_instance_values_in_column_domains(self, binder):
        instance = binder.to_instance(np.array([0.5, 0.5]))
        s_date, l_partkey = instance.values
        assert 0.0 <= s_date <= 2557.0
        assert l_partkey >= 1.0

    def test_monotone_binding(self, binder):
        low = binder.to_instance(np.array([0.1, 0.5])).values[0]
        high = binder.to_instance(np.array([0.9, 0.5])).values[0]
        assert low < high

    def test_template_mismatch_rejected(self, binder):
        with pytest.raises(WorkloadError):
            binder.to_point(QueryInstance("Q2", (1.0, 2.0)))

    def test_arity_mismatch_rejected(self, binder):
        with pytest.raises(WorkloadError):
            binder.to_point(QueryInstance("Q1", (1.0,)))
        with pytest.raises(WorkloadError):
            binder.to_instance(np.array([0.5]))


class TestWorkloadHistory:
    def test_record_and_project(self):
        history = WorkloadHistory()
        history.record("Q1", [0.1, 0.2], plan_id=3, cost=10.0)
        history.record("Q1", [0.3, 0.4], plan_id=1, cost=20.0)
        history.record("Q2", [0.5, 0.6], plan_id=0, cost=5.0)
        assert len(history) == 3
        assert history.templates() == {"Q1", "Q2"}
        pool = history.sample_pool("Q1")
        assert len(pool) == 2
        assert pool.plan_ids.tolist() == [3, 1]

    def test_empty_template_projection_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadHistory().sample_pool("Q1")

    def test_negative_cost_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadHistory().record("Q1", [0.1], 0, -1.0)


class TestUniformSampling:
    def test_points_in_unit_cube(self):
        points = sample_points(3, 100, seed=0)
        assert points.shape == (100, 3)
        assert (points >= 0).all() and (points <= 1).all()

    def test_labeled_pool(self, q1_space):
        pool = sample_labeled_pool(q1_space, 50, seed=0)
        assert len(pool) == 50
        assert (pool.plan_ids < q1_space.plan_count).all()
        assert (pool.costs > 0).all()

    def test_invalid_count(self):
        with pytest.raises(WorkloadError):
            sample_points(2, 0)


class TestTrajectories:
    def test_shape_and_bounds(self):
        workload = RandomTrajectoryWorkload(2, spread=0.02, seed=0).generate(1000)
        assert workload.shape == (1000, 2)
        assert (workload >= 0).all() and (workload <= 1).all()

    def test_temporal_locality(self):
        """Consecutive points are far closer than random pairs."""
        workload = RandomTrajectoryWorkload(2, spread=0.01, seed=0).generate(500)
        consecutive = np.linalg.norm(np.diff(workload, axis=0), axis=1)
        rng = np.random.default_rng(1)
        random_pairs = np.linalg.norm(
            workload[rng.permutation(500)] - workload[rng.permutation(500)],
            axis=1,
        )
        assert np.median(consecutive) < np.median(random_pairs) / 3

    def test_spread_controls_jitter(self):
        tight = RandomTrajectoryWorkload(
            2, spread=0.01, trajectory_count=1, step_scale=0.0, momentum=0.0,
            seed=0,
        ).generate(300)
        loose = RandomTrajectoryWorkload(
            2, spread=0.08, trajectory_count=1, step_scale=0.0, momentum=0.0,
            seed=0,
        ).generate(300)
        assert tight.std(axis=0).mean() < loose.std(axis=0).mean()

    def test_trajectory_count_segments(self):
        workload = RandomTrajectoryWorkload(
            2, spread=0.001, trajectory_count=10, seed=0
        ).generate(95)
        assert workload.shape == (95, 2)

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            RandomTrajectoryWorkload(0)
        with pytest.raises(WorkloadError):
            RandomTrajectoryWorkload(2, spread=0.0)
        with pytest.raises(WorkloadError):
            RandomTrajectoryWorkload(2, trajectory_count=0)
        with pytest.raises(WorkloadError):
            RandomTrajectoryWorkload(2, momentum=1.0)


class TestManipulatedPlanSpace:
    def test_transparent_until_activated(self, q1_space):
        oracle = ManipulatedPlanSpace(q1_space, seed=0)
        points = sample_points(2, 100, seed=1)
        ids_base, costs_base = q1_space.label(points)
        ids, costs = oracle.label(points)
        assert (ids == ids_base).all()
        assert costs == pytest.approx(costs_base)

    def test_activation_scrambles_labels_and_costs(self, q1_space):
        oracle = ManipulatedPlanSpace(q1_space, seed=0)
        oracle.activate()
        points = sample_points(2, 200, seed=1)
        ids_base, costs_base = q1_space.label(points)
        ids, costs = oracle.label(points)
        assert (ids != ids_base).mean() > 0.5
        assert not np.allclose(costs, costs_base)
        # Labels stay valid plan ids.
        assert (ids >= 0).all() and (ids < q1_space.plan_count).all()

    def test_deactivation_restores_truth(self, q1_space):
        oracle = ManipulatedPlanSpace(q1_space, seed=0)
        oracle.activate()
        oracle.deactivate()
        points = sample_points(2, 50, seed=1)
        assert (oracle.plan_at(points) == q1_space.plan_at(points)).all()

    def test_scramble_is_deterministic(self, q1_space):
        a = ManipulatedPlanSpace(q1_space, seed=3)
        b = ManipulatedPlanSpace(q1_space, seed=3)
        a.activate()
        b.activate()
        points = sample_points(2, 50, seed=1)
        assert (a.plan_at(points) == b.plan_at(points)).all()

    def test_breaks_choice_predictability(self, q1_space):
        """Nearby points frequently disagree after manipulation."""
        oracle = ManipulatedPlanSpace(q1_space, resolution=16, seed=0)
        oracle.activate()
        rng = np.random.default_rng(2)
        anchors = rng.uniform(0.1, 0.9, size=(100, 2))
        neighbors = np.clip(anchors + rng.normal(0, 0.05, (100, 2)), 0, 1)
        disagreement = (
            oracle.plan_at(anchors) != oracle.plan_at(neighbors)
        ).mean()
        base_disagreement = (
            q1_space.plan_at(anchors) != q1_space.plan_at(neighbors)
        ).mean()
        assert disagreement > base_disagreement


class TestGreaterEqualPredicates:
    def test_geq_binding_round_trip(self):
        from repro.optimizer.expressions import (
            ColumnRef,
            ParamPredicate,
            QueryTemplate,
        )

        catalog = build_catalog(scale_factor=0.01)
        statistics = build_statistics(catalog, seed=0, gaussian_samples=5000)
        template = QueryTemplate(
            name="tail",
            tables=("orders",),
            predicates=(
                ParamPredicate(ColumnRef("orders", "o_date"), 0, op=">="),
            ),
        )
        binder = TemplateBinder(template, statistics)
        point = np.array([0.3])
        instance = binder.to_instance(point)
        back = binder.to_point(instance)
        assert back == pytest.approx(point, abs=0.02)

    def test_geq_value_decreases_with_selectivity(self):
        from repro.optimizer.expressions import (
            ColumnRef,
            ParamPredicate,
            QueryTemplate,
        )

        catalog = build_catalog(scale_factor=0.01)
        statistics = build_statistics(catalog, seed=0, gaussian_samples=5000)
        template = QueryTemplate(
            name="tail2",
            tables=("orders",),
            predicates=(
                ParamPredicate(ColumnRef("orders", "o_date"), 0, op=">="),
            ),
        )
        binder = TemplateBinder(template, statistics)
        # Higher selectivity of "o_date >= v" means a *smaller* v.
        low_sel = binder.to_instance(np.array([0.1])).values[0]
        high_sel = binder.to_instance(np.array([0.9])).values[0]
        assert high_sel < low_sel
