"""Handlers are either typed or visibly degrade-and-count."""
from repro.exceptions import PersistenceError, PredictionError


def load(path, fallback, counter):
    try:
        return open(path).read()
    except PersistenceError:
        counter.inc()
        return fallback


def probe(fn, monitor):
    try:
        return fn()
    except (PredictionError, ValueError) as exc:
        monitor.record_degradation("probe", exc)
        return None
