"""Ad-hoc metric names the dashboard will never find."""


def record(registry, template: str) -> None:
    registry.counter("ppc_surprise_total").inc()
    registry.histogram(f"ppc_latency_{template}").observe(1.0)
