"""Lifecycle-journal overhead on the predict/execute hot path.

Thin wrapper over :func:`repro.bench.runners.run_events_overhead` —
the same measurement core behind ``repro bench run``.  Two identically
seeded sessions run the same trajectory workload in lockstep: one with
the synopsis lifecycle event journal disabled (the shipped default,
where the journal object does not even exist and every emit site is a
single ``is None`` check) and one journaling every synopsis mutation
into the default 4096-slot ring.  Emission consumes no RNG and never
flips ``trace.active``, so the runner asserts the two sessions'
decisions match bit-for-bit (the lockstep parity test in ``tests/obs``
pins the same property per-field).

The acceptance bar from the lineage work: enabled with the
production-sized ring, the hot path slows by less than
``EVENTS_MAX_OVERHEAD_PCT`` percent.  The snapshot lands in
``benchmarks/results/BENCH_events.json``.
"""

from _bench_utils import write_bench_json, write_result
from repro.bench.runners import (
    EVENTS_MAX_OVERHEAD_PCT,
    EVENTS_MODES,
    EVENTS_PROBES,
    EVENTS_REPEATS,
    EVENTS_WARMUP,
    run_events_overhead,
)


def test_events_overhead(benchmark):
    envelope = benchmark.pedantic(
        run_events_overhead, rounds=1, iterations=1
    )
    modes = envelope["details"]["modes"]
    lines = [
        "Lifecycle-journal overhead on the predict/execute path",
        f"(Q1, {EVENTS_WARMUP} warmup + {EVENTS_REPEATS}x"
        f"{EVENTS_PROBES} probes, best of {EVENTS_REPEATS})",
        "",
    ]
    for name, __ in EVENTS_MODES:
        lines.append(
            f"{name:8s}: {modes[name]['us_per_instance']:8.2f} "
            f"us/instance  ({modes[name]['overhead_pct'] / 100.0:+.1%} "
            "vs off)"
        )
    lines.append(
        f"gate: enabled overhead < {EVENTS_MAX_OVERHEAD_PCT:.0f}% "
        "with bit-identical decisions"
    )
    write_result("events_overhead", lines)
    write_bench_json("events", envelope)
    # The runner already proved decision parity; this pins the cost bar.
    assert envelope["gate"]["parity"] is True
    assert (
        envelope["metrics"]["enabled_overhead_pct"]["value"]
        < EVENTS_MAX_OVERHEAD_PCT
    )
