"""Workload replay under three caching regimes (Figure 13).

* ``NO-CACHING`` — every instance pays full optimization plus optimal
  execution.
* ``PPC`` — the online framework: prediction overhead on every
  instance, optimization only on cache misses / exploration / feedback,
  execution of whatever plan was chosen (sub-optimal executions pay
  their true, higher cost).
* ``IDEAL`` — a hypothetical predictor with 100 % precision and recall:
  optimization only the first time each plan is needed, optimal
  execution always, the same prediction overhead.

The cumulative-time series these produce is what Figure 13 plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import PPCConfig
from repro.core.framework import TemplateSession
from repro.optimizer.plan_space import PlanSpace
from repro.simulation.timing import TimingModel


@dataclass
class RuntimeBreakdown:
    """Accumulated simulated time, by activity, for one regime."""

    label: str
    optimization_ms: float = 0.0
    execution_ms: float = 0.0
    overhead_ms: float = 0.0
    optimizer_invocations: int = 0
    cumulative_ms: list[float] = field(default_factory=list)
    #: Observability snapshot of the session that produced this
    #: breakdown (PPC regime only; the closed-form replays have none).
    metrics: "dict | None" = None

    @property
    def total_ms(self) -> float:
        return self.optimization_ms + self.execution_ms + self.overhead_ms

    def charge(
        self,
        optimization: float = 0.0,
        execution: float = 0.0,
        overhead: float = 0.0,
        invoked: bool = False,
    ) -> None:
        self.optimization_ms += optimization
        self.execution_ms += execution
        self.overhead_ms += overhead
        if invoked:
            self.optimizer_invocations += 1
        self.cumulative_ms.append(self.total_ms)


class RuntimeSimulator:
    """Replays one workload through the three regimes."""

    def __init__(
        self,
        plan_space: PlanSpace,
        config: "PPCConfig | None" = None,
        timing: "TimingModel | None" = None,
        seed: "int | np.random.Generator | None" = 0,
    ) -> None:
        self.plan_space = plan_space
        self.config = config or PPCConfig()
        self.timing = timing or TimingModel()
        self._seed = seed

    def run(
        self,
        workload: np.ndarray,
        batch_size: "int | None" = None,
    ) -> dict[str, RuntimeBreakdown]:
        """Simulate all three regimes over the same instance sequence.

        ``batch_size`` drives the PPC regime through the session's
        vectorized ``execute_batch`` path in chunks of that size; the
        lockstep parity guarantee makes the records — and therefore the
        breakdown — identical to the default per-instance replay, while
        exercising the batch hot path the throughput bench gates.
        """
        workload = np.asarray(workload, dtype=float)
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        optimize_ms = self.timing.optimization_ms(self.plan_space)

        no_cache = RuntimeBreakdown("NO-CACHING")
        ideal = RuntimeBreakdown("IDEAL")
        ppc = RuntimeBreakdown("PPC")

        # Ground truth for the whole workload, computed once.
        true_ids, true_costs = self.plan_space.label(workload)

        # NO-CACHING and IDEAL are closed-form replays.
        seen_plans: set[int] = set()
        for i in range(workload.shape[0]):
            execution = self.timing.execution_ms(float(true_costs[i]))
            no_cache.charge(
                optimization=optimize_ms, execution=execution, invoked=True
            )

            plan = int(true_ids[i])
            if plan in seen_plans:
                ideal.charge(
                    execution=execution, overhead=self.timing.predict_ms
                )
            else:
                seen_plans.add(plan)
                ideal.charge(
                    optimization=optimize_ms,
                    execution=execution,
                    overhead=self.timing.predict_ms + self.timing.insert_ms,
                    invoked=True,
                )

        # PPC runs the real framework.  Each record's ``optimizer_invoked``
        # flag accumulates into the breakdown (at most one invocation per
        # instance), so the count matches ``session.optimizer_invocations``
        # without mutating the breakdown from outside ``charge``.
        session = TemplateSession(self.plan_space, self.config, self._seed)
        if batch_size is None:
            records = [
                session.execute(workload[i])
                for i in range(workload.shape[0])
            ]
        else:
            records = []
            for start in range(0, workload.shape[0], batch_size):
                records.extend(
                    session.execute_batch(
                        workload[start : start + batch_size]
                    )
                )
        for record in records:
            optimization = optimize_ms if record.optimizer_invoked else 0.0
            overhead = self.timing.predict_ms
            if record.optimizer_invoked:
                overhead += self.timing.insert_ms
            ppc.charge(
                optimization=optimization,
                execution=self.timing.execution_ms(record.execution_cost),
                overhead=overhead,
                invoked=record.optimizer_invoked,
            )
        ppc.metrics = session.metrics.snapshot()

        return {"NO-CACHING": no_cache, "PPC": ppc, "IDEAL": ideal}
