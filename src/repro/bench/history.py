"""The append-only bench-run journal (``benchmarks/results/history.jsonl``).

One JSON line per (run, bench): ``run_id`` groups the benches of one
``repro bench run`` invocation, ``recorded`` is a UTC timestamp, and
``envelope`` is the full schema-v2 payload.  Appends go through the
fsynced :func:`repro.core.persistence.append_text` primitive, and reads
skip torn or blank lines instead of failing — a crashed run can lose
its last line, never the journal.

The journal is what turns the committed snapshots into a *trajectory*:
``repro bench history`` prints a metric's values run over run, and
``repro bench compare`` uses the run-over-run spread to widen its
regression allowance by measured noise (see :mod:`repro.bench.compare`).
"""

from __future__ import annotations

import json
import pathlib
from datetime import datetime, timezone
from typing import Any

from repro.bench.schema import validate_envelope
from repro.core.persistence import append_text
from repro.exceptions import BenchError

__all__ = [
    "append_run",
    "load_history",
    "metric_history",
    "next_run_id",
]


def load_history(path: "str | pathlib.Path") -> list[dict[str, Any]]:
    """All parseable journal entries, in file order."""
    path = pathlib.Path(path)
    if not path.exists():
        return []
    entries: list[dict[str, Any]] = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn tail from a crashed append; skip, don't fail
        if isinstance(entry, dict) and isinstance(entry.get("envelope"), dict):
            entries.append(entry)
    return entries


def next_run_id(entries: list[dict[str, Any]]) -> int:
    """One past the largest run id seen (run ids start at 1)."""
    largest = 0
    for entry in entries:
        run_id = entry.get("run_id")
        if isinstance(run_id, int) and run_id > largest:
            largest = run_id
    return largest + 1


def append_run(
    path: "str | pathlib.Path",
    envelopes: dict[str, dict[str, Any]],
    suite: str = "",
    recorded: "str | None" = None,
) -> int:
    """Append one run (several bench envelopes) to the journal.

    Returns the run id assigned.  Envelopes are validated first — an
    invalid envelope must not poison the journal.
    """
    if not envelopes:
        raise BenchError("cannot append an empty run to the history")
    for envelope in envelopes.values():
        validate_envelope(envelope)
    run_id = next_run_id(load_history(path))
    if recorded is None:
        recorded = datetime.now(timezone.utc).isoformat(timespec="seconds")
    lines = [
        json.dumps(
            {
                "run_id": run_id,
                "recorded": recorded,
                "suite": suite,
                "bench": bench,
                "envelope": envelope,
            },
            sort_keys=True,
        )
        for bench, envelope in sorted(envelopes.items())
    ]
    append_text(path, "".join(line + "\n" for line in lines))
    return run_id


def latest_run(
    entries: list[dict[str, Any]],
) -> "tuple[int, dict[str, dict[str, Any]]]":
    """The newest run's id and its envelopes by bench name."""
    run_id = next_run_id(entries) - 1
    if run_id < 1:
        raise BenchError("bench history is empty; run `repro bench run` first")
    envelopes = {
        str(entry["bench"]): entry["envelope"]
        for entry in entries
        if entry.get("run_id") == run_id and "bench" in entry
    }
    return run_id, envelopes


def metric_history(
    entries: list[dict[str, Any]],
    bench: str,
    metric_name: str,
    exclude_run: "int | None" = None,
) -> list[float]:
    """A metric's journal trajectory, oldest first."""
    values: list[float] = []
    for entry in entries:
        if entry.get("bench") != bench:
            continue
        if exclude_run is not None and entry.get("run_id") == exclude_run:
            continue
        metric_entry = entry["envelope"].get("metrics", {}).get(metric_name)
        if isinstance(metric_entry, dict) and isinstance(
            metric_entry.get("value"), (int, float)
        ):
            values.append(float(metric_entry["value"]))
    return values
