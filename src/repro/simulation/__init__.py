"""End-to-end runtime simulation (Section V-C, Figure 13).

The paper evaluates runtime benefit with an out-of-engine prototype
that simulates plan caching against a commercial DBMS.  This package
reproduces that simulation: a :class:`~repro.simulation.timing.TimingModel`
converts optimizer invocations, plan executions and prediction
overheads into wall-clock time, and
:class:`~repro.simulation.runtime.RuntimeSimulator` replays a workload
under three regimes — no caching (optimize everything), the PPC
framework, and the hypothetical IDEAL predictor with perfect precision
and recall.
"""

from repro.simulation.runtime import RuntimeBreakdown, RuntimeSimulator
from repro.simulation.timing import TimingModel

__all__ = ["RuntimeBreakdown", "RuntimeSimulator", "TimingModel"]
