"""The random-trajectories online workload (Section V, Figure 7).

A cursor moves along several independent, randomly produced
trajectories over the plan space; each emitted query instance lands at
a Gaussian offset from the cursor with standard deviation ``r_d``.
Small ``r_d`` gives a tightly clustered, slowly wandering workload
(strong temporal locality — the easy case); large ``r_d`` spreads the
instances out, forcing the predictor to answer over larger radii.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import WorkloadError
from repro.rng import as_generator


class RandomTrajectoryWorkload:
    """Generator of trajectory-based plan-space workloads."""

    def __init__(
        self,
        dimensions: int,
        spread: float = 0.01,
        trajectory_count: int = 10,
        step_scale: float = 0.03,
        momentum: float = 0.8,
        seed: "int | np.random.Generator | None" = None,
    ) -> None:
        if dimensions < 1:
            raise WorkloadError("dimensions must be >= 1")
        if spread <= 0.0:
            raise WorkloadError("spread (r_d) must be > 0")
        if trajectory_count < 1:
            raise WorkloadError("need at least one trajectory")
        if not 0.0 <= momentum < 1.0:
            raise WorkloadError("momentum must be in [0, 1)")
        self.dimensions = dimensions
        self.spread = spread
        self.trajectory_count = trajectory_count
        self.step_scale = step_scale
        self.momentum = momentum
        self._rng = as_generator(seed)

    def _one_trajectory(self, length: int) -> np.ndarray:
        """A smooth random walk (momentum-damped) emitting test points."""
        rng = self._rng
        cursor = rng.uniform(0.0, 1.0, size=self.dimensions)
        velocity = rng.normal(0.0, self.step_scale, size=self.dimensions)
        points = np.empty((length, self.dimensions))
        for i in range(length):
            points[i] = np.clip(
                cursor + rng.normal(0.0, self.spread, size=self.dimensions),
                0.0,
                1.0,
            )
            velocity = self.momentum * velocity + rng.normal(
                0.0, self.step_scale, size=self.dimensions
            )
            cursor = cursor + velocity
            # Reflect off the plan-space walls so trajectories stay inside.
            for axis in range(self.dimensions):
                if cursor[axis] < 0.0:
                    cursor[axis] = -cursor[axis]
                    velocity[axis] = -velocity[axis]
                elif cursor[axis] > 1.0:
                    cursor[axis] = 2.0 - cursor[axis]
                    velocity[axis] = -velocity[axis]
            cursor = np.clip(cursor, 0.0, 1.0)
        return points

    def generate(self, count: int = 1000) -> np.ndarray:
        """``count`` workload points across the configured trajectories.

        Points are emitted trajectory by trajectory, preserving the
        temporal locality an application's parameter drift produces.
        """
        if count < 1:
            raise WorkloadError("workload size must be >= 1")
        per_trajectory = [
            count // self.trajectory_count
            + (1 if i < count % self.trajectory_count else 0)
            for i in range(self.trajectory_count)
        ]
        segments = [
            self._one_trajectory(length)
            for length in per_trajectory
            if length > 0
        ]
        return np.vstack(segments)
