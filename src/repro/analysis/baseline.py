"""Committed baseline: pre-existing findings burned down incrementally.

A new rule lands with the violations it finds already in the tree; the
baseline lets the rule gate *new* violations immediately while the old
ones are fixed over time (or kept, with a written justification).
Entries match findings by ``(rule, path, stripped source line)`` — not
line numbers — so unrelated edits that shift code do not invalidate
the baseline, while any edit to the offending line itself forces a
fresh decision.

Entries that no longer match anything are *stale* and reported: a
baseline only shrinks.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from collections.abc import Iterable

from repro.analysis.core import Finding
from repro.core.persistence import atomic_write_text
from repro.exceptions import ConfigurationError

#: Schema version of the baseline document.
BASELINE_VERSION = 1

#: Default committed baseline location, repo-root relative.
DEFAULT_BASELINE = ".repro-lint-baseline.json"


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted pre-existing finding, with its justification."""

    rule: str
    path: str
    snippet: str
    reason: str = ""

    @property
    def key(self) -> "tuple[str, str, str]":
        return (self.rule, self.path, self.snippet)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "snippet": self.snippet,
            "reason": self.reason,
        }


def load_baseline(path: "str | pathlib.Path") -> list[BaselineEntry]:
    """Read a baseline file; a missing file is an empty baseline."""
    path = pathlib.Path(path)
    if not path.exists():
        return []
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(
            f"unreadable lint baseline {path}: {exc}"
        ) from exc
    if (
        not isinstance(document, dict)
        or document.get("version") != BASELINE_VERSION
        or not isinstance(document.get("entries"), list)
    ):
        raise ConfigurationError(
            f"{path}: not a version-{BASELINE_VERSION} lint baseline"
        )
    entries = []
    for raw in document["entries"]:
        try:
            entries.append(
                BaselineEntry(
                    rule=raw["rule"],
                    path=raw["path"],
                    snippet=raw["snippet"],
                    reason=raw.get("reason", ""),
                )
            )
        except (TypeError, KeyError) as exc:
            raise ConfigurationError(
                f"{path}: malformed baseline entry {raw!r}"
            ) from exc
    return entries


def write_baseline(
    findings: Iterable[Finding],
    path: "str | pathlib.Path",
    reason: str = "pre-existing; burn down or justify",
) -> int:
    """Write the current findings as the new baseline; returns the
    entry count.  Duplicate keys collapse to one entry."""
    entries: dict[tuple, BaselineEntry] = {}
    for finding in findings:
        entry = BaselineEntry(
            rule=finding.rule,
            path=finding.path,
            snippet=finding.snippet,
            reason=reason,
        )
        entries.setdefault(entry.key, entry)
    document = {
        "version": BASELINE_VERSION,
        "entries": [
            entry.to_dict()
            for entry in sorted(
                entries.values(), key=lambda e: (e.path, e.rule, e.snippet)
            )
        ],
    }
    atomic_write_text(
        path, json.dumps(document, indent=2, sort_keys=True) + "\n"
    )
    return len(entries)


def apply_baseline(
    findings: Iterable[Finding],
    baseline: Iterable[BaselineEntry],
) -> "tuple[list[Finding], list[Finding], list[BaselineEntry]]":
    """Split findings against a baseline.

    Returns ``(fresh, accepted, stale)``: findings not covered by the
    baseline, findings the baseline accepts, and baseline entries that
    matched nothing (candidates for deletion).
    """
    by_key: dict[tuple, BaselineEntry] = {
        entry.key: entry for entry in baseline
    }
    matched: set = set()
    fresh: list[Finding] = []
    accepted: list[Finding] = []
    for finding in findings:
        key = (finding.rule, finding.path, finding.snippet)
        if key in by_key:
            matched.add(key)
            accepted.append(finding)
        else:
            fresh.append(finding)
    stale = [
        entry for key, entry in by_key.items() if key not in matched
    ]
    return fresh, accepted, stale
