"""NAIVE grid predictor."""

import numpy as np
import pytest

from repro.core.naive import NaivePredictor
from repro.core.point import SamplePool
from repro.exceptions import PredictionError


def _pool():
    pool = SamplePool(2)
    rng = np.random.default_rng(0)
    for x in rng.uniform(0.0, 0.45, size=(60, 2)):
        pool.add(x, 0, cost=5.0)
    for x in rng.uniform(0.55, 1.0, size=(60, 2)):
        pool.add(x, 1, cost=9.0)
    return pool


class TestPrediction:
    def test_cluster_interiors(self):
        predictor = NaivePredictor(_pool(), resolution=8, radius=0.05)
        assert predictor.predict([0.2, 0.2]).plan_id == 0
        assert predictor.predict([0.8, 0.8]).plan_id == 1

    def test_empty_region_returns_null(self):
        predictor = NaivePredictor(
            _pool(), resolution=8, radius=0.01, include_neighbors=False
        )
        assert predictor.predict([0.51, 0.49]) is None

    def test_neighbor_inclusion_expands_counts(self):
        pool = _pool()
        lone = NaivePredictor(
            pool, resolution=8, radius=0.2, include_neighbors=False
        )
        wide = NaivePredictor(pool, resolution=8, radius=0.2)
        x = np.array([0.3, 0.3])
        assert wide.counts_around(x).sum() >= lone.counts_around(x).sum()

    def test_estimated_cost_is_bucket_average(self):
        predictor = NaivePredictor(
            _pool(), resolution=4, radius=0.01, include_neighbors=False
        )
        prediction = predictor.predict([0.2, 0.2])
        assert prediction.estimated_cost == pytest.approx(5.0)

    def test_online_insert(self):
        pool = SamplePool(2)
        predictor = NaivePredictor(
            pool, plan_count=2, resolution=4, radius=0.05,
            confidence_threshold=0.5,
        )
        assert predictor.predict([0.1, 0.1]) is None
        for __ in range(5):
            predictor.insert(np.array([0.1, 0.1]), plan_id=1, cost=2.0)
        prediction = predictor.predict([0.1, 0.1])
        assert prediction.plan_id == 1

    def test_empty_pool_needs_plan_count(self):
        with pytest.raises(PredictionError):
            NaivePredictor(SamplePool(2))


class TestSpace:
    def test_space_formula(self):
        predictor = NaivePredictor(_pool(), plan_count=4, resolution=8)
        assert predictor.space_bytes() == 4 * 8 * 8 * 8

    def test_misalignment_weakness(self, q1_space, q1_pool, q1_test):
        """NAIVE answers fewer points than BASELINE at equal gamma —
        the bucket-misalignment weakness the paper reports."""
        from repro.core.baseline import BaselinePredictor

        test, truth = q1_test
        naive = NaivePredictor(
            q1_pool, resolution=8, radius=0.05, confidence_threshold=0.7
        )
        baseline = BaselinePredictor(
            q1_pool, radius=0.05, confidence_threshold=0.7
        )
        naive_answered = sum(
            1 for i in range(200) if naive.predict(test[i]) is not None
        )
        baseline_answered = sum(
            1 for i in range(200) if baseline.predict(test[i]) is not None
        )
        assert naive_answered <= baseline_answered
