"""Timing model for the runtime simulation.

Converts the simulator's abstract quantities into milliseconds:

* **optimization time** — what plan caching saves.  Scales with the
  number of join candidates the DP enumerator explores, so higher
  parameter-degree templates cost more to optimize (as in a real
  system).
* **execution time** — cost-model units times a fixed unit time.  The
  PPC premise (Section I) targets workloads where optimization is a
  significant fraction of execution for cheap queries, so the defaults
  put the two on comparable scales for the cheap region of the plan
  spaces.
* **prediction overhead** — charged per cache probe; the paper uses its
  prototype's timings as an upper bound.  The default is measured from
  this library's own predictor (fractions of a millisecond).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.optimizer.plan_space import PlanSpace


@dataclass(frozen=True)
class TimingModel:
    """Milliseconds per simulated activity."""

    #: Base optimizer invocation latency (parse/rewrite/setup).
    optimize_base_ms: float = 5.0
    #: Additional optimizer latency per table in the template (join
    #: enumeration grows quickly with the join graph).
    optimize_per_table_ms: float = 12.0
    #: Execution milliseconds per cost-model unit.  The default puts
    #: execution on the same order as optimization for the cheap regions
    #: of the plan spaces — the regime where plan caching pays (Sec. I).
    execute_unit_ms: float = 0.002
    #: Plan-cache probe + clustering prediction overhead.
    predict_ms: float = 0.35
    #: Histogram insertion overhead per optimized point.
    insert_ms: float = 0.08

    def __post_init__(self) -> None:
        for name in (
            "optimize_base_ms",
            "optimize_per_table_ms",
            "execute_unit_ms",
            "predict_ms",
            "insert_ms",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"timing constant {name} must be >= 0")

    def optimization_ms(self, plan_space: PlanSpace) -> float:
        """Optimizer latency for one invocation on this template."""
        tables = len(plan_space.template.tables)
        return self.optimize_base_ms + self.optimize_per_table_ms * tables

    def execution_ms(self, cost_units: float) -> float:
        """Execution latency of a plan with the given cost."""
        return cost_units * self.execute_unit_ms
