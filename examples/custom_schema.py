"""Bring your own schema: PPC over a non-TPC-H catalog.

The library is not tied to TPC-H: this example defines a small web-shop
schema (users, sessions, events), declares a parameterized analytics
template over it, builds its plan space with the bundled optimizer, and
compares the offline predictors on it.  It also shows the
value-level side of the framework: binding actual parameter *values*
(timestamps, scores) to plan-space points through column statistics.

Run:  python examples/custom_schema.py
"""

import numpy as np

from repro import BaselinePredictor, HistogramPredictor, NaivePredictor
from repro.metrics import evaluate_predictions
from repro.optimizer import (
    Catalog,
    ColumnRef,
    JoinPredicate,
    ParamPredicate,
    PlanSpace,
    QueryTemplate,
)
from repro.optimizer.catalog import Column, Index, Table
from repro.optimizer.statistics import (
    CatalogStatistics,
    ColumnStatistics,
    TableStatistics,
)
from repro.workload import QueryInstance, TemplateBinder, sample_labeled_pool
from repro.workload import sample_points


def build_webshop_catalog() -> Catalog:
    catalog = Catalog()
    catalog.add_table(
        Table(
            "users",
            200_000,
            {
                "user_id": Column("user_id", 1, 200_000, 200_000),
                "signup_ts": Column(
                    "signup_ts", 0, 10_000, 10_000, distribution="gaussian"
                ),
                "score": Column("score", 0, 100, 100),
            },
        )
    )
    catalog.add_table(
        Table(
            "sessions",
            2_000_000,
            {
                "session_id": Column("session_id", 1, 2_000_000, 2_000_000),
                "user_id": Column("user_id", 1, 200_000, 200_000),
                "started_ts": Column(
                    "started_ts", 0, 10_000, 10_000, distribution="gaussian"
                ),
            },
        )
    )
    catalog.add_table(
        Table(
            "events",
            20_000_000,
            {
                "event_id": Column("event_id", 1, 20_000_000, 20_000_000),
                "session_id": Column("session_id", 1, 2_000_000, 2_000_000),
                "event_ts": Column(
                    "event_ts", 0, 10_000, 10_000, distribution="gaussian"
                ),
            },
        )
    )
    catalog.add_index(Index("pk_users", "users", "user_id", True, True))
    catalog.add_index(Index("pk_sessions", "sessions", "session_id", True, True))
    catalog.add_index(Index("fk_sessions_user", "sessions", "user_id"))
    catalog.add_index(Index("fk_events_session", "events", "session_id"))
    catalog.add_index(Index("ix_users_signup", "users", "signup_ts"))
    catalog.add_index(Index("ix_sessions_started", "sessions", "started_ts"))
    catalog.add_index(Index("ix_events_ts", "events", "event_ts"))
    return catalog


def build_statistics(catalog: Catalog) -> CatalogStatistics:
    statistics = CatalogStatistics(catalog)
    rng = np.random.default_rng(0)
    for table in catalog.tables.values():
        table_stats = TableStatistics(table.name, table.row_count)
        for column in table.columns.values():
            if column.distribution == "gaussian":
                sketch = ColumnStatistics.gaussian(
                    column, mean=5_000, std=1_800, seed=rng
                )
            else:
                sketch = ColumnStatistics.uniform(column)
            table_stats.add(sketch)
        statistics.add_table(table_stats)
    return statistics


def main() -> None:
    catalog = build_webshop_catalog()
    template = QueryTemplate(
        name="recent_activity",
        tables=("users", "sessions", "events"),
        joins=(
            JoinPredicate(
                ColumnRef("users", "user_id"), ColumnRef("sessions", "user_id")
            ),
            JoinPredicate(
                ColumnRef("sessions", "session_id"),
                ColumnRef("events", "session_id"),
            ),
        ),
        predicates=(
            ParamPredicate(ColumnRef("users", "signup_ts"), 0),
            ParamPredicate(ColumnRef("sessions", "started_ts"), 1),
            ParamPredicate(ColumnRef("events", "event_ts"), 2),
        ),
        description="Events of sessions of users in overlapping windows.",
    )
    print(f"Template: {template.sql()}")

    space = PlanSpace(template, catalog, seed=0)
    print(f"Plan space: {space.plan_count} plans over "
          f"[0,1]^{space.dimensions}\n")

    # Value-level binding: turn application parameter values into a
    # plan-space point and back.
    binder = TemplateBinder(template, build_statistics(catalog))
    instance = QueryInstance(
        "recent_activity", (6_000.0, 4_200.0, 5_500.0)
    )
    point = binder.to_point(instance)
    print(f"instance {instance.values} -> plan-space point "
          f"{np.round(point, 3)} -> plan "
          f"P{int(space.plan_at(point[None, :])[0])}\n")

    # Offline comparison of the predictors on this custom plan space.
    pool = sample_labeled_pool(space, 2000, seed=42)
    test = sample_points(space.dimensions, 500, seed=43)
    truth = space.plan_at(test)
    predictors = {
        "BASELINE": BaselinePredictor(
            pool, radius=0.1, confidence_threshold=0.7
        ),
        "NAIVE": NaivePredictor(
            pool, resolution=8, radius=0.1, confidence_threshold=0.7
        ),
        "LSH-HISTOGRAMS": HistogramPredictor(
            pool, transforms=5, max_buckets=40, radius=0.1,
            confidence_threshold=0.7, seed=1,
        ),
    }
    print(f"{'predictor':>15s} {'precision':>10s} {'recall':>8s} "
          f"{'space bytes':>12s}")
    for name, predictor in predictors.items():
        ids = [
            None if p is None else p.plan_id
            for p in predictor.predict_batch(test)
        ]
        metrics = evaluate_predictions(ids, truth)
        print(f"{name:>15s} {metrics.precision:10.3f} "
              f"{metrics.recall:8.3f} {predictor.space_bytes():12,d}")


if __name__ == "__main__":
    main()
