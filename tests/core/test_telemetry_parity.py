"""Telemetry must not perturb decisions: sampled == unsampled, bit for bit.

The time-series sampler and the quality scorecard are strictly
read-only over session state and consume no RNG, so two frameworks
built from the same seed must produce identical decision streams even
when one snapshots every metric each simulated second and refreshes the
scorecard gauges on every snapshot while the other runs with telemetry
disabled.
"""

import pytest

from repro.config import PPCConfig, TelemetryConfig
from repro.core.framework import PPCFramework
from repro.obs import names as metric_names
from repro.resilience import VirtualClock
from repro.workload import RandomTrajectoryWorkload


def _framework(tiny_space, telemetry: TelemetryConfig):
    clock = VirtualClock()
    config = PPCConfig(
        confidence_threshold=0.7,
        mean_invocation_probability=0.05,
        drift_response=False,
        telemetry=telemetry,
    )
    framework = PPCFramework(config, seed=11, clock=clock, sleep=clock.sleep)
    framework.register(tiny_space)
    return framework, clock


def _record_key(record):
    return (
        record.predicted,
        record.confidence,
        record.optimizer_invoked,
        record.invocation_reason,
        record.executed_plan,
        record.execution_cost,
        record.optimal_plan,
        record.degraded,
        record.fallback_source,
    )


#: The most aggressive cadence: a snapshot every simulated second, a
#: scorecard refresh on every snapshot.
AGGRESSIVE = TelemetryConfig(sample_interval=1.0, quality_every=1)


class TestTelemetryParity:
    def test_sampled_run_matches_unsampled_run(self, tiny_space):
        plain, plain_clock = _framework(
            tiny_space, TelemetryConfig(enabled=False)
        )
        sampled, sampled_clock = _framework(tiny_space, AGGRESSIVE)
        workload = RandomTrajectoryWorkload(2, spread=0.05, seed=4)
        for x in workload.generate(150):
            a = plain.execute("tiny", x)
            b = sampled.execute("tiny", x)
            assert _record_key(a) == _record_key(b)
            plain_clock.advance(1.0)
            sampled_clock.advance(1.0)
        assert (
            plain.session("tiny").optimizer_invocations
            == sampled.session("tiny").optimizer_invocations
        )
        # The instrumented twin really did sample and refresh gauges.
        assert sampled.telemetry.sample_count > 100
        assert (
            sampled.metrics.gauge_value(
                metric_names.QUALITY_COVERAGE, template="tiny"
            )
            > 0.0
        )
        assert plain.telemetry is None

    def test_sampled_run_consumes_identical_rng_stream(self, tiny_space):
        plain, plain_clock = _framework(
            tiny_space, TelemetryConfig(enabled=False)
        )
        sampled, sampled_clock = _framework(tiny_space, AGGRESSIVE)
        workload = RandomTrajectoryWorkload(2, spread=0.05, seed=8)
        for x in workload.generate(60):
            plain.execute("tiny", x)
            sampled.execute("tiny", x)
            plain_clock.advance(1.0)
            sampled_clock.advance(1.0)
        # Telemetry consumed zero randomness: the next draw from each
        # session's internal RNG must agree.
        assert (
            plain.session("tiny").online._rng.random()
            == sampled.session("tiny").online._rng.random()
        )

    def test_mid_stream_quality_refresh_is_decision_neutral(self, tiny_space):
        plain, plain_clock = _framework(
            tiny_space, TelemetryConfig(enabled=False)
        )
        probed, probed_clock = _framework(
            tiny_space, TelemetryConfig(enabled=False)
        )
        workload = RandomTrajectoryWorkload(2, spread=0.05, seed=6)
        for i, x in enumerate(workload.generate(90)):
            a = plain.execute("tiny", x)
            b = probed.execute("tiny", x)
            assert _record_key(a) == _record_key(b)
            if i % 13 == 5:
                # An explicit scorecard probe mid-stream changes nothing.
                probed.refresh_quality()
            plain_clock.advance(1.0)
            probed_clock.advance(1.0)

    def test_regret_counter_tracks_recorded_suboptimality(self, tiny_space):
        framework, clock = _framework(tiny_space, AGGRESSIVE)
        total = 0.0
        workload = RandomTrajectoryWorkload(2, spread=0.05, seed=2)
        for x in workload.generate(80):
            record = framework.execute("tiny", x)
            total += max(0.0, record.suboptimality - 1.0)
            clock.advance(1.0)
        assert framework.metrics.counter_value(
            metric_names.REGRET_TOTAL, template="tiny"
        ) == pytest.approx(total)
