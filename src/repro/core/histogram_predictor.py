"""APPROXIMATE-LSH-HISTOGRAMS: z-ordered synopses in database histograms.

Section IV-C replaces the per-grid cell arrays of APPROXIMATE-LSH with
database histograms: the cells of each transformed grid are linearized
onto ``[0, 1]`` by a z-order curve, and for every (transform, plan)
pair a histogram summarizes the distribution of that plan's points
along the z-axis, together with their average execution cost.  Density
around a test point becomes a histogram range query over
``[T(x) - delta, T(x) + delta]``, where ``2 * delta`` equals the volume
of the radius-``d`` hypersphere.

Two sanity checks keep the lossy summarization honest:

* **confidence** (Section IV-A) — the majority plan must dominate the
  z-range by enough margin; this suppresses the false positives a
  histogram bucket spanning non-contiguous z-intervals would cause;
* **noise elimination** — the majority plan's density must exceed a
  fixed fraction of the total sample count, suppressing z-order
  artifacts that place a few far-away points into the queried range.
"""

from __future__ import annotations

import math
from time import perf_counter
from typing import TYPE_CHECKING

import numpy as np

from repro.core.confidence import ConfidenceModel
from repro.core.point import SamplePool
from repro.core.predictor import (
    PlanPredictor,
    Prediction,
    median_supported,
)
from repro.core.relevance import apply_axis_weights
from repro.exceptions import ConfigurationError, PredictionError
from repro.histograms import (
    EquiDepthHistogram,
    EquiWidthHistogram,
    Histogram,
    IncrementalHistogram,
    MaxDiffHistogram,
    VOptimalHistogram,
)
from repro.lsh.grid import Grid
from repro.lsh.stacked import StackedEnsemble
from repro.lsh.transforms import TransformEnsemble
from repro.lsh.zorder import ZOrderCurve

from repro.geometry import ball_volume

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import MetricsRegistry
    from repro.obs.events import _TemplateEmitter
    from repro.obs.tracing import DecisionTrace

_STATIC_BUILDERS = {
    "maxdiff": MaxDiffHistogram,
    "equidepth": EquiDepthHistogram,
    "equiwidth": EquiWidthHistogram,
    "voptimal": VOptimalHistogram,
}


class HistogramPredictor(PlanPredictor):
    """The paper's flagship structure: LSH + z-order + histograms."""

    def __init__(
        self,
        pool: SamplePool,
        plan_count: "int | None" = None,
        transforms: int = 5,
        resolution: int = 16,
        max_buckets: int = 40,
        radius: float = 0.05,
        confidence_threshold: float = 0.7,
        noise_fraction: "float | None" = None,
        histogram_kind: str = "maxdiff",
        output_dims: "int | None" = None,
        aggregation: str = "median",
        axis_weights: "np.ndarray | None" = None,
        seed: "int | np.random.Generator | None" = 0,
        confidence_model: "ConfidenceModel | None" = None,
    ) -> None:
        if resolution < 2 or resolution & (resolution - 1):
            raise ConfigurationError("resolution must be a power of two >= 2")
        if histogram_kind not in (*_STATIC_BUILDERS, "incremental"):
            raise ConfigurationError(
                f"unknown histogram kind {histogram_kind!r}"
            )
        if radius <= 0.0:
            raise PredictionError("radius must be > 0")
        if aggregation not in ("median", "mean"):
            raise ConfigurationError(f"unknown aggregation {aggregation!r}")
        self.dimensions = pool.dimensions
        self.radius = radius
        self.confidence_threshold = confidence_threshold
        self.noise_fraction = noise_fraction
        self.max_buckets = max_buckets
        self.histogram_kind = histogram_kind
        self.aggregation = aggregation
        self.axis_weights = (
            None if axis_weights is None
            else np.asarray(axis_weights, dtype=float)
        )
        self.model = confidence_model or ConfidenceModel()

        # Default s = r; pass output_dims < r explicitly for
        # dimensionality reduction (useful only on redundant axes).
        self.ensemble = TransformEnsemble(
            transforms,
            self.dimensions,
            output_dims=output_dims,
            resolution=resolution,
            seed=seed,
        )
        self.grids = [
            Grid(*transform.output_bounds, resolution)
            for transform in self.ensemble
        ]
        output_dims = self.ensemble.transforms[0].output_dims
        bits = int(math.log2(resolution))
        if output_dims * bits > 62:
            bits = max(1, 62 // output_dims)
        self.curve = ZOrderCurve(output_dims, bits)
        self._rebuild_stacked()

        # 2*delta = volume of the radius-d hypersphere (Section IV-C),
        # floored at one z-order cell so tiny radii still see the
        # containing cell.
        self.delta = max(
            ball_volume(radius, self.dimensions) / 2.0,
            self.curve.cell_extent(),
        )

        if plan_count is None:
            if len(pool) == 0:
                raise PredictionError(
                    "APPROXIMATE-LSH-HISTOGRAMS needs samples "
                    "or an explicit plan count"
                )
            plan_count = int(pool.plan_ids.max()) + 1
        self.plan_count = plan_count
        #: Number of points inserted (integer, weight-independent).
        self.total_points = 0
        #: Total inserted mass: verified points carry weight 1, positive
        #: feedback inserts discounted weights.  Noise elimination
        #: compares against this, matching the weighted bucket counts.
        self.total_mass = 0.0
        self._histograms: list[list[Histogram]] = []
        self._metrics = None
        self._transform_timer = None
        self._range_timer = None
        #: Lifecycle event emitter (``repro.obs.events``); ``None`` until
        #: the owning session binds one, so the construction-time pool
        #: replay below journals nothing and the disabled path stays a
        #: single ``is None`` check.
        self._events = None
        #: Monotone synopsis-mutation counter: bumped by ``insert`` and
        #: ``drop`` so batch consumers (``TemplateSession.execute_batch``)
        #: can detect when precomputed predictions went stale.
        self._mutations = 0
        self._build_histograms(pool)

    def _rebuild_stacked(self) -> None:
        """(Re)build the struct-of-arrays transform/grid view.

        Derived state: must be called again after ``ensemble`` or
        ``grids`` are replaced wholesale (persistence restore does).
        """
        self._stacked = StackedEnsemble(
            self.ensemble, self.grids, curve=self.curve
        )

    @property
    def mutation_count(self) -> int:
        """Number of synopsis mutations (inserts and drops) so far."""
        return self._mutations

    def bind_metrics(self, registry: "MetricsRegistry", **labels) -> None:
        """Publish per-predict transform / range-query timings.

        Called by the owning session once the registry and template
        label are known; predictors without a binding skip all timing.
        """
        from repro.obs import names as metric_names

        self._metrics = registry
        self._transform_timer = registry.histogram(
            metric_names.PREDICT_TRANSFORM_SECONDS, **labels
        )
        self._range_timer = registry.histogram(
            metric_names.PREDICT_RANGE_QUERY_SECONDS, **labels
        )

    def bind_events(self, emitter: "_TemplateEmitter") -> None:
        """Attach a lifecycle event emitter (``repro.obs.events``).

        Late binding, like :meth:`bind_metrics`: the constructor's pool
        replay runs before any emitter exists, so the journal records
        the synopsis *going live* (one ``histogram_built`` event) and
        every mutation after that, not the seed replay.
        """
        self._events = emitter
        self._emit_event(
            "histogram_built",
            histogram_kind=self.histogram_kind,
            transforms=len(self.ensemble),
            plans=self.plan_count,
            points=self.total_points,
        )

    def _emit_event(self, kind: str, **fields) -> None:
        """Journal one lifecycle event if an emitter is bound."""
        if self._events is not None:
            self._events(kind, **fields)

    # ------------------------------------------------------------------
    # Construction / population
    # ------------------------------------------------------------------
    def _new_histogram(self) -> Histogram:
        return IncrementalHistogram(self.max_buckets)

    def _build_histograms(self, pool: SamplePool) -> None:
        if self.histogram_kind == "incremental" or len(pool) == 0:
            self._histograms = [
                [self._new_histogram() for __ in range(self.plan_count)]
                for __ in self.ensemble
            ]
            for point in pool.points():
                self.insert(point.coords, point.plan_id, point.cost)
            return

        builder = _STATIC_BUILDERS[self.histogram_kind]
        plan_ids = pool.plan_ids
        costs = pool.costs
        z_all = self._z_values_batch(pool.coords)
        for index in range(len(self.ensemble)):
            z_values = z_all[index]
            row: list[Histogram] = []
            for plan in range(self.plan_count):
                mask = plan_ids == plan
                row.append(
                    builder.build(
                        z_values[mask],
                        costs[mask],
                        bucket_count=self.max_buckets,
                    )
                )
            self._histograms.append(row)
        self.total_points = len(pool)
        self.total_mass = float(len(pool))

    def _z_values_batch(self, points: np.ndarray) -> np.ndarray:
        """z-values ``(t, m)`` of each point under every transform."""
        return self._stacked.z_values(
            apply_axis_weights(points, self.axis_weights)
        )

    def insert(
        self,
        x: np.ndarray,
        plan_id: int,
        cost: float = 0.0,
        weight: float = 1.0,
        provenance: str = "direct",
    ) -> None:
        """Add one labeled point (requires insertable histograms).

        ``weight < 1`` inserts a discounted point — used by the
        positive-feedback extension for unverified predictions.

        ``provenance`` names the decision-flow origin of the point
        (``cache_miss`` / ``exploration`` / ``negative_feedback`` /
        ``positive_feedback`` / ``direct``) and is journaled with the
        ``point_inserted`` lifecycle event; it never affects the insert.

        The insert is atomic across transforms: insertability, the
        weight, and every z-value are validated up front, so a rejected
        insert leaves no histogram partially mutated.
        """
        x = self._check_point(x)
        if weight <= 0.0:
            raise PredictionError("insertion weight must be > 0")
        targets = [
            self._histograms[index][plan_id]
            for index in range(len(self.ensemble))
        ]
        if any(not hasattr(histogram, "insert") for histogram in targets):
            raise PredictionError(
                "histogram kind "
                f"{self.histogram_kind!r} does not support insertion; "
                "use histogram_kind='incremental'"
            )
        z_values = [
            float(z) for z in self._z_values_batch(x[None, :])[:, 0]
        ]
        for histogram, z in zip(targets, z_values, strict=True):
            histogram.insert(z, cost, weight=weight)
        self.total_points += 1
        self.total_mass += weight
        self._mutations += 1
        if self._events is not None:
            self._emit_event(
                "point_inserted",
                plan=int(plan_id),
                cost=float(cost),
                weight=float(weight),
                provenance=provenance,
            )

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def _range_estimates(
        self, points: np.ndarray, record_timing: bool = True
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The struct-of-arrays lookup core shared by every predict path.

        For validated points ``(m, r)``, returns ``(z_values (t, m),
        counts (t, plans, m), avg_costs (t, plans, m))``: one stacked
        pass computes all z-values, then each (transform, plan) synopsis
        answers its whole query batch through the fused columnar range
        query.  When metrics are bound (and ``record_timing``), the
        transform and range-query timers observe exactly once per call.
        """
        record = record_timing and self._metrics is not None
        if record:
            started = perf_counter()
        z_values = self._z_values_batch(points)
        if record:
            mid = perf_counter()
        lo = z_values - self.delta
        hi = z_values + self.delta
        t = len(self.ensemble)
        m = points.shape[0]
        counts = np.empty((t, self.plan_count, m))
        avg_costs = np.empty((t, self.plan_count, m))
        for index in range(t):
            for plan in range(self.plan_count):
                mass, average = self._histograms[index][
                    plan
                ].range_query_batch(lo[index], hi[index])
                counts[index, plan] = mass
                avg_costs[index, plan] = average
        if record:
            self._transform_timer.observe(mid - started)
            self._range_timer.observe(perf_counter() - mid)
        return z_values, counts, avg_costs

    def _aggregate(self, estimates: np.ndarray) -> np.ndarray:
        """Median (or mean, under the ablation) over the transform axis."""
        if self.aggregation == "mean":
            return estimates.mean(axis=0)
        return np.median(estimates, axis=0)

    def _winner_costs(
        self,
        counts: np.ndarray,
        avg_costs: np.ndarray,
        winners: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized cost estimate for each point's winning plan.

        Selects the winner's per-transform (count, avg cost) columns
        from the ``(t, plans, m)`` estimate arrays and medians the
        averages over the transforms holding mass.  NULL rows
        (``winners < 0``) are gathered against plan 0 merely to keep
        the gather in bounds; callers never read them.
        """
        columns = np.arange(winners.shape[0])
        safe = np.where(winners < 0, 0, winners)
        return median_supported(
            avg_costs[:, safe, columns],
            counts[:, safe, columns] > 0.0,
        )

    def _emit_lookup_spans(
        self,
        trace: "DecisionTrace",
        z_values: np.ndarray,
        counts: np.ndarray,
        avg_costs: np.ndarray,
    ) -> np.ndarray:
        """Annotate per-transform lookup spans plus the aggregate span
        from already-computed batch-of-one estimates; returns the
        aggregated per-plan counts ``(plans,)``."""
        for index in range(len(self.ensemble)):
            with trace.span("transform") as span:
                z = float(z_values[index, 0])
                row = counts[index, :, 0]
                span.set(
                    index=index,
                    z=z,
                    z_range=[z - self.delta, z + self.delta],
                    counts=[float(c) for c in row],
                    avg_costs=[
                        float(avg_costs[index, plan, 0])
                        if row[plan] > 0
                        else None
                        for plan in range(self.plan_count)
                    ],
                    vote=int(row.argmax()) if row.max() > 0.0 else None,
                )
        aggregated = self._aggregate(counts)[:, 0]
        with trace.span("aggregate") as span:
            span.set(
                method=self.aggregation,
                counts=[float(c) for c in aggregated],
            )
        return aggregated

    def median_counts(
        self, x: np.ndarray, trace: "DecisionTrace | None" = None
    ) -> np.ndarray:
        """Per-plan range-count aggregated across the ``t`` transforms
        (median by default; mean under the ablation setting).

        A batch of one through the struct-of-arrays core.  With an
        active ``trace``, every transform's density lookup gets its own
        span (z-value, per-plan counts and average costs, the
        transform's argmax vote) plus an ``aggregate`` span; the
        returned counts are identical either way.
        """
        x = self._check_point(x)
        z_values, counts, avg_costs = self._range_estimates(x[None, :])
        if trace is not None and trace.active:
            return self._emit_lookup_spans(trace, z_values, counts, avg_costs)
        return self._aggregate(counts)[:, 0]

    def predict(
        self, x: np.ndarray, trace: "DecisionTrace | None" = None
    ) -> "Prediction | None":
        """A thin wrapper over a batch of one.

        The untraced path is literally ``predict_batch(x[None, :])[0]``;
        the traced path runs the same numeric core and only adds span
        annotation — the decisions are bit-for-bit identical, which the
        trace-parity suite pins down.
        """
        if trace is not None and trace.active:
            return self._predict_traced(x, trace)
        x = self._check_point(x)
        return self.predict_batch(x[None, :])[0]

    def _predict_traced(
        self, x: np.ndarray, trace: "DecisionTrace"
    ) -> "Prediction | None":
        """Traced twin of :meth:`predict` — identical decision, with
        per-transform lookup, noise-elimination and confidence
        (γ comparison) spans, all computed from the same batch-of-one
        estimates the untraced path uses."""
        x = self._check_point(x)
        z_values, counts_tpm, avg_costs = self._range_estimates(x[None, :])
        counts = self._emit_lookup_spans(
            trace, z_values, counts_tpm, avg_costs
        )
        max_count = float(counts.max())
        threshold = (
            None
            if self.noise_fraction is None
            else self.noise_fraction * self.total_mass
        )
        eliminated = (
            self.noise_fraction is not None
            and self.total_mass > 0
            and max_count < self.noise_fraction * self.total_mass
        )
        with trace.span("noise_elimination") as span:
            span.set(
                max_count=max_count,
                total_mass=self.total_mass,
                noise_fraction=self.noise_fraction,
                threshold=threshold,
                eliminated=eliminated,
            )
        if eliminated:
            if self._events is not None:
                self._emit_event(
                    "noise_pruned",
                    plan=int(counts.argmax()),
                    max_count=max_count,
                    threshold=float(threshold),
                )
            return None
        with trace.span("confidence") as span:
            plan_id, confidence, detail = self.model.explain_decide(
                counts, self.confidence_threshold
            )
            span.set(**detail)
        if plan_id is None:
            return None
        medians, any_support = self._winner_costs(
            counts_tpm, avg_costs, np.array([plan_id])
        )
        cost = float(medians[0]) if any_support[0] else None
        return Prediction(plan_id, confidence, cost)

    def predict_batch(self, points: np.ndarray) -> "list[Prediction | None]":
        """Vectorized prediction for a whole point batch — the primitive
        every other predict path wraps.

        The batch is validated up front (`_check_batch`: shape errors
        and non-finite rows raise, exactly like the scalar guard) and an
        empty ``(0, r)`` batch returns ``[]``.  One stacked pass
        computes the z-values of every point under every transform,
        all histogram range queries run through the fused columnar
        views, and aggregation, noise elimination, the confidence
        decision and the winner cost estimates are fully vectorized.
        Bit-for-bit identical to calling :meth:`predict` per point, at
        a fraction of the time — the operation the runtime simulation
        charges as "prediction overhead".
        """
        points = self._check_batch(points)
        m = points.shape[0]
        if m == 0:
            return []
        __, counts_tpm, avg_costs = self._range_estimates(points)
        counts = self._aggregate(counts_tpm)  # (plans, m)
        winners, confidences = self.model.decide_batch(
            counts.T, self.confidence_threshold
        )
        if self.noise_fraction is not None and self.total_mass > 0:
            noisy = counts.max(axis=0) < self.noise_fraction * self.total_mass
            if self._events is not None and noisy.any():
                threshold = self.noise_fraction * self.total_mass
                majorities = counts.argmax(axis=0)
                maxima = counts.max(axis=0)
                for j in np.flatnonzero(noisy):
                    self._emit_event(
                        "noise_pruned",
                        plan=int(majorities[j]),
                        max_count=float(maxima[j]),
                        threshold=float(threshold),
                    )
            winners = np.where(noisy, -1, winners)
        medians, any_support = self._winner_costs(
            counts_tpm, avg_costs, winners
        )
        return [
            None
            if winners[j] < 0
            else Prediction(
                int(winners[j]),
                float(confidences[j]),
                float(medians[j]) if any_support[j] else None,
            )
            for j in range(m)
        ]

    def estimated_cost(self, x: np.ndarray, plan_id: int) -> "float | None":
        """Median per-transform average cost of the plan around ``x``.

        Because the pool contains only truly optimal points (no
        positive feedback), this estimates the *optimal* cost near
        ``x`` — the quantity negative feedback compares against.
        Timing is not recorded: only full predictions own the
        once-per-predict timer contract.
        """
        x = self._check_point(x)
        __, counts, avg_costs = self._range_estimates(
            x[None, :], record_timing=False
        )
        medians, any_support = self._winner_costs(
            counts, avg_costs, np.array([plan_id])
        )
        if not any_support[0]:
            return None
        return float(medians[0])

    def cell_densities(self, probes: int = 64) -> np.ndarray:
        """Density mass per (transform, plan, z-cell): shape
        ``(t, plan_count, probes)``.

        Tiles the z-axis ``[0, 1]`` into ``probes`` equal cells and
        answers one batched range-count per (transform, plan) pair —
        the read-only synopsis view the quality scorecard aggregates
        into coverage/purity/entropy.  Never mutates predictor state.
        """
        if probes < 1:
            raise ConfigurationError("probes must be >= 1")
        edges = np.linspace(0.0, 1.0, probes + 1)
        lo, hi = edges[:-1], edges[1:]
        densities = np.empty((len(self.ensemble), self.plan_count, probes))
        for index in range(len(self.ensemble)):
            for plan in range(self.plan_count):
                densities[index, plan] = self._histograms[index][
                    plan
                ].range_count_batch(lo, hi)
        return densities

    def drop(self) -> None:
        """Drop every histogram and restart from scratch (Section IV-E:
        the reaction to a detected plan-space change)."""
        points_dropped = self.total_points
        mass_dropped = self.total_mass
        self._histograms = [
            [self._new_histogram() for __ in range(self.plan_count)]
            for __ in self.ensemble
        ]
        self.histogram_kind = "incremental"
        self.total_points = 0
        self.total_mass = 0.0
        self._mutations += 1
        if self._events is not None:
            self._emit_event(
                "histogram_rebuilt",
                points_dropped=points_dropped,
                mass_dropped=mass_dropped,
            )

    def space_bytes(self) -> int:
        """``t * n_plans * b_h * 12`` bytes; actual bucket counts may be
        below the ``b_h`` cap."""
        return sum(
            histogram.space_bytes()
            for row in self._histograms
            for histogram in row
        )
