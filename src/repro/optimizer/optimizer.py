"""Optimizer facade: the component the plan cache bypasses.

:class:`Optimizer` wraps the DP enumerator behind the narrow interface
the PPC framework sees — "optimize this query instance, give me a plan
and its cost" — and counts invocations, which the runtime simulation
(Figure 13) charges for.
"""

from __future__ import annotations

import numpy as np

from repro.optimizer.catalog import Catalog
from repro.optimizer.cost_model import CostModel
from repro.optimizer.enumeration import DPEnumerator
from repro.optimizer.expressions import QueryTemplate
from repro.optimizer.plans import PhysicalPlan


class Optimizer:
    """Cost-based optimizer for one query template."""

    def __init__(
        self,
        template: QueryTemplate,
        catalog: Catalog,
        model: CostModel | None = None,
    ) -> None:
        self.template = template
        self.catalog = catalog
        self.model = model or CostModel()
        self._enumerator = DPEnumerator(template, catalog, self.model)
        self.invocation_count = 0

    def optimize(self, x: np.ndarray) -> tuple[PhysicalPlan, float]:
        """Run full plan enumeration at selectivity point ``x``."""
        self.invocation_count += 1
        return self._enumerator.optimize(x)

    def reset_counters(self) -> None:
        self.invocation_count = 0
