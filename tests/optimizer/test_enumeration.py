"""DP enumeration: access paths, join candidates, optimality."""

import itertools

import numpy as np
import pytest

from repro.exceptions import OptimizationError
from repro.optimizer.catalog import Catalog, Column, Index, Table
from repro.optimizer.enumeration import DPEnumerator, PlanBuilder
from repro.optimizer.expressions import (
    ColumnRef,
    JoinPredicate,
    ParamPredicate,
    QueryTemplate,
)
from repro.optimizer.operators import IndexScan, SeqScan


class TestAccessPaths:
    def test_seqscan_always_offered(self, tiny_template, tiny_catalog):
        builder = PlanBuilder(tiny_template, tiny_catalog)
        paths = builder.access_paths("dept")
        assert any(isinstance(p, SeqScan) for p in paths)

    def test_index_scan_for_indexed_predicate(self, tiny_template, tiny_catalog):
        builder = PlanBuilder(tiny_template, tiny_catalog)
        paths = builder.access_paths("emp")
        index_scans = [p for p in paths if isinstance(p, IndexScan)]
        assert len(index_scans) == 1  # only emp.hired is indexed
        assert index_scans[0].sort_order == "emp.hired"

    def test_no_index_scan_for_unindexed_predicate(
        self, tiny_template, tiny_catalog
    ):
        builder = PlanBuilder(tiny_template, tiny_catalog)
        # dept.budget has no index.
        paths = builder.access_paths("dept")
        assert all(isinstance(p, SeqScan) for p in paths)


class TestJoinCandidates:
    def test_all_methods_offered(self, tiny_template, tiny_catalog):
        builder = PlanBuilder(tiny_template, tiny_catalog)
        outer = builder.access_paths("emp")[0]
        candidates = builder.join_candidates(outer, "dept")
        kinds = {type(c).__name__ for c in candidates}
        assert {"HashJoin", "NestedLoopJoin", "MergeJoin"} <= kinds
        # dept.dept_id is indexed (pk), so IndexNLJoin must appear.
        assert "IndexNLJoin" in kinds

    def test_unconnected_tables_yield_nothing(self, tiny_template, tiny_catalog):
        builder = PlanBuilder(tiny_template, tiny_catalog)
        outer = builder.access_paths("dept")[0]
        # joining dept with dept again is blocked upstream; simulate an
        # unconnected expansion via a template without the join.
        template = QueryTemplate(
            name="nojoin",
            tables=("emp", "dept"),
            predicates=(ParamPredicate(ColumnRef("emp", "hired"), 0),),
        )
        builder = PlanBuilder(template, tiny_catalog)
        assert builder.join_candidates(outer, "emp") == []

    def test_join_selectivity_from_distinct_counts(
        self, tiny_template, tiny_catalog
    ):
        builder = PlanBuilder(tiny_template, tiny_catalog)
        selectivity = builder.join_selectivity(list(tiny_template.joins))
        assert selectivity == pytest.approx(1.0 / 500.0)


class TestDPOptimality:
    def test_dp_matches_exhaustive_left_deep(self, tiny_template, tiny_catalog):
        """On a two-table query, DP must find the best of all
        (outer choice x inner choice x method) combinations."""
        enumerator = DPEnumerator(tiny_template, tiny_catalog)
        builder = enumerator.builder
        x_norm = np.array([[0.5, 0.5]])
        x_sel = enumerator.mapping.to_selectivity(x_norm)

        best_cost = np.inf
        for outer_table, inner_table in itertools.permutations(
            ("emp", "dept")
        ):
            for outer in builder.access_paths(outer_table):
                for candidate in builder.join_candidates(outer, inner_table):
                    __, cost = candidate.evaluate(x_sel)
                    best_cost = min(best_cost, float(cost[0]))

        plan, dp_cost = enumerator.optimize(x_norm)
        assert dp_cost == pytest.approx(best_cost, rel=1e-9)

    def test_plan_choice_varies_across_space(self, tiny_template, tiny_catalog):
        enumerator = DPEnumerator(tiny_template, tiny_catalog)
        fingerprints = set()
        for x0 in (0.02, 0.5, 0.98):
            for x1 in (0.02, 0.5, 0.98):
                plan, __ = enumerator.optimize(np.array([[x0, x1]]))
                fingerprints.add(plan.fingerprint)
        assert len(fingerprints) >= 2

    def test_cost_positive(self, tiny_template, tiny_catalog):
        enumerator = DPEnumerator(tiny_template, tiny_catalog)
        __, cost = enumerator.optimize(np.array([[0.5, 0.5]]))
        assert cost > 0

    def test_wrong_arity_rejected(self, tiny_template, tiny_catalog):
        enumerator = DPEnumerator(tiny_template, tiny_catalog)
        with pytest.raises(OptimizationError):
            enumerator.optimize(np.array([[0.5, 0.5, 0.5]]))

    def test_disconnected_join_graph_rejected(self, tiny_catalog):
        template = QueryTemplate(
            name="disconnected",
            tables=("emp", "dept"),
            predicates=(
                ParamPredicate(ColumnRef("emp", "hired"), 0),
                ParamPredicate(ColumnRef("dept", "budget"), 1),
            ),
        )
        enumerator = DPEnumerator(template, tiny_catalog)
        with pytest.raises(OptimizationError):
            enumerator.optimize(np.array([[0.5, 0.5]]))


class TestThreeWayJoin:
    def test_three_table_chain(self, tiny_catalog):
        """Add a third table and check DP still returns a valid plan
        covering all tables."""
        catalog = Catalog()
        for table in tiny_catalog.tables.values():
            catalog.add_table(
                Table(table.name, table.row_count, dict(table.columns))
            )
        for index in tiny_catalog.indexes.values():
            catalog.add_index(
                Index(index.name, index.table, index.column, index.unique,
                      index.clustered)
            )
        catalog.add_table(
            Table(
                "region",
                20,
                {
                    "region_id": Column("region_id", 1, 20, 20),
                    "r_tax": Column("r_tax", 0, 10, 10),
                },
            )
        )
        catalog.tables["dept"].columns["region_id"] = Column(
            "region_id", 1, 20, 20
        )
        template = QueryTemplate(
            name="chain3",
            tables=("emp", "dept", "region"),
            joins=(
                JoinPredicate(
                    ColumnRef("emp", "dept_id"), ColumnRef("dept", "dept_id")
                ),
                JoinPredicate(
                    ColumnRef("dept", "region_id"),
                    ColumnRef("region", "region_id"),
                ),
            ),
            predicates=(
                ParamPredicate(ColumnRef("emp", "hired"), 0),
                ParamPredicate(ColumnRef("region", "r_tax"), 1),
            ),
        )
        enumerator = DPEnumerator(template, catalog)
        plan, cost = enumerator.optimize(np.array([[0.3, 0.7]]))
        assert plan.root.tables == frozenset(("emp", "dept", "region"))
        assert cost > 0
