"""Global RNG use in every disguise the resolver must see through."""
import random
from random import shuffle

import numpy as np
import numpy.random as npr

values = np.random.rand(8)          # legacy module-level call
jitter = npr.uniform(0.0, 1.0)      # aliased module import
pick = random.choice([1, 2, 3])     # stdlib global RNG
shuffle([])                         # from-import of a global-RNG name
rng = np.random.default_rng()       # unseeded: draws OS entropy
