"""Shared benchmark helpers.

Every bench regenerates one table or figure of the paper: it runs the
experiment driver from :mod:`repro.experiments`, writes the resulting
rows/series to ``benchmarks/results/<name>.txt`` (pytest captures
stdout, so files are the durable record), and times a representative
operation with pytest-benchmark.  ``EXPERIMENTS.md`` summarizes the
paper-vs-measured comparison from these files.
"""

from __future__ import annotations

import json
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_result(name: str, lines: "list[str] | str") -> pathlib.Path:
    """Persist a reproduction table under ``benchmarks/results/``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    if isinstance(lines, list):
        lines = "\n".join(lines)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(lines + "\n")
    # Also print, for runs with capture disabled (-s).
    print(f"\n===== {name} =====")
    print(lines)
    return path


def write_bench_json(name: str, payload: dict) -> pathlib.Path:
    """Persist a machine-readable benchmark snapshot.

    Written to ``benchmarks/results/BENCH_<name>.json`` so
    ``repro bench compare`` can gate future runs against the committed
    trajectory instead of eyeballing the text tables.  Every snapshot
    must be a valid schema-v2 envelope (see :mod:`repro.bench.schema`);
    an ad-hoc dict is rejected before it can poison the baselines.
    """
    from repro.bench.schema import validate_envelope

    validate_envelope(payload)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\n===== {name} bench snapshot -> {path.name} =====")
    return path


def write_metrics(name: str, snapshot: "dict | None") -> "pathlib.Path | None":
    """Persist an observability snapshot next to a bench's result table.

    ``snapshot`` is a :meth:`MetricsRegistry.snapshot` dict (or any
    JSON-compatible metrics digest); ``None`` is tolerated so benches
    can pass through an absent snapshot without guarding.
    """
    if snapshot is None:
        return None
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.metrics.json"
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    print(f"\n===== {name} metrics -> {path.name} =====")
    return path
