"""Effect stubs for the numpy/stdlib surface the project calls into.

The whole-program engine (:mod:`repro.analysis.effects.engine`) only
sees the project's own AST; anything outside it — numpy, the standard
library — needs a declared effect.  This table is that declaration:
a dotted-name lookup classifying external calls into the effect
lattice (``rng``, ``clock``, ``fs``, ``net``, ``alloc``).

The table is deliberately *optimistic*: an external call matching no
entry is treated as effect-free.  That keeps the engine's findings
actionable (no flood of "unknown call" noise) at the cost of missing
an exotic entry point — the per-file rules (RPR001/RPR002/RPR005)
remain the belt to this suspenders.  The two injected-clock aliases in
:mod:`repro.resilience.clocks` are *sanctioned*: calling them is how a
default parameter says "wall clock unless a test injects a virtual
one", so they carry no effect here (RPR102 allows them by design).
"""

from __future__ import annotations

# Reuse the per-file rules' ground truth for what counts as global RNG
# so the interprocedural closure can never disagree with RPR001/RPR002.
from repro.analysis.rules import _BANNED_TIME, _NUMPY_LEGACY_RNG, _STDLIB_RNG

#: Injected-clock aliases: the sanctioned way to *reference* the wall
#: clock.  Calls to these carry no effect — tests replace them.
SANCTIONED_CLOCKS = frozenset(
    {
        "repro.resilience.clocks.system_clock",
        "repro.resilience.clocks.system_sleep",
    }
)

#: Raw wall-clock reads/spends (mirrors RPR002's banned set;
#: ``perf_counter``/``perf_counter_ns`` measure durations and stay
#: effect-free, exactly like the per-file rule).
CLOCK_CALLS = frozenset(
    {f"time.{name}" for name in _BANNED_TIME}
    | {
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Unseeded / global-state RNG entry points (mirrors RPR001) plus the
#: OS-entropy taps the per-file rule has no reason to meet.
RNG_CALLS = frozenset(
    {f"numpy.random.{name}" for name in _NUMPY_LEGACY_RNG}
    | {f"random.{name}" for name in _STDLIB_RNG}
    | {
        "os.urandom",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbelow",
        "secrets.choice",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)

#: ``numpy.random.default_rng`` draws OS entropy only when called with
#: no arguments; the engine special-cases it on the argument count.
DEFAULT_RNG = "numpy.random.default_rng"

#: Filesystem access by exact dotted name.
FS_CALLS = frozenset(
    {
        "open",
        "os.fdopen",
        "os.replace",
        "os.rename",
        "os.remove",
        "os.unlink",
        "os.mkdir",
        "os.makedirs",
        "os.rmdir",
        "os.fsync",
        "os.link",
        "os.symlink",
        "shutil.copy",
        "shutil.copy2",
        "shutil.copyfile",
        "shutil.move",
        "shutil.rmtree",
        "tempfile.mkstemp",
        "tempfile.mkdtemp",
        "tempfile.NamedTemporaryFile",
        "tempfile.TemporaryFile",
        "tempfile.TemporaryDirectory",
    }
)

#: Filesystem access by method name on an *unresolved* receiver — how
#: ``some_path.write_text(...)`` looks when ``some_path`` is a local.
#: Names are specific enough (pathlib's I/O surface) that collisions
#: with project methods are not expected.
FS_METHODS = frozenset(
    {
        "write_text",
        "write_bytes",
        "read_text",
        "read_bytes",
        "unlink",
        "touch",
        "mkdir",
        "rmdir",
        "hardlink_to",
        "symlink_to",
    }
)

#: Network access (none expected in this codebase; the entry exists so
#: the first socket sneaking toward the predict path is caught).
NET_CALLS = frozenset(
    {
        "socket.socket",
        "socket.create_connection",
        "urllib.request.urlopen",
        "http.client.HTTPConnection",
        "http.client.HTTPSConnection",
    }
)

#: Fresh-array allocators: recorded as the ``alloc`` effect so the
#: call-graph artifact shows which vectorized kernels allocate.  No
#: rule gates on it (hot-path allocation is a perf review aid, not an
#: invariant) — it rides along in ``--graph-out``.
ALLOC_CALLS = frozenset(
    {
        "numpy.array",
        "numpy.asarray",
        "numpy.empty",
        "numpy.empty_like",
        "numpy.zeros",
        "numpy.zeros_like",
        "numpy.ones",
        "numpy.ones_like",
        "numpy.full",
        "numpy.full_like",
        "numpy.arange",
        "numpy.linspace",
        "numpy.eye",
        "numpy.copy",
        "numpy.concatenate",
        "numpy.stack",
        "numpy.vstack",
        "numpy.hstack",
    }
)

#: In-place mutators callable as plain functions: ``np.add.at(target,
#: ...)`` mutates its first argument.  The engine checks the argument
#: subtree for ``self.<attr>`` roots (RPR103's synopsis contract).
INPLACE_FUNCTIONS = frozenset(
    {
        "numpy.add.at",
        "numpy.subtract.at",
        "numpy.multiply.at",
        "numpy.divide.at",
        "numpy.maximum.at",
        "numpy.minimum.at",
        "numpy.put",
        "numpy.place",
        "numpy.copyto",
    }
)

#: Method names that mutate their receiver in place — list/set/dict
#: and ndarray surfaces plus the project's histogram ``insert``.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "sort",
        "reverse",
        "fill",
        "partial_fit",
    }
)


def classify_call(dotted: str, argless: bool) -> "str | None":
    """Effect of one external call, or ``None`` when effect-free.

    ``argless`` matters only for ``numpy.random.default_rng`` — seeded
    construction is the sanctioned idiom, the no-argument form draws
    OS entropy.
    """
    if dotted in SANCTIONED_CLOCKS:
        return None
    if dotted in RNG_CALLS or (dotted == DEFAULT_RNG and argless):
        return "rng"
    if dotted in CLOCK_CALLS:
        return "clock"
    if dotted in FS_CALLS:
        return "fs"
    if dotted in NET_CALLS:
        return "net"
    if dotted in ALLOC_CALLS:
        return "alloc"
    return None
