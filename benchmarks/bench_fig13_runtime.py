"""Figure 13: end-to-end runtime of PPC vs no caching vs IDEAL.

Replays a tight trajectory workload (r_d = 0.01, d = 0.01, gamma = 0.8,
noise elimination on) through the runtime simulator.  Paper shape:
PPC lands between NO-CACHING and the hypothetical IDEAL predictor, and
the longer the workload runs the wider the gap to NO-CACHING grows.
"""

from _bench_utils import write_metrics, write_result
from repro.experiments.runtime_perf import run_runtime_comparison


def test_fig13_runtime(benchmark):
    rows, breakdowns = benchmark.pedantic(
        run_runtime_comparison,
        kwargs=dict(
            templates=("Q0", "Q1", "Q8"), workload_size=1000, spread=0.01,
            seed=7,
        ),
        rounds=1,
        iterations=1,
    )
    lines = [
        "Figure 13 — simulated runtime (1000 instances, r_d = 0.01,",
        "d = 0.01, b_h = 40, t = 5, gamma = 0.8, noise elimination on)",
        "",
        f"{'template':>8s} {'regime':>10s} {'total ms':>12s} "
        f"{'optimize ms':>12s} {'execute ms':>12s} {'overhead ms':>12s} "
        f"{'invocations':>12s}",
    ]
    for row in rows:
        lines.append(
            f"{row.template:>8s} {row.regime:>10s} {row.total_ms:12,.0f} "
            f"{row.optimization_ms:12,.0f} {row.execution_ms:12,.0f} "
            f"{row.overhead_ms:12,.0f} {row.optimizer_invocations:12d}"
        )
    # Cumulative curves at selected checkpoints for Q1.
    lines += ["", "Q1 cumulative time (ms) at instance checkpoints:"]
    checkpoints = (100, 250, 500, 750, 999)
    header = "  " + " ".join(f"{c:>10d}" for c in checkpoints)
    lines.append("  regime    " + header)
    for regime, breakdown in breakdowns["Q1"].items():
        series = breakdown.cumulative_ms
        values = " ".join(f"{series[c]:10,.0f}" for c in checkpoints)
        lines.append(f"  {regime:10s}  {values}")
    write_result("fig13_runtime", lines)
    write_metrics("fig13_runtime", breakdowns["Q1"]["PPC"].metrics)

    for template in ("Q0", "Q1", "Q8"):
        by_regime = {
            r.regime: r for r in rows if r.template == template
        }
        assert by_regime["IDEAL"].total_ms <= by_regime["PPC"].total_ms
        assert by_regime["PPC"].total_ms < by_regime["NO-CACHING"].total_ms
