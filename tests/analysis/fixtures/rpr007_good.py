"""Fully annotated public surface; private helpers are exempt."""
from collections.abc import Callable


def execute(point: float) -> float:
    return _clip(point)


def _clip(point):
    return max(0.0, min(1.0, point))


class Session:
    def __init__(
        self, config: dict, clock: "Callable[[], float] | None" = None
    ) -> None:
        self.config = config
        self.clock = clock

    def predict(self, point: float) -> float:
        return point

    def _internal(self, raw):
        return raw
