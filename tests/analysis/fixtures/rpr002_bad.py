"""Wall-clock reads that make replay timing-dependent."""
import time
from time import monotonic


def deadline(budget: float) -> float:
    return monotonic() + budget


def wait(seconds: float) -> None:
    time.sleep(seconds)


def stamp() -> float:
    return time.time()
