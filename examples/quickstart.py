"""Quickstart: parametric plan caching in thirty lines.

Builds the plan-space oracle for the paper's example template Q1
(supplier x lineitem with two parameterized predicates), runs an online
plan-caching session over a trajectory workload, and prints what the
framework achieved: how often the optimizer was bypassed, at what
precision, and at what execution-cost overhead.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import PPCConfig, PPCFramework, plan_space_for
from repro.workload import RandomTrajectoryWorkload


def main() -> None:
    # The plan space of Q1: the optimizer's plan choice as a function of
    # the two predicate selectivities, normalized onto [0, 1]^2.
    space = plan_space_for("Q1")
    print(f"Q1 plan space: {space.plan_count} plans over "
          f"[0,1]^{space.dimensions}")

    # Register the template with the PPC framework and replay a workload
    # whose parameters drift along random trajectories.
    framework = PPCFramework(PPCConfig(confidence_threshold=0.8), seed=0)
    framework.register(space)
    workload = RandomTrajectoryWorkload(
        space.dimensions, spread=0.02, seed=7
    ).generate(1000)

    for point in workload:
        framework.execute("Q1", point)

    session = framework.session("Q1")
    metrics = session.ground_truth_metrics()
    suboptimality = np.mean([r.suboptimality for r in session.records])

    print(f"instances executed      : {len(session.records)}")
    print(f"optimizer invocations   : {session.optimizer_invocations} "
          f"({session.optimizer_invocations / len(session.records):.0%})")
    print(f"prediction precision    : {metrics.precision:.3f}")
    print(f"prediction recall       : {metrics.recall:.3f}")
    print(f"mean cost vs optimal    : {suboptimality:.3f}x")
    print(f"plan cache hit rate     : {session.cache.hit_rate:.0%}")


if __name__ == "__main__":
    main()
