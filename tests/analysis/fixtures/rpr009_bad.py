"""Manual span lifecycle management: leaks the stack on exceptions."""

from repro.obs.tracing import Span


def annotate(trace, predictor, x):
    span = trace.open_span("predict")
    span.children.append(Span("manual"))
    prediction = predictor.predict(x)
    trace.close_span()
    return prediction
