"""Extension: positive feedback with checks and balances.

The paper's future work (Section VII): inserting trusted predictions
back into the sample pool shortens the training period and improves
recall, but risks a feedback spiral that destroys precision.  This
bench compares three configurations over the same trajectory workloads:

* ``off``       — the paper's published algorithm (no positive feedback);
* ``guarded``   — confidence gate + discounted weight + mass cap;
* ``unguarded`` — every trusted prediction inserted at full weight.
"""

import numpy as np

from _bench_utils import write_result
from repro.config import PPCConfig
from repro.core.framework import TemplateSession
from repro.tpch import plan_space_for
from repro.workload import RandomTrajectoryWorkload


def _run(config: PPCConfig, workloads, space) -> tuple[float, float, float]:
    precisions, recalls, invocations = [], [], []
    for seed, workload in enumerate(workloads):
        session = TemplateSession(space, config, seed=seed)
        for point in workload:
            session.execute(point)
        metrics = session.ground_truth_metrics()
        precisions.append(metrics.precision)
        recalls.append(metrics.recall)
        invocations.append(session.optimizer_invocations)
    return (
        float(np.mean(precisions)),
        float(np.mean(recalls)),
        float(np.mean(invocations)),
    )


def test_ext_positive_feedback(benchmark):
    def run():
        space = plan_space_for("Q1")
        workloads = [
            RandomTrajectoryWorkload(2, spread=0.02, seed=seed).generate(800)
            for seed in (21, 22, 23)
        ]
        base = dict(confidence_threshold=0.8, drift_response=False)
        configs = {
            "off": PPCConfig(**base),
            "guarded": PPCConfig(**base, positive_feedback=True),
            "unguarded": PPCConfig(
                **base,
                positive_feedback=True,
                positive_feedback_min_confidence=0.0,
                positive_feedback_weight=1.0,
                positive_feedback_mass_cap=1e9,
            ),
        }
        return {
            name: _run(config, workloads, space)
            for name, config in configs.items()
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Extension — positive feedback (Q1, r_d = 0.02, 800 instances,",
        "3 workloads)",
        "",
        f"{'variant':>10s} {'precision':>10s} {'recall':>8s} "
        f"{'invocations':>12s}",
    ]
    for name, (precision, recall, invocations) in results.items():
        lines.append(
            f"{name:>10s} {precision:10.3f} {recall:8.3f} {invocations:12.0f}"
        )
    write_result("ext_positive_feedback", lines)

    off = results["off"]
    guarded = results["guarded"]
    unguarded = results["unguarded"]
    # Guarded feedback must preserve precision while not hurting recall.
    assert guarded[0] > off[0] - 0.03
    assert guarded[1] >= off[1] - 0.03
    # The unguarded spiral amplifies wrong evidence: it is the variant
    # that loses precision — exactly the risk the paper warns about.
    assert unguarded[0] < guarded[0] + 0.005
    assert unguarded[0] <= off[0]
