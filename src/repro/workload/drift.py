"""Mid-workload plan-space manipulation (Section V-D) and the drift
primitives the adversarial scenario fleet is built from.

The drift-detection experiment artificially manipulates a template's
plan space halfway through a workload so that both the plan choice and
the plan cost predictability assumptions are violated, then checks that
the online precision estimators raise an alarm.  The
:class:`ManipulatedPlanSpace` wrapper presents the same oracle
interface as the underlying :class:`~repro.optimizer.plan_space.PlanSpace`
but scrambles labels and costs on a fine random grid: neighboring
points suddenly disagree on plans (breaking Assumption 1) and the costs
of identical plans jump by random factors (breaking Assumption 2).

Beyond the original on/off switch, the wrapper is the reusable
primitive behind :mod:`repro.workload.scenarios`:

* ``set_intensity(fraction)`` scrambles only the ``fraction`` of grid
  cells with the lowest (seeded) activation rank — ramping the
  intensity models *slow* plan-space drift, while ``activate()``
  (intensity 1.0) is the original *step* drift.  The scrambled cell set
  grows monotonically with the intensity, so a ramp never "un-drifts" a
  region it already corrupted.
* ``scramble_labels=False`` leaves plan choice intact and jitters only
  the costs — a heavy-tail cost workload that violates Assumption 2
  alone, the shape the negative-feedback estimator (not the drift
  detector) must catch.

``activate()`` is idempotent: calling it again (or re-setting the same
intensity) never re-rolls the scramble, which is drawn once in the
constructor from the seed and therefore bit-identical across instances
constructed with equal parameters.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.lsh.grid import Grid
from repro.optimizer.plan_space import PlanSpace
from repro.rng import as_generator

#: Upper bound on the scramble grid size (memory guard).
_MAX_CELLS = 4_000_000


class ManipulatedPlanSpace:
    """Plan-space oracle whose truth can be scrambled mid-workload."""

    def __init__(
        self,
        base: PlanSpace,
        resolution: int = 16,
        cost_jitter: float = 1.5,
        seed: "int | np.random.Generator | None" = 0,
        scramble_labels: bool = True,
    ) -> None:
        cells_needed = resolution**base.dimensions
        if cells_needed > _MAX_CELLS:
            raise ConfigurationError(
                f"scramble grid of {resolution}^{base.dimensions} = "
                f"{cells_needed:,d} cells exceeds the {_MAX_CELLS:,d}-cell "
                "memory guard; reduce the resolution"
            )
        if cost_jitter <= 0.0:
            raise ConfigurationError("cost_jitter must be > 0")
        rng = as_generator(seed)
        self.base = base
        self.scramble_labels = scramble_labels
        self._intensity = 0.0
        self._grid = Grid(
            np.zeros(base.dimensions), np.ones(base.dimensions), resolution
        )
        cells = self._grid.total_cells
        self._label_offsets = rng.integers(1, base.plan_count, size=cells)
        jitter_log = np.log(1.0 + cost_jitter)
        self._cost_factors = np.exp(
            rng.uniform(-jitter_log, jitter_log, size=cells)
        )
        # Activation ranks are drawn *after* the offsets/factors so a
        # fully-activated wrapper scrambles exactly as it did before the
        # partial-intensity primitive existed (same seed, same stream
        # order, same scramble).
        self._activation = rng.random(cells)

    # ------------------------------------------------------------------
    # Manipulation switches (the scenario primitives)
    # ------------------------------------------------------------------
    def activate(self) -> None:
        """Scramble the whole plan space from now on (step drift).

        Idempotent: the scramble was fixed at construction time, so
        repeated activation never re-rolls it.
        """
        self._intensity = 1.0

    def deactivate(self) -> None:
        self._intensity = 0.0

    def set_intensity(self, fraction: float) -> None:
        """Scramble the ``fraction`` of cells with lowest activation rank.

        Ramping this from 0 toward 1 models slow drift; the corrupted
        cell set grows monotonically with ``fraction``.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError(
                "manipulation intensity must lie in [0, 1]"
            )
        self._intensity = float(fraction)

    @property
    def intensity(self) -> float:
        return self._intensity

    @property
    def active(self) -> bool:
        """Whether any part of the plan space is currently scrambled."""
        return self._intensity > 0.0

    # ------------------------------------------------------------------
    # Oracle interface (mirrors PlanSpace)
    # ------------------------------------------------------------------
    @property
    def template(self):
        return self.base.template

    @property
    def dimensions(self) -> int:
        return self.base.dimensions

    @property
    def plan_count(self) -> int:
        return self.base.plan_count

    def plan(self, plan_id: int):
        return self.base.plan(plan_id)

    def _scrambled_cells(
        self, points: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        """``(cell_ids, scrambled_mask)`` for a point batch."""
        cells = self._grid.cell_ids(points)
        # ``random()`` draws lie in [0, 1), so intensity 1.0 scrambles
        # every cell — exactly the original step manipulation.
        return cells, self._activation[cells] < self._intensity

    def label(self, points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        ids, costs = self.base.label(points)
        if self._intensity <= 0.0:
            return ids, costs
        cells, mask = self._scrambled_cells(points)
        if self.scramble_labels:
            ids = np.where(
                mask,
                (ids + self._label_offsets[cells]) % self.plan_count,
                ids,
            )
        costs = np.where(mask, costs * self._cost_factors[cells], costs)
        return ids, costs

    def plan_at(self, points: np.ndarray) -> np.ndarray:
        ids, __ = self.label(points)
        return ids

    def cost_at(
        self, points: np.ndarray, plan_id: "int | None" = None
    ) -> np.ndarray:
        if plan_id is None:
            __, costs = self.label(points)
            return costs
        costs = self.base.cost_at(points, plan_id)
        if self._intensity <= 0.0:
            return costs
        cells, mask = self._scrambled_cells(points)
        return np.where(mask, costs * self._cost_factors[cells], costs)
