"""Parameter normalization: plan-space coordinates <-> selectivities."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.optimizer.parameters import (
    ParameterMapping,
    default_selectivity_range,
)


class TestDefaultRanges:
    def test_small_table_sweeps_everything(self):
        lo, hi = default_selectivity_range(100)
        assert hi == 1.0
        assert lo < hi

    def test_huge_table_capped(self):
        lo, hi = default_selectivity_range(6_000_000)
        assert hi == pytest.approx(300_000 / 6_000_000)
        assert lo >= 1e-5

    def test_range_always_valid(self):
        for rows in (1, 10, 1_000, 10**6, 10**8):
            lo, hi = default_selectivity_range(rows)
            assert 0.0 < lo <= hi <= 1.0


class TestParameterMapping:
    def test_log_scale_endpoints(self):
        mapping = ParameterMapping([(0.001, 0.1)], ["log"])
        sel = mapping.to_selectivity(np.array([[0.0], [0.5], [1.0]]))
        assert sel[0, 0] == pytest.approx(0.001)
        assert sel[1, 0] == pytest.approx(0.01)
        assert sel[2, 0] == pytest.approx(0.1)

    def test_linear_scale(self):
        mapping = ParameterMapping([(0.2, 0.8)], ["linear"])
        sel = mapping.to_selectivity(np.array([[0.5]]))
        assert sel[0, 0] == pytest.approx(0.5)

    def test_round_trip(self):
        mapping = ParameterMapping(
            [(0.001, 0.1), (0.2, 0.8)], ["log", "linear"]
        )
        x = np.array([[0.3, 0.7], [0.0, 1.0]])
        back = mapping.to_normalized(mapping.to_selectivity(x))
        assert back == pytest.approx(x, abs=1e-9)

    def test_normalized_clipped_outside_range(self):
        mapping = ParameterMapping([(0.1, 0.5)], ["linear"])
        assert mapping.to_normalized(np.array([[0.01]]))[0, 0] == 0.0
        assert mapping.to_normalized(np.array([[0.99]]))[0, 0] == 1.0

    def test_monotone(self):
        mapping = ParameterMapping([(1e-4, 0.5)], ["log"])
        xs = np.linspace(0, 1, 20)[:, None]
        sels = mapping.to_selectivity(xs)[:, 0]
        assert (np.diff(sels) > 0).all()

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ConfigurationError):
            ParameterMapping([(0.0, 0.5)], ["linear"])
        with pytest.raises(ConfigurationError):
            ParameterMapping([(0.5, 0.1)], ["log"])
        with pytest.raises(ConfigurationError):
            ParameterMapping([(0.1, 0.5)], ["cubic"])
        with pytest.raises(ConfigurationError):
            ParameterMapping([(0.1, 0.5), (0.1, 0.5)], ["log"])

    def test_dimension_check(self):
        mapping = ParameterMapping([(0.1, 0.5)], ["log"])
        with pytest.raises(ConfigurationError):
            mapping.to_selectivity(np.zeros((2, 3)))


class TestTemplateDerivedMapping:
    def test_ranges_follow_table_sizes(self, tiny_template, tiny_catalog):
        mapping = ParameterMapping.for_template(tiny_template, tiny_catalog)
        # emp has 50k rows -> hi = 1.0; dept has 500 rows -> hi = 1.0.
        assert mapping.dimensions == 2
        for lo, hi in mapping.ranges:
            assert 0.0 < lo < hi <= 1.0

    def test_explicit_sel_range_respected(self, tiny_catalog):
        from repro.optimizer.expressions import (
            ColumnRef,
            ParamPredicate,
            QueryTemplate,
        )

        template = QueryTemplate(
            name="x",
            tables=("emp",),
            predicates=(
                ParamPredicate(
                    ColumnRef("emp", "salary"), 0, sel_range=(0.25, 0.75),
                    scale="linear",
                ),
            ),
        )
        mapping = ParameterMapping.for_template(template, tiny_catalog)
        assert mapping.ranges[0] == (0.25, 0.75)
        sel = mapping.to_selectivity(np.array([[0.5]]))
        assert sel[0, 0] == pytest.approx(0.5)
