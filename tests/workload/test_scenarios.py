"""Adversarial scenario fleet: registry, contracts, runner semantics.

The full-fleet contract sweep lives in ``benchmarks/bench_scenarios.py``
(every scenario, every contract, fast tier); these tests pin the pieces
that sweep builds on — registry invariants, deterministic event
builders, contract pass/fail boundaries on synthetic runs, and the
batch/sequential lockstep parity of the executor.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.workload.runner import RunResult, ScenarioRunner, WorkloadExecutor
from repro.workload.scenarios import (
    SCENARIO_NAMES,
    SCENARIOS,
    DriftCaughtWithin,
    DriftShift,
    FallbackServed,
    FaultPhase,
    NegativeFeedbackCaught,
    NoFalseAlarm,
    NoUnhandledExceptions,
    QueryEvent,
    RegretBudget,
    get_scenario,
)


class TestRegistry:
    def test_fleet_size_and_names(self):
        assert len(SCENARIOS) >= 6
        assert SCENARIO_NAMES == tuple(SCENARIOS)
        for name, scenario in SCENARIOS.items():
            assert scenario.name == name

    def test_every_scenario_is_seeded_and_tiered(self):
        seeds = [s.seed for s in SCENARIOS.values()]
        assert len(set(seeds)) == len(seeds), "seeds must be distinct"
        for scenario in SCENARIOS.values():
            assert 0 < scenario.fast_instances <= scenario.instances
            assert scenario.templates
            assert scenario.description
            assert scenario.assumption in {"none", "1", "2", "1+2"}

    def test_every_scenario_declares_contracts(self):
        for scenario in SCENARIOS.values():
            contracts = scenario.contracts(scenario.fast_instances)
            assert contracts, f"{scenario.name} has no contracts"
            assert any(
                isinstance(c, NoUnhandledExceptions) for c in contracts
            ), f"{scenario.name} must at least assert nothing raises"

    def test_get_scenario_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            get_scenario("nope")


class TestEventBuilders:
    DIMS = {"Q0": 2, "Q1": 2, "Q2": 2, "Q8": 3}

    def _dims_for(self, scenario):
        return {name: self.DIMS[name] for name in scenario.templates}

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_deterministic_under_seed(self, name):
        scenario = get_scenario(name)
        dims = self._dims_for(scenario)
        count = scenario.fast_instances
        assert scenario.events(count, dims) == scenario.events(count, dims)

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_query_count_matches_tier(self, name):
        scenario = get_scenario(name)
        events = scenario.events(
            scenario.fast_instances, self._dims_for(scenario)
        )
        queries = [e for e in events if isinstance(e, QueryEvent)]
        assert len(queries) == scenario.fast_instances
        for event in queries:
            assert event.template in scenario.templates
            assert len(event.point) == self.DIMS[event.template]
            assert all(0.0 <= v <= 1.0 for v in event.point)

    def test_drift_shifts_only_target_manipulated_templates(self):
        for scenario in SCENARIOS.values():
            manipulated = {name for name, __ in scenario.manipulation}
            events = scenario.events(
                scenario.fast_instances, self._dims_for(scenario)
            )
            for event in events:
                if isinstance(event, DriftShift):
                    assert event.template in manipulated
                    assert 0.0 <= event.intensity <= 1.0

    def test_cold_start_storm_heals_its_outage(self):
        scenario = get_scenario("cold_start_storm")
        events = scenario.events(
            scenario.fast_instances, self._dims_for(scenario)
        )
        phases = [e for e in events if isinstance(e, FaultPhase)]
        assert len(phases) == 2
        assert phases[0].spec is not None
        assert phases[0].spec.failure_probability == 1.0
        assert phases[1].spec is None, "outage must be lifted"

    def test_slow_drift_ramp_is_monotone_and_saturates(self):
        scenario = get_scenario("slow_drift")
        events = scenario.events(scenario.fast_instances, {"Q1": 2})
        intensities = [
            e.intensity for e in events if isinstance(e, DriftShift)
        ]
        assert intensities == sorted(intensities)
        assert intensities[-1] == 1.0


def _result(decisions):
    """A RunResult carrying only decisions (contract unit tests)."""
    return RunResult(
        scenario="synthetic",
        seed=0,
        count=len(decisions),
        batch_size=1,
        decisions=decisions,
        executor=None,
    )


def _decision(**overrides):
    base = {
        "template": "Q1",
        "predicted": 1,
        "confidence": 0.9,
        "optimizer_invoked": False,
        "invocation_reason": "",
        "executed_plan": 1,
        "execution_cost": 100.0,
        "optimal_plan": 1,
        "optimal_cost": 100.0,
        "drift_triggered": False,
        "degraded": False,
        "fallback_source": "",
    }
    base.update(overrides)
    return base


class TestContracts:
    def test_no_unhandled_exceptions_boundary(self):
        ok = _result([_decision()])
        assert NoUnhandledExceptions().evaluate(ok).passed
        bad = _result(
            [_decision(), {"i": 1, "template": "Q1", "error": "OptimizerError: x"}]
        )
        verdict = NoUnhandledExceptions().evaluate(bad)
        assert not verdict.passed
        assert "OptimizerError" in verdict.observed

    def test_drift_caught_within_window(self):
        contract = DriftCaughtWithin("Q1", after=2, within=3)
        inside = _result(
            [_decision()] * 3 + [_decision(drift_triggered=True)]
        )
        assert contract.evaluate(inside).passed
        # Triggering before the manipulation started is a false alarm,
        # not a catch.
        early = _result(
            [_decision(drift_triggered=True)] + [_decision()] * 4
        )
        assert not contract.evaluate(early).passed
        late = _result([_decision()] * 5 + [_decision(drift_triggered=True)])
        assert not contract.evaluate(late).passed
        never = _result([_decision()] * 6)
        verdict = contract.evaluate(never)
        assert not verdict.passed
        assert verdict.observed == "never triggered"

    def test_no_false_alarm_scopes_to_prefix(self):
        decisions = [_decision()] * 3 + [_decision(drift_triggered=True)]
        assert NoFalseAlarm("Q1", before=3).evaluate(_result(decisions)).passed
        assert not NoFalseAlarm("Q1").evaluate(_result(decisions)).passed

    def test_no_false_alarm_is_per_template(self):
        decisions = [
            _decision(template="Q0", drift_triggered=True),
            _decision(template="Q1"),
        ]
        assert NoFalseAlarm("Q1").evaluate(_result(decisions)).passed
        assert not NoFalseAlarm("Q0").evaluate(_result(decisions)).passed

    def test_regret_budget_mean(self):
        # Ratios 1.0 and 1.2 -> mean regret 0.1, exactly on budget.
        decisions = [
            _decision(),
            _decision(execution_cost=120.0),
        ]
        assert RegretBudget(0.10).evaluate(_result(decisions)).passed
        assert not RegretBudget(0.09).evaluate(_result(decisions)).passed

    def test_regret_budget_ignores_lucky_wins(self):
        # Costs below optimal clamp to zero regret, not negative.
        decisions = [_decision(execution_cost=50.0)]
        verdict = RegretBudget(0.0).evaluate(_result(decisions))
        assert verdict.passed

    def test_regret_budget_fails_on_empty_run(self):
        assert not RegretBudget(1.0).evaluate(_result([])).passed

    def test_fallback_and_negative_feedback_thresholds(self):
        decisions = [
            _decision(fallback_source="last_plan", degraded=True),
            _decision(invocation_reason="negative_feedback"),
            _decision(),
        ]
        result = _result(decisions)
        assert FallbackServed(1).evaluate(result).passed
        assert not FallbackServed(2).evaluate(result).passed
        assert NegativeFeedbackCaught(1).evaluate(result).passed
        assert not NegativeFeedbackCaught(2).evaluate(result).passed


class TestExecutor:
    def test_rejects_invalid_batch_size(self, q1_space):
        with pytest.raises(ConfigurationError):
            WorkloadExecutor(("Q1",), {"Q1": q1_space}, batch_size=0)

    def test_drift_shift_without_manipulation_is_an_error(self, q1_space):
        executor = WorkloadExecutor(("Q1",), {"Q1": q1_space})
        with pytest.raises(ConfigurationError, match="manipulation spec"):
            executor.drive([DriftShift("Q1", 1.0)])

    def test_unknown_event_type_is_an_error(self, q1_space):
        executor = WorkloadExecutor(("Q1",), {"Q1": q1_space})
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            executor.drive(["not an event"])

    def test_digests_are_json_primitive(self, q1_space):
        executor = WorkloadExecutor(("Q1",), {"Q1": q1_space})
        digests = executor.drive(
            [QueryEvent("Q1", (0.3, 0.7)), QueryEvent("Q1", (0.31, 0.69))]
        )
        assert [d["i"] for d in digests] == [0, 1]
        allowed = (str, int, float, bool, type(None))
        for digest in digests:
            for key, value in digest.items():
                assert isinstance(value, allowed), (key, type(value))
            assert not isinstance(digest["confidence"], np.floating)
            assert not isinstance(digest["executed_plan"], np.integer)

    def test_clock_advances_per_query(self, q1_space):
        executor = WorkloadExecutor(("Q1",), {"Q1": q1_space})
        start = executor.clock.now()
        executor.drive(
            [
                QueryEvent("Q1", (0.3, 0.7), advance=2.0),
                QueryEvent("Q1", (0.4, 0.6), advance=3.0),
            ]
        )
        assert executor.clock.now() == pytest.approx(start + 5.0)


class TestRunnerParity:
    def test_batch_matches_sequential_lockstep(self):
        """Clock-insensitive scenarios decide identically through
        ``execute`` and ``execute_batch`` (same digests, same order)."""
        scenario = get_scenario("step_drift")
        sequential = ScenarioRunner(fast=True, batch_size=1).run(scenario)
        batched = ScenarioRunner(fast=True, batch_size=16).run(scenario)
        assert sequential.decisions == batched.decisions
        assert sequential.passed and batched.passed

    def test_summarize_row_shape(self):
        scenario = get_scenario("cache_pressure")
        runner = ScenarioRunner(fast=True)
        result = runner.run(scenario)
        row = runner.summarize(result)
        assert row["scenario"] == "cache_pressure"
        assert row["instances"] == scenario.fast_instances
        assert row["decisions"] == scenario.fast_instances
        assert row["templates"] == ["Q2"]
        assert {c["contract"] for c in row["contracts"]} == {
            v.contract for v in result.verdicts
        }
        assert row["passed"] is True
