"""Rendering of the service health report (``repro report``).

Operates purely on the JSON-ready dict produced by
:meth:`repro.service.PlanCachingService.health_report` — no imports
from the core pipeline, so the renderers stay usable on reports loaded
back from disk.  Three renderers:

* :func:`render_report_text` — terminal scorecard: per-template
  coverage/purity/accuracy/regret, SLO burn-rate states, and unicode
  sparklines of the retained time series;
* :func:`render_report_json` — canonical JSON (sorted keys, stable);
* :func:`render_report_html` — a self-contained single-file HTML page
  (inline CSS + SVG sparklines, no external assets).
"""

from __future__ import annotations

import html as _html
import json
from typing import Any

__all__ = [
    "render_report_html",
    "render_report_json",
    "render_report_text",
    "sparkline",
]

_BLOCKS = "▁▂▃▄▅▆▇█"

#: State → terminal marker / HTML badge color.
_STATE_MARKS = {"ok": "✓", "warning": "!", "breach": "✗"}
_STATE_COLORS = {"ok": "#2e7d32", "warning": "#e09c00", "breach": "#c62828"}


def sparkline(values: "list[float]") -> str:
    """Unicode block sparkline of a value series ("" when empty)."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi - lo <= 1e-12:
        return _BLOCKS[0] * len(values)
    top = len(_BLOCKS) - 1
    return "".join(
        _BLOCKS[int((value - lo) / (hi - lo) * top)] for value in values
    )


def _series_values(
    telemetry: "dict[str, Any] | None",
    name: str,
    field: "str | None" = None,
    **labels: str,
) -> "list[float]":
    """Point values of one retained series (empty when absent)."""
    if not telemetry:
        return []
    for series in telemetry.get("series", []):
        if series["name"] != name:
            continue
        if field is not None and series.get("field") != field:
            continue
        have = series.get("labels", {})
        if all(have.get(key) == value for key, value in labels.items()):
            return [point[1] for point in series["points"]]
    return []


def _fmt(value: "float | None", digits: int = 3) -> str:
    if value is None:
        return "-"
    return f"{value:.{digits}f}"


# ----------------------------------------------------------------------
# Text
# ----------------------------------------------------------------------
def render_report_text(report: "dict[str, Any]") -> str:
    """The health report as a terminal scorecard."""
    lines: list[str] = []
    worst = report.get("worst_state", "ok")
    clock = report.get("clock", {})
    lines.append(
        f"PPC health report — overall {worst.upper()} "
        f"[clock: {clock.get('source', '?')}]"
    )
    telemetry = report.get("telemetry")
    if telemetry:
        lines.append(
            f"telemetry: {telemetry.get('samples', 0)} samples every "
            f"{telemetry.get('interval', '?')}s, "
            f"{len(telemetry.get('series', []))} live series"
        )
    for template, scorecard in sorted(
        report.get("templates", {}).items()
    ):
        synopsis = scorecard.get("synopsis", {})
        rolling = scorecard.get("rolling", {})
        monitor = scorecard.get("monitor", {})
        lines.append("")
        lines.append(
            f"template {template} — "
            f"{scorecard.get('executions', 0)} executions"
        )
        lines.append(
            f"  synopsis   coverage={_fmt(synopsis.get('coverage'))} "
            f"purity={_fmt(synopsis.get('purity'))} "
            f"entropy={_fmt(synopsis.get('entropy'))} "
            f"points={synopsis.get('total_points', 0)}"
        )
        lines.append(
            f"  rolling    accuracy={_fmt(rolling.get('accuracy'))} "
            f"regret={_fmt(rolling.get('regret'), 4)} "
            f"margin={_fmt(rolling.get('confidence_margin'))} "
            f"answered={_fmt(rolling.get('answered_fraction'))} "
            f"(window={rolling.get('window', 0)})"
        )
        lines.append(
            f"  monitor    precision={_fmt(monitor.get('precision_estimate'))} "
            f"recall={_fmt(monitor.get('recall_estimate'))} "
            f"drift_pressure={_fmt(monitor.get('drift_pressure'))}"
        )
        attribution = scorecard.get("regret_attribution") or {}
        stages = attribution.get("stages") or {}
        if stages:
            blamed = ", ".join(
                f"{stage}×{bucket['count']}"
                for stage, bucket in sorted(stages.items())
            )
            lines.append(f"  regret     blamed stages: {blamed}")
        for row in report.get("slo", {}).get(template, []):
            mark = _STATE_MARKS.get(row["state"], "?")
            lines.append(
                f"  slo {mark} {row['name']:<20} {row['state']:<8} "
                f"burn short={_fmt(row['burn_short'], 2)} "
                f"long={_fmt(row['burn_long'], 2)} "
                f"(objective {row['objective']})"
            )
        executions = _series_values(
            telemetry, "ppc_executions_total", template=template
        )
        if executions:
            lines.append(f"  executions {sparkline(executions)}")
        p95 = _series_values(
            telemetry,
            "ppc_stage_seconds",
            field="p95",
            template=template,
            stage="predict",
        )
        if p95:
            lines.append(
                f"  predict p95 {sparkline(p95)} "
                f"(last {_fmt(p95[-1], 6)}s)"
            )
    lifecycle = report.get("lifecycle")
    if lifecycle:
        stats = lifecycle.get("stats", {})
        lines.append("")
        lines.append(
            f"lifecycle journal: {stats.get('emitted', 0)} events emitted, "
            f"{stats.get('dropped', 0)} rotated out "
            f"(ring {stats.get('occupancy', 0)}/{stats.get('capacity', 0)})"
        )
        by_kind = stats.get("by_kind") or {}
        if by_kind:
            lines.append(
                "  by kind: "
                + ", ".join(
                    f"{kind}×{count}"
                    for kind, count in sorted(by_kind.items())
                )
            )
        for event in lifecycle.get("timeline", [])[-8:]:
            lines.append(
                f"  #{event.get('seq', '?'):>6} "
                f"{event.get('template', '?'):<4} "
                f"{event.get('kind', '?')}"
            )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# JSON
# ----------------------------------------------------------------------
def render_report_json(report: "dict[str, Any]") -> str:
    """Canonical JSON rendering (sorted keys, trailing newline)."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


# ----------------------------------------------------------------------
# HTML
# ----------------------------------------------------------------------
def _svg_sparkline(
    values: "list[float]", width: int = 160, height: int = 28
) -> str:
    """Inline SVG polyline of a series (empty string when no points)."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = hi - lo if hi - lo > 1e-12 else 1.0
    n = len(values)
    step = width / max(1, n - 1)
    points = " ".join(
        f"{index * step:.1f},"
        f"{height - 2 - (value - lo) / span * (height - 4):.1f}"
        for index, value in enumerate(values)
    )
    return (
        f'<svg width="{width}" height="{height}" role="img">'
        f'<polyline fill="none" stroke="#456" stroke-width="1.5" '
        f'points="{points}"/></svg>'
    )


def _badge(state: str) -> str:
    color = _STATE_COLORS.get(state, "#666")
    return (
        f'<span class="badge" style="background:{color}">'
        f"{_html.escape(state)}</span>"
    )


def render_report_html(report: "dict[str, Any]") -> str:
    """The health report as one self-contained HTML page."""
    worst = report.get("worst_state", "ok")
    telemetry = report.get("telemetry")
    parts: list[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        "<title>PPC health report</title>",
        "<style>",
        "body{font:14px/1.5 system-ui,sans-serif;margin:2em;color:#223}",
        "table{border-collapse:collapse;margin:.5em 0}",
        "td,th{border:1px solid #ccd;padding:.25em .6em;text-align:right}",
        "th{background:#eef;text-align:left}",
        ".badge{color:#fff;border-radius:3px;padding:0 .5em;"
        "font-size:12px}",
        "h2{margin-top:1.5em;border-bottom:1px solid #ccd}",
        "</style></head><body>",
        f"<h1>PPC health report — {_badge(worst)}</h1>",
        f"<p>clock source: "
        f"<code>{_html.escape(str(report.get('clock', {}).get('source', '?')))}"
        f"</code></p>",
    ]
    for template, scorecard in sorted(
        report.get("templates", {}).items()
    ):
        synopsis = scorecard.get("synopsis", {})
        rolling = scorecard.get("rolling", {})
        monitor = scorecard.get("monitor", {})
        parts.append(f"<h2>template {_html.escape(template)}</h2>")
        parts.append(
            "<table><tr><th>statistic</th><th>value</th></tr>"
            + "".join(
                f"<tr><th>{_html.escape(label)}</th>"
                f"<td>{_fmt(value, 4)}</td></tr>"
                for label, value in (
                    ("coverage", synopsis.get("coverage")),
                    ("purity", synopsis.get("purity")),
                    ("entropy", synopsis.get("entropy")),
                    ("rolling accuracy", rolling.get("accuracy")),
                    ("rolling regret", rolling.get("regret")),
                    ("confidence margin", rolling.get("confidence_margin")),
                    ("drift pressure", monitor.get("drift_pressure")),
                )
            )
            + "</table>"
        )
        slo_rows = report.get("slo", {}).get(template, [])
        if slo_rows:
            parts.append(
                "<table><tr><th>SLO</th><th>state</th>"
                "<th>burn (short)</th><th>burn (long)</th>"
                "<th>objective</th></tr>"
                + "".join(
                    f"<tr><th>{_html.escape(row['name'])}</th>"
                    f"<td>{_badge(row['state'])}</td>"
                    f"<td>{_fmt(row['burn_short'], 2)}</td>"
                    f"<td>{_fmt(row['burn_long'], 2)}</td>"
                    f"<td>{row['objective']}</td></tr>"
                    for row in slo_rows
                )
                + "</table>"
            )
        executions = _series_values(
            telemetry, "ppc_executions_total", template=template
        )
        p95 = _series_values(
            telemetry,
            "ppc_stage_seconds",
            field="p95",
            template=template,
            stage="predict",
        )
        for label, values in (
            ("executions", executions),
            ("predict p95 (s)", p95),
        ):
            svg = _svg_sparkline(values)
            if svg:
                parts.append(
                    f"<p>{_html.escape(label)}: {svg} "
                    f"<small>last {_fmt(values[-1], 6)}</small></p>"
                )
    lifecycle = report.get("lifecycle")
    if lifecycle:
        stats = lifecycle.get("stats", {})
        parts.append("<h2>lifecycle journal</h2>")
        parts.append(
            f"<p>{stats.get('emitted', 0)} events emitted, "
            f"{stats.get('dropped', 0)} rotated out (ring "
            f"{stats.get('occupancy', 0)}/{stats.get('capacity', 0)})</p>"
        )
        timeline = lifecycle.get("timeline", [])
        if timeline:
            parts.append(
                "<table><tr><th>seq</th><th>template</th><th>kind</th>"
                "<th>trace</th></tr>"
                + "".join(
                    f"<tr><td>{event.get('seq', '')}</td>"
                    f"<th>{_html.escape(str(event.get('template', '')))}</th>"
                    f"<td>{_html.escape(str(event.get('kind', '')))}</td>"
                    f"<td>{'' if event.get('trace') is None else event['trace']}"
                    f"</td></tr>"
                    for event in timeline[-16:]
                )
                + "</table>"
            )
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"
