"""Decision-tracing overhead on the predict/execute hot path.

Three identically seeded sessions run the same trajectory workload
with tracing disabled, at the default sampling policy (head + error
bias — the shipped configuration), and fully traced (every execution
records a complete span tree).  Sampling is deterministic and
RNG-free, so the three sessions make bit-identical decisions and the
comparison isolates pure tracing cost.

The acceptance bar: the *sampled* default must stay within 10 % of the
untraced baseline — the flight recorder is meant to be always-on.
"""

from time import perf_counter

from _bench_utils import write_bench_json, write_result
from repro.config import PPCConfig, TraceConfig
from repro.core.framework import TemplateSession
from repro.obs import names as metric_names
from repro.tpch import plan_space_for
from repro.workload import RandomTrajectoryWorkload

WARMUP = 500
PROBES = 1500
REPEATS = 3

MODES = (
    ("off", TraceConfig(enabled=False)),
    ("sampled", TraceConfig()),  # shipped default: head + error bias
    ("full", TraceConfig(interval=1, capacity=4096, error_capacity=512)),
)


def _session(trace: TraceConfig) -> TemplateSession:
    config = PPCConfig(
        confidence_threshold=0.8,
        mean_invocation_probability=0.05,
        drift_response=False,
        trace=trace,
    )
    return TemplateSession(plan_space_for("Q1"), config, seed=17)


def _measure_modes() -> "tuple[dict[str, float], dict[str, TemplateSession]]":
    """Best-of-N per-instance seconds for each tracing mode.

    All sessions advance through the same instance stream in lockstep,
    so repeat ``k`` times the same cache state in every mode and the
    minimum over repeats is a like-for-like comparison.
    """
    sessions = {name: _session(cfg) for name, cfg in MODES}
    warm = RandomTrajectoryWorkload(2, spread=0.02, seed=5).generate(WARMUP)
    for x in warm:
        for session in sessions.values():
            session.execute(x)
    probes = RandomTrajectoryWorkload(2, spread=0.02, seed=6).generate(
        PROBES * REPEATS
    )
    best = dict.fromkeys(sessions, float("inf"))
    for repeat in range(REPEATS):
        batch = probes[repeat * PROBES : (repeat + 1) * PROBES]
        for name, session in sessions.items():
            t0 = perf_counter()
            for x in batch:
                session.execute(x)
            best[name] = min(best[name], (perf_counter() - t0) / PROBES)
    # Sanity: full mode actually recorded the probes it claims to time.
    assert len(sessions["full"].tracer.traces()) > 0
    assert len(sessions["off"].tracer.traces()) == 0
    return best, sessions


def _predict_p95(session: TemplateSession) -> float:
    digest = session.metrics.histogram_summary(
        metric_names.STAGE_SECONDS, template="Q1", stage="predict"
    )
    return float(digest["p95"]) if digest else 0.0


def test_trace_overhead(benchmark):
    best, sessions = benchmark.pedantic(
        _measure_modes, rounds=1, iterations=1
    )
    baseline = best["off"]
    lines = [
        "Decision-tracing overhead on the predict/execute path",
        f"(Q1, {WARMUP} warmup + {REPEATS}x{PROBES} probes, best of "
        f"{REPEATS})",
        "",
    ]
    modes_payload = {}
    for name, __ in MODES:
        overhead = best[name] / baseline - 1.0
        lines.append(
            f"{name:8s}: {best[name] * 1e6:8.2f} us/instance  "
            f"({overhead:+.1%} vs off)"
        )
        modes_payload[name] = {
            "us_per_instance": best[name] * 1e6,
            "overhead_pct": overhead * 100.0,
            "predict_p95_seconds": _predict_p95(sessions[name]),
        }
    write_result("trace_overhead", lines)
    write_bench_json(
        "trace",
        {
            "bench": "trace_overhead",
            "workload": {
                "template": "Q1",
                "warmup": WARMUP,
                "probes": PROBES,
                "repeats": REPEATS,
            },
            "modes": modes_payload,
            "gate": {"mode": "sampled", "max_overhead_pct": 10.0},
        },
    )
    # The shipped default must be cheap enough to leave on.
    assert best["sampled"] < 1.10 * baseline
