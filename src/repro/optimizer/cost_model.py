"""Cost-model constants for the synthetic optimizer.

The constants follow the textbook (and PostgreSQL-flavoured) convention
of charging sequential page reads 1.0 unit and scaling everything else
relative to that.  Their absolute values are unimportant for the
reproduction; what matters is that they induce the classic plan-choice
crossovers — sequential scan vs. index scan as selectivity grows, hash
join vs. index nested-loop join as outer cardinality grows, merge join
once inputs are (or can cheaply be made) sorted — because those
crossovers are what give plan spaces their structure (Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class CostModel:
    """Unit costs used by every physical operator."""

    seq_page_cost: float = 1.0
    random_page_cost: float = 2.0
    cpu_tuple_cost: float = 0.01
    cpu_compare_cost: float = 0.0025
    index_probe_cost: float = 3.0
    hash_build_cost: float = 0.02
    hash_probe_cost: float = 0.01
    sort_cost_factor: float = 0.011
    merge_cost_factor: float = 0.008
    #: Rows a hash build side can hold before spilling to disk.
    hash_memory_rows: float = 50_000.0
    #: Extra per-row penalty factor applied to spilled hash joins
    #: (approximates the two extra partition passes of Grace hash).
    hash_spill_factor: float = 2.0

    def __post_init__(self) -> None:
        for name in (
            "seq_page_cost",
            "random_page_cost",
            "cpu_tuple_cost",
            "cpu_compare_cost",
            "index_probe_cost",
            "hash_build_cost",
            "hash_probe_cost",
            "sort_cost_factor",
            "merge_cost_factor",
            "hash_memory_rows",
            "hash_spill_factor",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"cost constant {name} must be > 0")
