"""Online-insertable bounded-bucket histogram.

The ONLINE-APPROXIMATE-LSH-HISTOGRAMS predictor inserts newly optimized
plan-space points into its histograms one at a time (Section IV-D), so
the synopsis structure must support streaming insertion under a hard
bucket budget.  This implementation follows the streaming-histogram
approach of Ben-Haim and Tom-Tov: each insertion creates a point-mass
bucket, and when the budget is exceeded the two adjacent buckets whose
merge produces the narrowest combined bucket are coalesced.  Merging
the narrowest pair keeps boundaries aligned with the dense z-order
clusters, approximating the error-minimizing constructions that the
static variants compute offline.
"""

from __future__ import annotations

import bisect

from repro.exceptions import HistogramError
from repro.histograms.base import Bucket, Histogram


class IncrementalHistogram(Histogram):
    """Histogram with at most ``max_buckets`` buckets, built by insertion."""

    def __init__(
        self,
        max_buckets: int = 40,
        domain: tuple[float, float] = (0.0, 1.0),
    ) -> None:
        if max_buckets < 1:
            raise HistogramError("max_buckets must be >= 1")
        super().__init__(domain)
        self.max_buckets = max_buckets
        self._los: list[float] = []

    def insert(self, value: float, cost: float = 0.0, weight: float = 1.0) -> None:
        """Insert one labeled point, merging buckets if over budget.

        ``weight`` scales the point's mass (and its cost contribution);
        fractional weights implement the discounted insertion of the
        positive-feedback extension.
        """
        self._check_in_domain(value)
        if weight <= 0.0:
            raise HistogramError("insertion weight must be > 0")
        index = bisect.bisect_left(self._los, value)

        # Absorb into an existing bucket when the value already lies
        # inside one; otherwise create a point-mass bucket.
        if index < len(self.buckets) and self.buckets[index].lo == value:
            bucket = self.buckets[index]
        elif index > 0 and self.buckets[index - 1].hi >= value:
            bucket = self.buckets[index - 1]
        else:
            bucket = Bucket(lo=value, hi=value)
            self.buckets.insert(index, bucket)
            self._los.insert(index, value)
        bucket.count += weight
        bucket.cost_sum += cost * weight
        self._mutated()

        while len(self.buckets) > self.max_buckets:
            self._merge_narrowest_pair()

    def shrink(self, new_max: int) -> None:
        """Reduce the bucket budget in place (memory-governor support)."""
        if new_max < 1:
            raise HistogramError("max_buckets must be >= 1")
        self.max_buckets = new_max
        while len(self.buckets) > self.max_buckets:
            self._merge_narrowest_pair()

    def _merge_narrowest_pair(self) -> None:
        """Coalesce the adjacent pair whose union is narrowest."""
        best_index = 0
        best_span = float("inf")
        for i in range(len(self.buckets) - 1):
            span = self.buckets[i + 1].hi - self.buckets[i].lo
            if span < best_span:
                best_span = span
                best_index = i
        left = self.buckets[best_index]
        right = self.buckets.pop(best_index + 1)
        self._los.pop(best_index + 1)
        left.hi = right.hi
        left.count += right.count
        left.cost_sum += right.cost_sum
        self._mutated()

    def clear(self) -> None:
        """Drop all buckets (used when a template's plan space drifts)."""
        self.buckets.clear()
        self._los.clear()
        self._mutated()
