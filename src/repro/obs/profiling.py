"""Deterministic in-process stage profiler for the decision hot path.

Rides the span seam of :mod:`repro.obs.tracing`: every stage the
framework already brackets with ``trace.span(...)`` — normalize →
density lookup (per-transform) → vote aggregation → noise elimination →
confidence → decide → execute → feedback → drift — is timed into
per-template accumulators keyed by the full stage *path*, so both
cumulative and self time fall out (self = cumulative minus the direct
children's cumulative).

Three properties are load-bearing:

* **Decisions never change.**  Profiling consumes no RNG and never
  flips ``trace.active`` — a profiled-but-unsampled execution gets a
  :class:`ProfileTrace` whose ``active`` stays ``False``, so attribute
  computation stays skipped and ``execute_batch`` keeps its precomputed
  vectorized predictions.  The lockstep parity test in
  ``tests/obs/test_profiling.py`` pins this bit-for-bit.
* **O(1) when disabled.**  With ``ProfileConfig.enabled`` false the
  tracer owns no profiler object at all; unsampled executions return
  the shared ``NOOP_TRACE`` singleton exactly as before.
* **Deterministic sampling, injected clock.**  Every ``interval``-th
  execution per template is profiled (a plain counter, no RNG), and the
  clock is injectable — tests drive a fake clock and assert exact
  stage times; production defaults to ``perf_counter``.

Rendering: :meth:`StageProfiler.report` returns the aggregate,
:func:`render_profile` draws the text stage tree, and
:meth:`StageProfiler.collapsed` emits ``template;stage;...`` →
self-microseconds stacks in the collapsed format flamegraph tools eat.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from contextlib import contextmanager
from time import perf_counter
from typing import Any

from repro.config import ProfileConfig

__all__ = [
    "ProfileFrame",
    "ProfileTrace",
    "StageProfiler",
    "render_profile",
]

#: Name of the implicit root stage wrapping one whole execution (the
#: same name ``DecisionTrace`` gives its root span).
ROOT_STAGE = "decision"


class _PathStat:
    """Accumulator for one stage path: call count + cumulative time."""

    __slots__ = ("calls", "seconds")

    def __init__(self) -> None:
        self.calls = 0
        self.seconds = 0.0


class _SilentSpan:
    """Attribute sink yielded by :meth:`ProfileTrace.span`."""

    __slots__ = ()

    def set(self, **attributes: Any) -> "_SilentSpan":
        return self


_SILENT_SPAN = _SilentSpan()


class ProfileFrame:
    """One execution's stage walls, folded into the profiler at the end.

    The frame keeps a stack of ``(stage name, start time)`` mirroring
    the open spans; ``exit`` records ``(full path, duration)`` locally
    and :meth:`complete` folds the whole execution into the owning
    :class:`StageProfiler` in one pass — so a raised execution (whose
    spans are closed by ``DecisionTrace.finish``) still lands.
    """

    __slots__ = ("_clock", "_entries", "_path", "_profiler", "_starts", "_template")

    def __init__(
        self,
        profiler: "StageProfiler",
        template: str,
        clock: Callable[[], float],
    ) -> None:
        self._profiler = profiler
        self._template = template
        self._clock = clock
        self._path: list[str] = [ROOT_STAGE]
        self._starts: list[float] = [clock()]
        self._entries: list[tuple[tuple[str, ...], float]] = []

    def enter(self, name: str) -> None:
        self._path.append(name)
        self._starts.append(self._clock())

    def exit(self) -> None:
        if len(self._starts) <= 1:
            return
        start = self._starts.pop()
        path = tuple(self._path)
        self._path.pop()
        self._entries.append((path, self._clock() - start))

    def complete(self) -> None:
        """Close anything still open, time the root, fold the frame."""
        while len(self._starts) > 1:
            self.exit()
        start = self._starts.pop()
        self._entries.append(((ROOT_STAGE,), self._clock() - start))
        self._profiler._fold(self._template, self._entries)


class ProfileTrace:
    """Trace stand-in for profiled-but-unsampled executions.

    ``active`` stays ``False`` — exactly like ``NOOP_TRACE`` — so
    callers skip attribute computation and the batch path keeps its
    precomputed predictions; only the stage walls are read.  Decisions
    are therefore bit-identical to the unprofiled run.
    """

    __slots__ = ("profile",)

    active = False

    def __init__(self, profile: ProfileFrame) -> None:
        self.profile = profile

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[_SilentSpan]:
        self.profile.enter(name)
        try:
            yield _SILENT_SPAN
        finally:
            self.profile.exit()

    def annotate(self, **attributes: Any) -> None:
        return None


class StageProfiler:
    """Per-template stage-time aggregation over many executions.

    One instance is shared by every session of a framework (or owned by
    a standalone session), so ``report()`` covers the whole deployment.
    ``begin`` is the sampling gate: it returns a :class:`ProfileFrame`
    for every ``interval``-th execution of each template and ``None``
    otherwise — deterministic, counter-based, RNG-free.
    """

    def __init__(
        self,
        config: "ProfileConfig | None" = None,
        clock: "Callable[[], float] | None" = None,
    ) -> None:
        self.config = config if config is not None else ProfileConfig(enabled=True)
        self._clock = clock if clock is not None else perf_counter
        self._stats: dict[str, dict[tuple[str, ...], _PathStat]] = {}
        self._order: dict[str, dict[tuple[str, ...], int]] = {}
        self._seen: dict[str, int] = {}
        self._profiled: dict[str, int] = {}
        self._dropped_paths: dict[str, int] = {}

    def begin(self, template: str) -> "ProfileFrame | None":
        """Sampling gate: a frame for every ``interval``-th execution."""
        seen = self._seen.get(template, 0)
        self._seen[template] = seen + 1
        if seen % self.config.interval != 0:
            return None
        return ProfileFrame(self, template, self._clock)

    def _fold(self, template: str, entries: list[tuple[tuple[str, ...], float]]) -> None:
        stats = self._stats.setdefault(template, {})
        order = self._order.setdefault(template, {})
        self._profiled[template] = self._profiled.get(template, 0) + 1
        for path, seconds in entries:
            stat = stats.get(path)
            if stat is None:
                if len(stats) >= self.config.max_paths:
                    # Bounded memory: past the cap new paths are counted
                    # as dropped instead of accumulated (report() shows
                    # the drop count so truncation is never silent).
                    self._dropped_paths[template] = (
                        self._dropped_paths.get(template, 0) + 1
                    )
                    continue
                stat = stats[path] = _PathStat()
                order[path] = len(order)
            stat.calls += 1
            stat.seconds += seconds

    def reset(self) -> None:
        self._stats.clear()
        self._order.clear()
        self._seen.clear()
        self._profiled.clear()
        self._dropped_paths.clear()

    def _preorder(self, template: str) -> list[tuple[str, ...]]:
        """Paths parent-before-children, siblings in first-seen order."""
        order = self._order.get(template, {})

        def key(path: tuple[str, ...]) -> tuple[int, ...]:
            return tuple(
                order.get(path[: depth + 1], len(order))
                for depth in range(len(path))
            )

        return sorted(self._stats.get(template, {}), key=key)

    def report(self) -> dict[str, Any]:
        """Aggregate stage table: per template, per path, calls + time.

        ``self_seconds`` is cumulative time minus the cumulative time of
        the path's *direct* children, clamped at zero (clock jitter on
        near-empty stages can make the raw difference slightly
        negative).
        """
        templates: dict[str, Any] = {}
        for template, stats in self._stats.items():
            rows = []
            for path in self._preorder(template):
                stat = stats[path]
                child_seconds = sum(
                    other.seconds
                    for other_path, other in stats.items()
                    if len(other_path) == len(path) + 1
                    and other_path[: len(path)] == path
                )
                rows.append(
                    {
                        "path": list(path),
                        "stage": path[-1],
                        "depth": len(path) - 1,
                        "calls": stat.calls,
                        "cum_seconds": stat.seconds,
                        "self_seconds": max(stat.seconds - child_seconds, 0.0),
                    }
                )
            templates[template] = {
                "executions_seen": self._seen.get(template, 0),
                "executions_profiled": self._profiled.get(template, 0),
                "paths_dropped": self._dropped_paths.get(template, 0),
                "stages": rows,
            }
        return {
            "enabled": self.config.enabled,
            "interval": self.config.interval,
            "templates": templates,
        }

    def collapsed(self) -> dict[str, float]:
        """Collapsed stacks: ``template;stage;...`` → self-microseconds.

        The flamegraph convention — one entry per full stack, weighted
        by self time, semicolon-joined frames.
        """
        report = self.report()
        stacks: dict[str, float] = {}
        for template, payload in report["templates"].items():
            for row in payload["stages"]:
                key = ";".join([template, *row["path"]])
                stacks[key] = row["self_seconds"] * 1e6
        return stacks


def _render_template(name: str, payload: dict[str, Any], lines: list[str]) -> None:
    profiled = payload["executions_profiled"]
    lines.append(
        f"template {name}: {profiled} of {payload['executions_seen']} "
        "executions profiled"
    )
    if payload["paths_dropped"]:
        lines.append(
            f"  (truncated: {payload['paths_dropped']} stage paths over cap)"
        )
    lines.append(
        f"  {'stage':<32s} {'calls':>8s} {'cum ms':>10s} "
        f"{'self ms':>10s} {'per-call us':>12s}"
    )
    for row in payload["stages"]:
        indent = "  " * row["depth"]
        per_call = (
            row["cum_seconds"] / row["calls"] * 1e6 if row["calls"] else 0.0
        )
        lines.append(
            f"  {indent + row['stage']:<32s} {row['calls']:>8d} "
            f"{row['cum_seconds'] * 1e3:>10.3f} "
            f"{row['self_seconds'] * 1e3:>10.3f} {per_call:>12.1f}"
        )


def render_profile(report: dict[str, Any]) -> str:
    """Human-readable stage tree for ``repro profile``."""
    lines = [
        "stage profiler"
        f" (interval {report['interval']},"
        f" {'enabled' if report['enabled'] else 'disabled'})"
    ]
    for name in sorted(report["templates"]):
        _render_template(name, report["templates"][name], lines)
    if len(lines) == 1:
        lines.append("no executions profiled")
    return "\n".join(lines)
