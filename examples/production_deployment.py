"""Production-flavored deployment: budget, persistence, relevance.

Puts the beyond-the-paper machinery together the way a server would:

1. run three templates against one shared memory budget enforced by the
   :class:`MemoryGovernor` (cold templates lose histogram buckets first);
2. analyze one template's accumulated samples for parameter relevance
   and report which of its parameters actually drive plan choice;
3. persist the hottest template's synopses to JSON and reload them into
   a fresh predictor — the restart story.

Run:  python examples/production_deployment.py
"""

import json
import tempfile

import numpy as np

from repro import PPCConfig, PPCFramework, plan_space_for
from repro.core import (
    MemoryGovernor,
    ParameterRelevanceAnalyzer,
    load_predictor,
    save_predictor,
)
from repro.core.point import SamplePool
from repro.workload import RandomTrajectoryWorkload


def main() -> None:
    framework = PPCFramework(
        PPCConfig(confidence_threshold=0.8, drift_response=False), seed=0
    )
    governor = MemoryGovernor(budget_bytes=9_000)

    spaces = {name: plan_space_for(name) for name in ("Q0", "Q1", "Q5")}
    for space in spaces.values():
        governor.register(framework.register(space))

    workloads = {
        name: RandomTrajectoryWorkload(
            space.dimensions, spread=0.02, seed=11
        ).generate(600)
        for name, space in spaces.items()
    }

    # Q0 and Q1 stay hot; Q5 runs only during a brief early burst.
    rng = np.random.default_rng(5)
    for i in range(600):
        names = ("Q0", "Q1", "Q5") if i < 150 else ("Q0", "Q1")
        name = names[rng.integers(len(names))]
        framework.execute(name, workloads[name][i])
        governor.touch(name)
        if i % 50 == 49:
            governor.enforce()

    print("=== memory governor ===")
    print(f"budget            : {governor.budget_bytes:,d} bytes")
    print(f"total after run   : {governor.total_bytes:,d} bytes")
    for name in spaces:
        session = framework.session(name)
        print(
            f"{name}: {session.online.space_bytes():6,d} bytes, "
            f"b_h={session.online.predictor.max_buckets:3d}, "
            f"recall~{session.monitor.recall_estimate:.2f}"
        )
    reclaimed = {}
    for action in governor.actions:
        reclaimed.setdefault(action.template, []).append(action.action)
    print(f"reclamations      : {reclaimed or 'none needed'}")

    # Parameter relevance on Q5's accumulated history.
    print("\n=== parameter relevance (Q5) ===")
    session = framework.session("Q5")
    records = [r for r in session.records if r.optimizer_invoked]
    pool = SamplePool(spaces["Q5"].dimensions)
    for record in records:
        pool.add(record.point, record.optimal_plan, record.optimal_cost)
    if len(pool) >= 20:
        analyzer = ParameterRelevanceAnalyzer(pool)
        rates = analyzer.axis_flip_rates()
        for index, predicate in enumerate(
            spaces["Q5"].template.predicates
        ):
            marker = "drives plans" if rates[index] > 1.0 else "mostly inert"
            print(f"  {str(predicate):40s} rate={rates[index]:.2f}  {marker}")

    # Persist and restore the hottest template's synopses.
    print("\n=== persistence (Q1) ===")
    hot = framework.session("Q1").online.predictor
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        path = save_predictor(hot, handle.name)
    size = len(json.dumps(json.loads(open(path).read())))
    restored = load_predictor(path)
    probe = workloads["Q1"][-1]
    original = hot.predict(probe)
    reloaded = restored.predict(probe)
    print(f"state file size   : {size:,d} bytes")
    print(f"prediction before : {original and f'P{original.plan_id}'}")
    print(f"prediction after  : {reloaded and f'P{reloaded.plan_id}'}")
    assert (original is None) == (reloaded is None)


if __name__ == "__main__":
    main()
