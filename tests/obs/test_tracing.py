"""Span-based decision tracing: spans, sampler, recorder, round-trip."""

import numpy as np
import pytest

from repro.config import PPCConfig, TraceConfig
from repro.core.framework import ExecutionRecord, TemplateSession
from repro.exceptions import ConfigurationError
from repro.obs import names
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import (
    NOOP_TRACE,
    DecisionTrace,
    DecisionTracer,
    FlightRecorder,
    dumps_jsonl,
    loads_jsonl,
    render_trace,
    trace_from_dict,
    trace_to_dict,
)


def _record(
    suboptimality: float = 1.0,
    degraded: bool = False,
    fallback_source: str = "",
) -> ExecutionRecord:
    """A minimal fabricated record for tracer/recorder tests."""
    return ExecutionRecord(
        template="T",
        point=np.array([0.5, 0.5]),
        predicted=3,
        confidence=0.9,
        optimizer_invoked=False,
        invocation_reason="none",
        executed_plan=3,
        execution_cost=suboptimality,
        optimal_plan=3,
        optimal_cost=1.0,
        drift_triggered=False,
        degraded=degraded,
        fallback_source=fallback_source,
    )


class TestSpanTree:
    def test_nesting_and_attributes(self):
        trace = DecisionTrace("T", 0, "forced")
        with trace.span("predict") as outer:
            outer.set(plan=3)
            with trace.span("transform", index=0) as inner:
                inner.set(vote=3)
        names_seen = [span.name for span in trace.spans()]
        assert names_seen == ["predict", "transform"]
        transform = next(trace.spans("transform"))
        assert transform.attributes == {"index": 0, "vote": 3}
        assert trace.span_count == 2

    def test_exception_marks_error_status_and_closes(self):
        trace = DecisionTrace("T", 0, "forced")
        with pytest.raises(RuntimeError):
            with trace.span("predict"):
                raise RuntimeError("boom")
        span = next(trace.spans("predict"))
        assert span.status == "error"
        # The stack unwound: annotate targets the root again.
        trace.annotate(after=True)
        assert trace.root.attributes == {"after": True}

    def test_finish_closes_leftover_spans_and_seals_outcome(self):
        trace = DecisionTrace("T", 4, "head")
        trace.open_span("predict")
        trace.finish({"executed_plan": 1, "optimal_plan": 1})
        assert trace.outcome == {"executed_plan": 1, "optimal_plan": 1}
        assert next(trace.spans("predict")).duration >= 0.0

    def test_errored_property_covers_all_incident_shapes(self):
        for outcome, expected in [
            ({"error": "RuntimeError: x"}, True),
            ({"degraded": True}, True),
            ({"fallback_source": "stale_cache"}, True),
            ({"degraded": False, "fallback_source": ""}, False),
        ]:
            trace = DecisionTrace("T", 0, "forced")
            trace.finish(outcome)
            assert trace.errored is expected


class TestNoopPath:
    def test_noop_trace_is_inert_and_shared(self):
        assert NOOP_TRACE.active is False
        span = NOOP_TRACE.span("predict", plan=1)
        with span as inner:
            assert inner.set(anything=1) is inner
        assert NOOP_TRACE.annotate(x=1) is None

    def test_disabled_tracer_returns_the_singleton(self):
        tracer = DecisionTracer("T", config=TraceConfig(enabled=False))
        assert tracer.begin() is NOOP_TRACE


class TestSerialization:
    def test_round_trip_is_lossless(self):
        trace = DecisionTrace("Q1", 7, "interval")
        trace.point = [0.25, 0.75]
        with trace.span("predict") as span:
            span.set(plan=2, counts=[1.0, 0.0], z=np.float64(0.5))
        trace.finish({"executed_plan": 2, "optimal_plan": 2})
        rebuilt = trace_from_dict(trace_to_dict(trace))
        assert rebuilt.to_dict() == trace.to_dict()

    def test_numpy_attributes_become_plain_json(self):
        trace = DecisionTrace("Q1", 0, "forced")
        with trace.span("transform") as span:
            span.set(z=np.float64(0.5), counts=np.array([1, 2]))
        trace.finish({})
        attrs = trace_to_dict(trace)["root"]["children"][0]["attributes"]
        assert attrs == {"z": 0.5, "counts": [1, 2]}
        assert type(attrs["z"]) is float

    def test_jsonl_round_trip(self):
        traces = []
        for seq in range(3):
            trace = DecisionTrace("Q1", seq, "head")
            trace.finish({"executed_plan": seq, "optimal_plan": 0})
            traces.append(trace)
        text = dumps_jsonl(traces)
        assert text.endswith("\n")
        rebuilt = loads_jsonl(text)
        assert [t.to_dict() for t in rebuilt] == [t.to_dict() for t in traces]

    def test_empty_jsonl(self):
        assert dumps_jsonl([]) == ""
        assert loads_jsonl("") == []


class TestFlightRecorder:
    def test_eviction_counts_and_occupancy(self):
        recorder = FlightRecorder(capacity=2, error_capacity=2)
        for seq in range(3):
            trace = DecisionTrace("T", seq, "head")
            trace.finish({})
            recorder.admit(trace)
        assert recorder.recorded == 3
        assert recorder.dropped == 1
        assert recorder.occupancy == 2
        assert [t.seq for t in recorder.traces()] == [1, 2]

    def test_error_traces_survive_healthy_traffic(self):
        recorder = FlightRecorder(capacity=2, error_capacity=4)
        incident = DecisionTrace("T", 0, "head")
        incident.finish({"degraded": True})
        recorder.admit(incident)
        for seq in range(1, 10):
            trace = DecisionTrace("T", seq, "head")
            trace.finish({})
            recorder.admit(trace)
        assert incident in recorder.traces()

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestSampler:
    def test_head_then_interval_then_skip(self):
        tracer = DecisionTracer("T", config=TraceConfig(head=2, interval=4))
        seen = []
        for __ in range(9):
            trace = tracer.begin()
            seen.append(trace.decision if trace.active else "skipped")
        assert seen == [
            "head",
            "head",
            "skipped",
            "skipped",
            "interval",
            "skipped",
            "skipped",
            "skipped",
            "interval",
        ]

    def test_incident_arms_error_burst_even_when_unsampled(self):
        tracer = DecisionTracer(
            "T", config=TraceConfig(head=0, interval=0, error_burst=2)
        )
        trace = tracer.begin()
        assert trace is NOOP_TRACE
        tracer.finish(trace, record=_record(degraded=True))
        follow = [tracer.begin() for __ in range(3)]
        assert [t.decision if t.active else "skipped" for t in follow] == [
            "error_bias",
            "error_bias",
            "skipped",
        ]

    def test_forced_trace_bypasses_disabled_config(self):
        tracer = DecisionTracer("T", config=TraceConfig(enabled=False))
        trace = tracer.begin(force=True)
        assert trace.active
        assert trace.decision == "forced"

    def test_sampling_consumes_no_rng(self):
        """The whole begin/finish cycle must not touch global RNG state."""
        state = np.random.get_state()[1].copy()
        tracer = DecisionTracer("T", config=TraceConfig(head=4, error_burst=2))
        for __ in range(8):
            trace = tracer.begin()
            tracer.finish(trace, record=_record(degraded=True))
        assert np.array_equal(np.random.get_state()[1], state)


class TestTracerAccounting:
    def test_metrics_and_stats_agree(self):
        registry = MetricsRegistry()
        tracer = DecisionTracer(
            "T",
            config=TraceConfig(head=2, interval=0, capacity=2, error_capacity=2),
            metrics=registry,
        )
        for __ in range(4):
            trace = tracer.begin()
            tracer.finish(trace, record=_record())
        stats = tracer.stats()
        assert stats["sampler"] == {
            "forced": 0,
            "head": 2,
            "error_bias": 0,
            "interval": 0,
            "skipped": 2,
        }
        assert stats["recorded"] == 2
        assert stats["dropped"] == 0
        assert stats["occupancy"] == 2
        recorded = registry.counter(names.TRACE_RECORDED_TOTAL, template="T")
        assert recorded.value == 2.0
        head = registry.counter(
            names.TRACE_SAMPLER_TOTAL, template="T", decision="head"
        )
        assert head.value == 2.0

    def test_error_outcome_recorded(self):
        tracer = DecisionTracer("T", config=TraceConfig(head=1))
        trace = tracer.begin()
        tracer.finish(trace, error=RuntimeError("optimizer down"))
        [stored] = tracer.traces()
        assert stored.outcome == {"error": "RuntimeError: optimizer down"}
        assert stored.errored


class TestTraceConfigValidation:
    def test_negative_head_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceConfig(head=-1)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceConfig(capacity=0)


class TestSessionIntegration:
    @pytest.fixture()
    def session(self, tiny_space):
        config = PPCConfig(
            confidence_threshold=0.6,
            mean_invocation_probability=0.05,
            drift_response=False,
            trace=TraceConfig(head=4, interval=0),
        )
        return TemplateSession(tiny_space, config, seed=0)

    def test_execute_records_head_traces(self, session):
        for __ in range(6):
            session.execute(np.array([0.4, 0.4]))
        traces = session.tracer.traces()
        assert len(traces) == 4
        assert all(t.outcome is not None for t in traces)
        assert all(next(t.spans("normalize"), None) is not None for t in traces)

    def test_explain_forces_full_span_tree(self, session):
        x = np.array([0.35, 0.35])
        for __ in range(10):
            session.execute(x)
        trace = session.explain(x)
        assert trace.decision == "forced"
        span_names = {span.name for span in trace.spans()}
        assert {"normalize", "predict", "transform", "aggregate"} <= span_names
        transforms = list(trace.spans("transform"))
        assert len(transforms) == session.config.transforms
        for span in transforms:
            assert "counts" in span.attributes
            assert "vote" in span.attributes
        confidence = next(trace.spans("confidence"), None)
        if confidence is not None:
            assert "gamma" in confidence.attributes
            assert "passed" in confidence.attributes

    def test_render_contains_outcome_line(self, session):
        trace = session.explain(np.array([0.5, 0.5]))
        text = render_trace(trace)
        assert text.startswith("trace tiny#")
        assert "outcome:" in text
        assert "normalize" in text
