"""Vectorized histogram range queries match the scalar path."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.histograms import (
    EquiDepthHistogram,
    IncrementalHistogram,
    MaxDiffHistogram,
)

unit_floats = st.floats(0.0, 1.0, allow_nan=False)


class TestBatchMatchesScalar:
    @given(
        values=st.lists(unit_floats, min_size=1, max_size=100),
        queries=st.lists(
            st.tuples(unit_floats, unit_floats), min_size=1, max_size=20
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_incremental_counts(self, values, queries):
        hist = IncrementalHistogram(max_buckets=10)
        for i, v in enumerate(values):
            hist.insert(v, cost=float(i))
        los = np.array([min(a, b) for a, b in queries])
        his = np.array([max(a, b) for a, b in queries])
        batch = hist.range_count_batch(los, his)
        scalar = [hist.range_count(lo, hi) for lo, hi in zip(los, his, strict=True)]
        assert batch == pytest.approx(scalar)

    @given(
        values=st.lists(unit_floats, min_size=1, max_size=100),
        queries=st.lists(
            st.tuples(unit_floats, unit_floats), min_size=1, max_size=20
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_maxdiff_costs(self, values, queries):
        costs = list(range(len(values)))
        hist = MaxDiffHistogram.build(values, costs, bucket_count=8)
        los = np.array([min(a, b) for a, b in queries])
        his = np.array([max(a, b) for a, b in queries])
        batch = hist.range_cost_batch(los, his)
        scalar = [hist.range_cost(lo, hi) for lo, hi in zip(los, his, strict=True)]
        assert batch == pytest.approx(scalar)

    def test_empty_histogram_batch(self):
        hist = IncrementalHistogram(max_buckets=4)
        counts = hist.range_count_batch(np.array([0.1]), np.array([0.9]))
        assert counts.tolist() == [0.0]

    def test_cache_invalidated_on_insert(self):
        hist = IncrementalHistogram(max_buckets=4)
        hist.insert(0.5)
        before = hist.range_count_batch(np.array([0.0]), np.array([1.0]))[0]
        hist.insert(0.5)
        after = hist.range_count_batch(np.array([0.0]), np.array([1.0]))[0]
        assert before == 1.0
        assert after == 2.0

    def test_cache_invalidated_on_clear(self):
        hist = IncrementalHistogram(max_buckets=4)
        hist.insert(0.5)
        hist.range_count_batch(np.array([0.0]), np.array([1.0]))
        hist.clear()
        assert hist.range_count_batch(
            np.array([0.0]), np.array([1.0])
        ).tolist() == [0.0]

    def test_equidepth_full_domain(self):
        values = np.random.default_rng(0).uniform(0, 1, 200)
        hist = EquiDepthHistogram.build(values, bucket_count=10)
        total = hist.range_count_batch(np.array([0.0]), np.array([1.0]))[0]
        assert total == pytest.approx(200.0)
