"""Multi-template workload mixture.

The paper evaluates templates in isolation; a real server interleaves
them with a skewed popularity distribution (a handful of templates
dominate, a long tail runs occasionally).  :class:`MixtureWorkload`
produces that shape: template popularity follows a Zipf law, each
template's instances follow their own random trajectory (temporal
locality within a template survives interleaving), and the emitted
stream is the interleaved sequence of ``(template_name, point)`` pairs.

Popularity can also be pinned with explicit ``weights`` — the flash
crowd scenario swaps a uniform mixture for one where a single template
suddenly dominates, and validated weights keep that knob from silently
producing a degenerate distribution.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ConfigurationError, WorkloadError
from repro.rng import as_generator
from repro.workload.trajectories import RandomTrajectoryWorkload


class MixtureWorkload:
    """Interleaved multi-template workload with Zipfian popularity."""

    def __init__(
        self,
        dimensions: dict[str, int],
        spread: float = 0.02,
        zipf_exponent: float = 1.0,
        seed: "int | np.random.Generator | None" = None,
        weights: "dict[str, float] | None" = None,
    ) -> None:
        if not dimensions:
            raise WorkloadError("mixture needs at least one template")
        if not math.isfinite(zipf_exponent):
            raise ConfigurationError(
                f"zipf exponent must be finite, got {zipf_exponent!r}"
            )
        if zipf_exponent < 0.0:
            raise WorkloadError("zipf exponent must be >= 0")
        self._rng = as_generator(seed)
        self.templates = list(dimensions)
        if weights is None:
            ranks = np.arange(1, len(self.templates) + 1, dtype=float)
            raw = ranks**-zipf_exponent
        else:
            unknown = sorted(set(weights) - set(dimensions))
            if unknown:
                raise ConfigurationError(
                    f"weights name unknown templates {unknown}; "
                    f"known templates are {sorted(dimensions)}"
                )
            if set(weights) != set(dimensions):
                missing = sorted(set(dimensions) - set(weights))
                raise ConfigurationError(
                    f"weights must cover every template; missing {missing}"
                )
            for name, weight in weights.items():
                if not isinstance(weight, (int, float)) or isinstance(
                    weight, bool
                ):
                    raise ConfigurationError(
                        f"weight for {name!r} must be a number, "
                        f"got {type(weight).__name__}"
                    )
                if not math.isfinite(weight) or weight <= 0.0:
                    raise ConfigurationError(
                        f"weight for {name!r} must be a positive finite "
                        f"number, got {weight!r}"
                    )
            raw = np.array(
                [weights[name] for name in self.templates], dtype=float
            )
        self.popularity = raw / raw.sum()
        self._generators = {
            name: RandomTrajectoryWorkload(
                dims, spread=spread, seed=self._rng
            )
            for name, dims in dimensions.items()
        }

    def generate(self, count: int) -> list[tuple[str, np.ndarray]]:
        """``count`` interleaved ``(template_name, point)`` pairs."""
        if count < 1:
            raise WorkloadError("workload size must be >= 1")
        # Draw the interleaving first, then pull each template's points
        # from its own trajectory stream so intra-template locality is
        # preserved regardless of the interleaving.
        choices = self._rng.choice(
            len(self.templates), size=count, p=self.popularity
        )
        per_template = np.bincount(choices, minlength=len(self.templates))
        streams = {
            name: iter(self._generators[name].generate(int(n)))
            for name, n in zip(self.templates, per_template, strict=True)
            if n > 0
        }
        workload = []
        for choice in choices:
            name = self.templates[int(choice)]
            workload.append((name, next(streams[name])))
        return workload

    def expected_share(self, template_name: str) -> float:
        """The template's popularity under the Zipf law."""
        try:
            index = self.templates.index(template_name)
        except ValueError:
            raise ConfigurationError(
                f"unknown template {template_name!r}; known templates "
                f"are {self.templates}"
            ) from None
        return float(self.popularity[index])
