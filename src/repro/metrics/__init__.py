"""Prediction-quality metrics: precision, recall, sliding estimators."""

from repro.metrics.classification import (
    PredictionOutcome,
    PrecisionRecall,
    evaluate_predictions,
)
from repro.metrics.windows import SlidingRatio

__all__ = [
    "PredictionOutcome",
    "PrecisionRecall",
    "evaluate_predictions",
    "SlidingRatio",
]
