"""Configuration dataclasses for the PPC framework.

Defaults follow the paper's reference configuration where one is given:
``t = 5`` transforms, ``b_h = 40`` histogram buckets, confidence
threshold ``gamma = 0.8`` online (0.7 offline), 5 % mean optimizer
invocation probability, cost error bound ``epsilon = 0.25``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class PPCConfig:
    """Knobs of one template's online plan-caching session."""

    transforms: int = 5
    resolution: int = 16
    max_buckets: int = 40
    radius: float = 0.05
    confidence_threshold: float = 0.8
    noise_fraction: "float | None" = 0.002
    mean_invocation_probability: float = 0.05
    negative_feedback: bool = True
    cost_epsilon: float = 0.25
    #: Positive feedback (the paper's future-work extension): insert
    #: trusted predictions as discounted, capped sample points.
    positive_feedback: bool = False
    positive_feedback_min_confidence: float = 0.97
    positive_feedback_weight: float = 0.25
    positive_feedback_mass_cap: float = 0.5
    monitor_window: int = 100
    drift_threshold: float = 0.5
    drift_min_observations: int = 30
    drift_response: bool = True
    cache_capacity: int = 32

    def __post_init__(self) -> None:
        if self.transforms < 1:
            raise ConfigurationError("transforms must be >= 1")
        if self.max_buckets < 1:
            raise ConfigurationError("max_buckets must be >= 1")
        if self.radius <= 0.0:
            raise ConfigurationError("radius must be > 0")
        if not 0.0 <= self.confidence_threshold <= 1.0:
            raise ConfigurationError("confidence threshold must be in [0, 1]")
        if not 0.0 <= self.mean_invocation_probability <= 1.0:
            raise ConfigurationError(
                "mean invocation probability must be in [0, 1]"
            )
        if self.cache_capacity < 1:
            raise ConfigurationError("cache capacity must be >= 1")
