"""MAD-based regression detection: the ``repro bench compare`` core."""

from repro.bench.compare import MIN_HISTORY, compare_run, render_compare
from repro.bench.schema import make_envelope, metric


def _envelope(value, tolerance_pct=10.0, direction="lower", bench="demo"):
    return make_envelope(
        bench,
        metrics={
            "latency": metric(
                value, "us", direction, tolerance_pct=tolerance_pct
            )
        },
    )


def _journal(values, bench="demo"):
    return [
        {
            "run_id": i + 1,
            "bench": bench,
            "envelope": _envelope(value, bench=bench),
        }
        for i, value in enumerate(values)
    ]


class TestVerdicts:
    def test_unchanged_run_passes(self):
        report = compare_run({"demo": _envelope(100.0)}, {"demo": _envelope(100.0)})
        assert report["passed"]
        assert report["verdicts"][0]["status"] == "ok"

    def test_injected_twenty_pct_slowdown_fails(self):
        # The acceptance criterion: a synthetic >=20% slowdown against a
        # 10%-tolerance baseline must exit as a regression.
        report = compare_run(
            {"demo": _envelope(120.0)}, {"demo": _envelope(100.0)}
        )
        assert not report["passed"]
        (failure,) = report["failures"]
        assert failure["status"] == "regression"
        assert failure["metric"] == "latency"

    def test_improvement_is_flagged_not_failed(self):
        report = compare_run(
            {"demo": _envelope(50.0)}, {"demo": _envelope(100.0)}
        )
        assert report["passed"]
        assert report["verdicts"][0]["status"] == "improved"

    def test_higher_is_better_direction(self):
        baseline = _envelope(100.0, direction="higher")
        worse = _envelope(80.0, direction="higher")
        report = compare_run({"demo": worse}, {"demo": baseline})
        assert not report["passed"]

    def test_missing_metric_is_a_failure(self):
        current = make_envelope(
            "demo",
            metrics={"other": metric(1.0, "us", "lower", tolerance_abs=1.0)},
        )
        report = compare_run({"demo": current}, {"demo": _envelope(100.0)})
        assert not report["passed"]
        assert report["failures"][0]["status"] == "missing"

    def test_unpaired_benches_are_skipped(self):
        report = compare_run(
            {"only_current": _envelope(1.0, bench="only_current")},
            {"only_baseline": _envelope(1.0, bench="only_baseline")},
        )
        assert report["passed"]
        assert set(report["benches_skipped"]) == {
            "only_current",
            "only_baseline",
        }
        assert report["benches_compared"] == []


class TestMADAllowance:
    def test_noisy_history_widens_the_bar(self):
        # 10% tolerance alone fails a 115 vs 100 run; a history that
        # swings by +/-20 teaches compare that this metric is noisy.
        entries = _journal([80.0, 120.0, 85.0, 115.0, 100.0])
        report = compare_run(
            {"demo": _envelope(115.0)},
            {"demo": _envelope(100.0)},
            history_entries=entries,
        )
        assert report["passed"]
        assert report["verdicts"][0]["history_points"] >= MIN_HISTORY

    def test_short_history_contributes_nothing(self):
        entries = _journal([80.0, 120.0])  # below MIN_HISTORY
        report = compare_run(
            {"demo": _envelope(115.0)},
            {"demo": _envelope(100.0)},
            history_entries=entries,
        )
        assert not report["passed"]

    def test_current_run_cannot_vote_on_its_own_allowance(self):
        # Six journaled runs, but five of them are the current run's id:
        # excluded, the history is too short to widen anything.
        entries = _journal([100.0])
        entries += [
            {"run_id": 7, "bench": "demo", "envelope": _envelope(500.0)}
            for __ in range(5)
        ]
        report = compare_run(
            {"demo": _envelope(115.0)},
            {"demo": _envelope(100.0)},
            history_entries=entries,
            current_run_id=7,
        )
        assert not report["passed"]


class TestRender:
    def test_pass_and_fail_lines(self):
        good = compare_run({"demo": _envelope(100.0)}, {"demo": _envelope(100.0)})
        assert "PASS" in render_compare(good)
        bad = compare_run({"demo": _envelope(200.0)}, {"demo": _envelope(100.0)})
        text = render_compare(bad)
        assert "REGRESSION: demo.latency" in text
        assert "FAIL" in text

    def test_missing_renders_placeholder(self):
        current = make_envelope(
            "demo",
            metrics={"other": metric(1.0, "us", "lower", tolerance_abs=1.0)},
        )
        text = render_compare(
            compare_run({"demo": current}, {"demo": _envelope(100.0)})
        )
        assert "missing" in text
