"""Figure 4: the chord-based confidence model.

Tabulates the ratio -> sin(theta) curve of Section IV-A and times a
confidence decision.
"""

import numpy as np

from _bench_utils import write_result
from repro.core.confidence import ConfidenceModel, confidence_from_ratio


def test_fig04_confidence_curve(benchmark):
    ratios = (1.0, 1.5, 2.0, 3.0, 5.0, 10.0, 20.0, 50.0, 100.0, 1000.0)
    lines = [
        "Figure 4 — confidence model: count ratio c_max/others -> sin(theta)",
        "",
        f"{'ratio':>8s} {'confidence':>11s}",
    ]
    values = []
    for ratio in ratios:
        value = confidence_from_ratio(ratio)
        values.append(value)
        lines.append(f"{ratio:8.1f} {value:11.4f}")
    lines += [
        "",
        "pure neighborhoods (chi = 0.9): confidence = 1 - 0.1^alpha",
        f"{'alpha':>8s} {'confidence':>11s}",
    ]
    model = ConfidenceModel()
    for alpha in (1, 2, 3, 5, 10):
        lines.append(f"{alpha:8d} {model.confidence(alpha, 0.0):11.4f}")
    write_result("fig04_confidence_model", lines)

    assert values == sorted(values)
    assert values[0] < 1e-6
    assert values[-1] > 0.98

    counts = np.array([3.0, 40.0, 1.0, 0.0])
    benchmark(model.decide, counts, 0.8)
