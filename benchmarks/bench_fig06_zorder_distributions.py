"""Figure 6: z-order linearized per-plan point distributions.

Shows, per plan of Q1, how many contiguous z-intervals its points
occupy after linearization — the fragmentation that forces histogram
buckets to span gaps and motivates the noise-elimination check.
Times the z-order linearization of a point batch.
"""

import numpy as np

from _bench_utils import write_result
from repro.experiments.diagrams import zorder_distributions
from repro.lsh.zorder import ZOrderCurve


def test_fig06_zorder_distributions(benchmark):
    distributions = zorder_distributions(
        template="Q1", samples=1000, resolution=16, seed=7
    )
    lines = [
        "Figure 6 — per-plan distributions on the z-order axis (Q1)",
        "",
        f"{'plan':>5s} {'points':>7s} {'z-intervals':>12s} "
        f"{'z-range':>17s}",
    ]
    fragmented = 0
    for dist in distributions:
        if dist.z_values.size == 0:
            continue
        if dist.interval_count > 1:
            fragmented += 1
        lines.append(
            f"P{dist.plan_id:<4d} {dist.z_values.size:7d} "
            f"{dist.interval_count:12d} "
            f"[{dist.z_values.min():.3f}, {dist.z_values.max():.3f}]"
        )
    lines += [
        "",
        f"{fragmented} plans occupy non-contiguous z-intervals — the "
        "false-positive source the confidence and noise checks suppress",
    ]
    write_result("fig06_zorder_distributions", lines)

    assert fragmented >= 1

    curve = ZOrderCurve(2, 4)
    points = np.random.default_rng(0).uniform(0, 1, (1000, 2))
    benchmark(curve.linearize, points)
