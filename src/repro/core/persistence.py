"""Predictor persistence: save and restore the clustering state.

A plan cache earns its keep across sessions: the synopses learned
during one day's workload should survive a server restart.  This
module serializes an :class:`~repro.core.histogram_predictor.HistogramPredictor`
(the production structure — a few kilobytes of histogram buckets plus
the random transform parameters) to a plain JSON-compatible dict and
restores it exactly: the reloaded predictor returns bit-identical
predictions, because the random projections, translations, bucket
contents and counters are all captured.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.core.histogram_predictor import HistogramPredictor
from repro.core.point import SamplePool
from repro.exceptions import ConfigurationError
from repro.histograms import IncrementalHistogram
from repro.histograms.base import Bucket
from repro.lsh.grid import Grid
from repro.lsh.transforms import PlanSpaceTransform

#: Format marker for forward compatibility.
STATE_VERSION = 1


def predictor_to_state(predictor: HistogramPredictor) -> dict:
    """Capture a histogram predictor as a JSON-compatible dict."""
    transforms = []
    for transform in predictor.ensemble:
        transforms.append(
            {
                "input_dims": transform.input_dims,
                "output_dims": transform.output_dims,
                "resolution": transform.resolution,
                "directions": transform.directions.tolist(),
                "translations": transform.translations.tolist(),
            }
        )
    histograms = [
        [
            {
                "max_buckets": getattr(
                    histogram, "max_buckets", predictor.max_buckets
                ),
                "buckets": [
                    [b.lo, b.hi, b.count, b.cost_sum]
                    for b in histogram.buckets
                ],
            }
            for histogram in row
        ]
        for row in predictor._histograms
    ]
    return {
        "version": STATE_VERSION,
        "dimensions": predictor.dimensions,
        "plan_count": predictor.plan_count,
        "resolution": predictor.grids[0].resolution,
        "max_buckets": predictor.max_buckets,
        "radius": predictor.radius,
        "confidence_threshold": predictor.confidence_threshold,
        "noise_fraction": predictor.noise_fraction,
        "aggregation": predictor.aggregation,
        "axis_weights": (
            None
            if predictor.axis_weights is None
            else predictor.axis_weights.tolist()
        ),
        "total_points": predictor.total_points,
        "total_mass": predictor.total_mass,
        "transforms": transforms,
        "histograms": histograms,
    }


def predictor_from_state(state: dict) -> HistogramPredictor:
    """Reconstruct a predictor saved by :func:`predictor_to_state`."""
    if state.get("version") != STATE_VERSION:
        raise ConfigurationError(
            f"unsupported predictor state version {state.get('version')!r}"
        )
    predictor = HistogramPredictor(
        SamplePool(state["dimensions"]),
        plan_count=state["plan_count"],
        transforms=len(state["transforms"]),
        resolution=state["resolution"],
        max_buckets=state["max_buckets"],
        radius=state["radius"],
        confidence_threshold=state["confidence_threshold"],
        noise_fraction=state["noise_fraction"],
        histogram_kind="incremental",
        output_dims=state["transforms"][0]["output_dims"],
        aggregation=state["aggregation"],
        axis_weights=(
            None
            if state["axis_weights"] is None
            else np.array(state["axis_weights"])
        ),
        seed=0,
    )
    # Replace the randomly initialized transforms with the saved ones,
    # and rebuild the grids (their bounds depend on the translations).
    predictor.ensemble.transforms = [
        PlanSpaceTransform.from_arrays(
            spec["input_dims"],
            spec["output_dims"],
            spec["resolution"],
            np.array(spec["directions"]),
            np.array(spec["translations"]),
        )
        for spec in state["transforms"]
    ]
    predictor.grids = [
        Grid(*transform.output_bounds, state["resolution"])
        for transform in predictor.ensemble
    ]
    # Restore histogram contents.
    restored: list[list[IncrementalHistogram]] = []
    for row in state["histograms"]:
        new_row = []
        for spec in row:
            histogram = IncrementalHistogram(max_buckets=spec["max_buckets"])
            histogram.buckets = [
                Bucket(lo, hi, count, cost_sum)
                for lo, hi, count, cost_sum in spec["buckets"]
            ]
            histogram._los = [b.lo for b in histogram.buckets]
            histogram._mutated()
            new_row.append(histogram)
        restored.append(new_row)
    predictor._histograms = restored
    predictor.total_points = int(state["total_points"])
    # States written before the count/mass split carry only
    # ``total_points`` (which then included fractional weights).
    predictor.total_mass = float(
        state.get("total_mass", state["total_points"])
    )
    return predictor


def save_predictor(
    predictor: HistogramPredictor, path: "str | pathlib.Path"
) -> pathlib.Path:
    """Write a predictor's state as JSON."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(predictor_to_state(predictor)))
    return path


def load_predictor(path: "str | pathlib.Path") -> HistogramPredictor:
    """Restore a predictor saved with :func:`save_predictor`."""
    return predictor_from_state(json.loads(pathlib.Path(path).read_text()))
