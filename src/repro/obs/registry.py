"""Lightweight metrics registry: counters, gauges, latency histograms.

The PPC pipeline is a hot path — a metrics layer earns its place only
if recording costs nanoseconds and carries no dependencies.  This
module provides exactly that: plain-Python counters and gauges, plus a
streaming latency histogram over fixed log-scale buckets from which
p50/p95/p99 are read without storing individual samples.

Metrics are identified by a name plus a label set (``template="Q1"``,
``stage="predict"``), mirroring the Prometheus data model so the
snapshot renders directly as Prometheus exposition text (see
:mod:`repro.obs.prometheus`).  Handles returned by
:meth:`MetricsRegistry.counter` / ``gauge`` / ``histogram`` are stable:
hot-path code fetches them once and calls ``inc``/``observe`` directly,
paying only an attribute update per event.
"""

from __future__ import annotations

import math
import threading
from time import perf_counter

from repro.exceptions import ConfigurationError

#: Histogram bucket geometry: log-scale buckets spanning 100 ns to
#: ~1000 s with 10 buckets per decade (each bucket is a factor of
#: 10**0.1 ~ 1.26 wide, bounding quantile interpolation error at ~12 %).
BUCKET_MIN = 1e-7
BUCKETS_PER_DECADE = 10
DECADES = 10
BUCKET_COUNT = BUCKETS_PER_DECADE * DECADES
_LOG_MIN = math.log10(BUCKET_MIN)


def _bucket_upper_bound(index: int) -> float:
    """Upper bound of bucket ``index`` (exclusive), in seconds."""
    return 10.0 ** (_LOG_MIN + (index + 1) / BUCKETS_PER_DECADE)


def _bucket_lower_bound(index: int) -> float:
    return 10.0 ** (_LOG_MIN + index / BUCKETS_PER_DECADE)


class Counter:
    """Monotonically increasing count (events, bytes, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0.0:
            raise ConfigurationError("counters only move forward")
        self.value += amount


class Gauge:
    """A value that goes up and down (bytes resident, cache size)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class LatencyHistogram:
    """Streaming latency distribution over fixed log-scale buckets.

    ``observe`` files a duration (seconds) into one of
    :data:`BUCKET_COUNT` buckets; quantiles interpolate geometrically
    inside the crossing bucket, so estimates carry at most one bucket
    width (~12 % relative) of error.  Exact ``count``/``sum``/``min``/
    ``max`` are tracked alongside.
    """

    __slots__ = ("counts", "count", "sum", "min", "max")

    def __init__(self) -> None:
        self.counts = [0] * BUCKET_COUNT
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        if seconds < 0.0:
            seconds = 0.0
        self.count += 1
        self.sum += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds
        if seconds <= BUCKET_MIN:
            index = 0
        else:
            index = int(
                (math.log10(seconds) - _LOG_MIN) * BUCKETS_PER_DECADE
            )
            if index >= BUCKET_COUNT:
                index = BUCKET_COUNT - 1
            elif index < 0:
                index = 0
        self.counts[index] += 1

    def quantile(self, q: float) -> float:
        """Approximate the ``q``-quantile (``q`` in [0, 1]) in seconds."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError("quantile must lie in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                fraction = (target - cumulative) / bucket_count
                lo = max(_bucket_lower_bound(index), self.min)
                hi = min(_bucket_upper_bound(index), self.max)
                if hi <= lo:
                    return lo
                # Geometric interpolation matches the log bucket scale.
                return lo * (hi / lo) ** fraction
            cumulative += bucket_count
        return self.max

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold *other*'s samples into this histogram, bucket-wise."""
        if other.count == 0:
            return
        for index, bucket_count in enumerate(other.counts):
            if bucket_count:
                self.counts[index] += bucket_count
        self.count += other.count
        self.sum += other.sum
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    def summary(self) -> dict:
        """JSON-ready digest of the distribution (times in seconds)."""
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Timer:
    """Context manager recording its elapsed time into a histogram."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: LatencyHistogram) -> None:
        self._histogram = histogram

    def __enter__(self) -> "_Timer":
        self._start = perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._histogram.observe(perf_counter() - self._start)


class MetricsRegistry:
    """Holds every metric of one PPC deployment, keyed by name + labels.

    Creation is locked (registration happens off the hot path); the
    returned handles are lock-free.  ``snapshot`` renders the whole
    registry as a JSON-compatible dict.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, dict[tuple, tuple[dict, Counter]]] = {}
        self._gauges: dict[str, dict[tuple, tuple[dict, Gauge]]] = {}
        self._histograms: dict[
            str, dict[tuple, tuple[dict, LatencyHistogram]]
        ] = {}

    # ------------------------------------------------------------------
    # Metric handles
    # ------------------------------------------------------------------
    def _get(self, table: dict, factory, name: str, labels: dict):
        key = _label_key(labels)
        with self._lock:
            series = table.setdefault(name, {})
            entry = series.get(key)
            if entry is None:
                entry = (dict(labels), factory())
                series[key] = entry
        return entry[1]

    def counter(self, name: str, **labels) -> Counter:
        return self._get(self._counters, Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(self._gauges, Gauge, name, labels)

    def histogram(self, name: str, **labels) -> LatencyHistogram:
        return self._get(self._histograms, LatencyHistogram, name, labels)

    def time_block(self, name: str, **labels) -> _Timer:
        """``with registry.time_block("stage_seconds", stage="x"): ...``"""
        return _Timer(self.histogram(name, **labels))

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def counter_value(self, name: str, **labels) -> float:
        """Current value of a counter, 0.0 if it never fired."""
        entry = self._counters.get(name, {}).get(_label_key(labels))
        return entry[1].value if entry else 0.0

    def gauge_value(self, name: str, **labels) -> float:
        entry = self._gauges.get(name, {}).get(_label_key(labels))
        return entry[1].value if entry else 0.0

    def histogram_summary(self, name: str, **labels) -> "dict | None":
        """Digest of one histogram series, or None if it never fired."""
        entry = self._histograms.get(name, {}).get(_label_key(labels))
        return entry[1].summary() if entry else None

    def counter_series(self, name: str) -> list[tuple[dict, float]]:
        """All (labels, value) pairs recorded under a counter name."""
        return [
            (dict(labels), metric.value)
            for labels, metric in self._counters.get(name, {}).values()
        ]

    def snapshot(self) -> dict:
        """The whole registry as a JSON-compatible dict."""
        with self._lock:
            return {
                "counters": {
                    name: [
                        {"labels": dict(labels), "value": metric.value}
                        for labels, metric in series.values()
                    ]
                    for name, series in self._counters.items()
                },
                "gauges": {
                    name: [
                        {"labels": dict(labels), "value": metric.value}
                        for labels, metric in series.values()
                    ]
                    for name, series in self._gauges.items()
                },
                "histograms": {
                    name: [
                        {"labels": dict(labels), **metric.summary()}
                        for labels, metric in series.values()
                    ]
                    for name, series in self._histograms.items()
                },
            }

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold *other*'s metrics into this registry.

        Counters add, histograms combine bucket-wise, gauges take
        *other*'s value (last write wins — gauges are point-in-time).
        Existing handles stay valid; useful for aggregating per-worker
        registries into one exportable view.
        """
        for name, series in other._counters.items():
            for labels, metric in series.values():
                self.counter(name, **labels).inc(metric.value)
        for name, series in other._gauges.items():
            for labels, metric in series.values():
                self.gauge(name, **labels).set(metric.value)
        for name, series in other._histograms.items():
            for labels, metric in series.values():
                self.histogram(name, **labels).merge(metric)

    def reset(self) -> None:
        """Drop every metric (tests and long-lived services)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
