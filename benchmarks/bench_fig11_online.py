"""Figure 11: online performance over random trajectories.

ONLINE-APPROXIMATE-LSH-HISTOGRAMS (b_h = 40, t = 5, gamma = 0.8, noise
elimination, 5 % random invocations) over trajectory workloads at r_d
in {0.01 .. 0.08}, averaged over d in {0.05 .. 0.2}.  Paper shape:
excellent precision; recall plateaus after a learning phase; both sag
as r_d grows.
"""

from _bench_utils import write_result
from repro.experiments.online_perf import run_online_performance


def test_fig11_online_performance(benchmark):
    runs = benchmark.pedantic(
        run_online_performance,
        kwargs=dict(
            templates=("Q1", "Q8"),
            spreads=(0.01, 0.02, 0.04, 0.08),
            radii=(0.05, 0.1, 0.15, 0.2),
            workload_size=1000,
            seed=7,
        ),
        rounds=1,
        iterations=1,
    )
    lines = [
        "Figure 11 — online precision/recall over random trajectories",
        "(b_h = 40, t = 5, gamma = 0.8, noise elimination on, 5% random",
        "invocations; averaged over d in {0.05, 0.1, 0.15, 0.2})",
        "",
        f"{'template':>8s} {'r_d':>6s} {'precision':>10s} {'recall':>8s} "
        f"{'invocations':>12s}",
    ]
    for run in runs:
        lines.append(
            f"{run.template:>8s} {run.spread:6.2f} {run.precision:10.3f} "
            f"{run.recall:8.3f} {run.optimizer_invocations:12d}"
        )
    # Learning curve for Q8 at d = 0.1, r_d = 0.01 (windows of 100).
    q8_curve = next(r for r in runs if r.template == "Q8" and r.spread == 0.01)
    lines += ["", "Q8 learning curve (precision, recall per 100-instance window):"]
    for index, (precision, recall) in enumerate(q8_curve.curve):
        lines.append(f"  window {index:2d}: prec={precision:.3f} rec={recall:.3f}")
    write_result("fig11_online", lines)

    for run in runs:
        assert run.precision > 0.85, (run.template, run.spread)
        assert run.recall > 0.15, (run.template, run.spread)
    # The curve shows real learning dynamics: recall dips whenever a new
    # trajectory enters unexplored territory and recovers as the region
    # is learned, so the windowed recall must vary substantially.
    recalls = [recall for __, recall in q8_curve.curve]
    assert max(recalls) - min(recalls) > 0.2
