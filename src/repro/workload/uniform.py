"""Offline uniform plan-space sampling.

The offline workflow of Section V warms predictors up with points
sampled uniformly from the plan space (the set ``X``) and evaluates
them on an independent uniform test set (``T``).
"""

from __future__ import annotations

import numpy as np

from repro.core.point import SamplePool
from repro.exceptions import WorkloadError
from repro.optimizer.plan_space import PlanSpace
from repro.rng import as_generator


def sample_points(
    dimensions: int,
    count: int,
    seed: "int | np.random.Generator | None" = None,
) -> np.ndarray:
    """``count`` uniform points in ``[0, 1]^dimensions``."""
    if count < 1:
        raise WorkloadError("sample count must be >= 1")
    rng = as_generator(seed)
    return rng.uniform(0.0, 1.0, size=(count, dimensions))


def sample_labeled_pool(
    plan_space: PlanSpace,
    count: int,
    seed: "int | np.random.Generator | None" = None,
) -> SamplePool:
    """Uniform sample set labeled by the optimizer oracle."""
    points = sample_points(plan_space.dimensions, count, seed)
    plan_ids, costs = plan_space.label(points)
    return SamplePool.from_arrays(points, plan_ids, costs)
