"""Positive feedback with checks and balances (the paper's future work).

Section VII: *"it would be desirable to incorporate positive feedback
into the decision algorithm to shorten the training period and improve
recall.  Using positive feedback comes with the risk that the
importance of some information is unduly amplified, and so a system of
checks and balances would be needed to prevent a feedback spiral that
destroys precision."*

This module implements that system.  A prediction the framework chose
to *trust* (executed without optimizer verification, and not flagged by
the cost-feedback detector) may be inserted into the sample pool as an
**unverified** point, subject to three balances:

1. **confidence gate** — only predictions whose confidence exceeds a
   high bar (default 0.97) qualify; boundary-adjacent guesses never
   self-reinforce;
2. **discounted weight** — unverified points carry fractional mass
   (default 0.25), so it always takes several of them to outvote one
   optimizer-verified point;
3. **mass cap** — the total unverified mass may never exceed a fixed
   fraction of the verified mass (default 0.5); once the cap is hit,
   insertion pauses until more verified points arrive.

Disabling all three (``unguarded()``) reproduces the avalanche the
paper warns about — the positive-feedback ablation bench measures both.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.predictor import Prediction
from repro.exceptions import ConfigurationError


@dataclass
class PositiveFeedbackPolicy:
    """Checks and balances for inserting unverified predictions."""

    min_confidence: float = 0.97
    weight: float = 0.25
    mass_cap_ratio: float = 0.5
    #: Disable the mass cap entirely (the unguarded configuration).
    capped: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_confidence <= 1.0:
            raise ConfigurationError("min_confidence must be in [0, 1]")
        if not 0.0 < self.weight <= 1.0:
            raise ConfigurationError("weight must be in (0, 1]")
        if self.mass_cap_ratio <= 0.0:
            raise ConfigurationError("mass_cap_ratio must be > 0")
        self.verified_mass = 0.0
        self.unverified_mass = 0.0
        self.accepted = 0
        self.rejected = 0

    @classmethod
    def unguarded(cls) -> "PositiveFeedbackPolicy":
        """No gate, full weight, no cap — the feedback-spiral
        configuration the paper warns about."""
        return cls(min_confidence=0.0, weight=1.0, capped=False)

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def record_verified(self, weight: float = 1.0) -> None:
        """An optimizer-verified point entered the pool."""
        self.verified_mass += weight

    def reset(self) -> None:
        """Forget all mass accounting (after a drift drop)."""
        self.verified_mass = 0.0
        self.unverified_mass = 0.0

    # ------------------------------------------------------------------
    # The decision
    # ------------------------------------------------------------------
    def should_insert(self, prediction: Prediction) -> bool:
        """May this unverified prediction enter the sample pool?"""
        if prediction.confidence < self.min_confidence:
            self.rejected += 1
            return False
        if self.capped and (
            self.unverified_mass + self.weight
            > self.mass_cap_ratio * self.verified_mass
        ):
            self.rejected += 1
            return False
        self.accepted += 1
        self.unverified_mass += self.weight
        return True
