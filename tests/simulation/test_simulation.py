"""Runtime simulation: timing model and the three regimes."""

import numpy as np
import pytest

from repro.config import PPCConfig
from repro.exceptions import ConfigurationError
from repro.simulation import RuntimeSimulator, TimingModel
from repro.workload import RandomTrajectoryWorkload


class TestTimingModel:
    def test_optimization_scales_with_tables(self, tiny_space, q5_space):
        timing = TimingModel()
        two_tables = timing.optimization_ms(tiny_space)
        three_tables = timing.optimization_ms(q5_space)
        assert three_tables > two_tables

    def test_execution_linear_in_cost(self):
        timing = TimingModel(execute_unit_ms=0.5)
        assert timing.execution_ms(100.0) == pytest.approx(50.0)

    def test_negative_constants_rejected(self):
        with pytest.raises(ConfigurationError):
            TimingModel(predict_ms=-1.0)


class TestRuntimeSimulator:
    @pytest.fixture(scope="class")
    def results(self, tiny_space):
        workload = RandomTrajectoryWorkload(
            tiny_space.dimensions, spread=0.01, seed=3
        ).generate(400)
        config = PPCConfig(
            confidence_threshold=0.8,
            mean_invocation_probability=0.05,
            drift_response=False,
            radius=0.05,
        )
        simulator = RuntimeSimulator(tiny_space, config, seed=0)
        return simulator.run(workload)

    def test_all_regimes_present(self, results):
        assert set(results) == {"NO-CACHING", "PPC", "IDEAL"}

    def test_ideal_bounds_ppc_bounds_no_caching(self, results):
        """The paper's Figure 13 ordering: IDEAL <= PPC <= NO-CACHING."""
        assert results["IDEAL"].total_ms <= results["PPC"].total_ms
        assert results["PPC"].total_ms < results["NO-CACHING"].total_ms

    def test_no_caching_invokes_every_instance(self, results):
        assert results["NO-CACHING"].optimizer_invocations == 400

    def test_ideal_invokes_once_per_plan(self, results, tiny_space):
        assert results["IDEAL"].optimizer_invocations <= tiny_space.plan_count

    def test_ppc_invocations_between_bounds(self, results):
        ppc = results["PPC"].optimizer_invocations
        assert results["IDEAL"].optimizer_invocations <= ppc <= 400

    def test_cumulative_series_monotone(self, results):
        for breakdown in results.values():
            series = np.array(breakdown.cumulative_ms)
            assert series.shape == (400,)
            assert (np.diff(series) >= 0).all()

    def test_breakdown_sums(self, results):
        ppc = results["PPC"]
        assert ppc.total_ms == pytest.approx(
            ppc.optimization_ms + ppc.execution_ms + ppc.overhead_ms
        )

    def test_no_caching_pays_no_overhead(self, results):
        assert results["NO-CACHING"].overhead_ms == 0.0

    def test_execution_time_optimal_for_oracle_regimes(self, results):
        """NO-CACHING and IDEAL always execute the optimal plan, so
        their execution components match."""
        assert results["NO-CACHING"].execution_ms == pytest.approx(
            results["IDEAL"].execution_ms
        )
