"""Resilience layer: degraded components never take down execution.

The paper's premise — the synopsis is always cheaper than
re-optimizing — only holds in production if the pipeline survives its
dependencies failing.  This package supplies the three pieces the
guarded decision flow in :mod:`repro.core.framework` is built from,
plus the harness that proves they work:

* :class:`FaultInjector` — deterministic, seedable fault injection
  (exceptions, timeouts, slow calls, torn writes) over the optimizer,
  predictor, and persistence surfaces;
* :func:`retry_call` / :class:`RetryPolicy` — capped exponential
  backoff with a wall-clock deadline for optimizer invocations;
* :class:`CircuitBreaker` — per-template closed → open → half-open
  isolation that serves the last cached plan while the optimizer is
  considered down.
"""

from repro.resilience.breaker import (
    BREAKER_STATE_VALUES,
    BREAKER_STATES,
    CircuitBreaker,
    CircuitOpenError,
)
from repro.resilience.clocks import system_clock, system_sleep
from repro.resilience.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    InjectedTimeout,
    ScheduledFaultInjector,
    VirtualClock,
    bit_flip,
    torn_copy,
)
from repro.resilience.retry import RetryExhaustedError, RetryPolicy, retry_call

__all__ = [
    "BREAKER_STATES",
    "BREAKER_STATE_VALUES",
    "CircuitBreaker",
    "CircuitOpenError",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "InjectedTimeout",
    "RetryExhaustedError",
    "RetryPolicy",
    "ScheduledFaultInjector",
    "VirtualClock",
    "bit_flip",
    "retry_call",
    "system_clock",
    "system_sleep",
    "torn_copy",
]
