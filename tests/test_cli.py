"""Command-line interface."""

import pytest

from repro.cli import main


class TestTemplates:
    def test_lists_all_nine(self, capsys):
        assert main(["templates", "--probes", "200"]) == 0
        out = capsys.readouterr().out
        for name in (f"Q{i}" for i in range(9)):
            assert name in out


class TestDiagram:
    def test_renders_two_parameter_template(self, capsys):
        assert main(["diagram", "Q1", "--resolution", "12"]) == 0
        out = capsys.readouterr().out
        assert "P0" in out
        assert len([l for l in out.splitlines() if l and l[0].isalnum()]) >= 12

    def test_rejects_high_degree_template(self, capsys):
        assert main(["diagram", "Q7"]) == 1
        assert "degree" in capsys.readouterr().err


class TestPredict:
    def test_reports_optimal_plan_and_candidates(self, capsys):
        assert main(["predict", "Q1", "0.3", "0.7"]) == 0
        out = capsys.readouterr().out
        assert "optimal plan" in out
        assert "all candidates" in out

    def test_arity_mismatch(self, capsys):
        assert main(["predict", "Q1", "0.5"]) == 1
        assert "coordinates" in capsys.readouterr().err


class TestSession:
    def test_runs_online_session(self, capsys):
        assert main(
            ["session", "Q1", "--instances", "150", "--seed", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "precision" in out
        assert "optimizer invocations" in out


class TestStats:
    def test_table_renders_stage_latencies(self, capsys):
        assert main(
            ["stats", "Q1", "--instances", "80", "--seed", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "template Q1: 80 instances" in out
        assert "p50 ms" in out
        assert "predict" in out
        assert "invocation reasons" in out
        assert "plan cache" in out

    def test_json_format_is_parseable(self, capsys):
        import json

        assert main(
            ["stats", "Q1", "--instances", "50", "--format", "json"]
        ) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["templates"]["Q1"]["executions"] == 50

    def test_prom_format_is_exposition_text(self, capsys):
        assert main(
            ["stats", "Q1", "--instances", "50", "--format", "prom"]
        ) == 0
        out = capsys.readouterr().out
        assert "# TYPE ppc_stage_seconds summary" in out
        assert 'ppc_executions_total{template="Q1"} 50' in out

    def test_budget_prints_governor_line(self, capsys):
        assert main(
            [
                "stats", "Q1", "Q5",
                "--instances", "60",
                "--budget", "500",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "governor:" in out
        assert "reclaimed=" in out


class TestAssumptions:
    def test_prints_probability_table(self, capsys):
        assert main(
            ["assumptions", "Q1", "--points", "10", "--neighbors", "20"]
        ) == 0
        out = capsys.readouterr().out
        assert "P(same plan)" in out


class TestParser:
    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_template_exits(self):
        with pytest.raises(SystemExit):
            main(["diagram", "Q99"])


class TestExperimentCommand:
    def test_table1_runs_and_prints(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "BASELINE" in out
        assert "measured_bytes" in out

    def test_fig10b_prints_precision_columns(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["experiment", "fig10b"]) == 0
        out = capsys.readouterr().out
        assert "precision" in out
        assert "recall" in out

    def test_unknown_experiment_rejected(self):
        import pytest as _pytest

        from repro.cli import main as cli_main

        with _pytest.raises(SystemExit):
            cli_main(["experiment", "fig99"])


class TestPlanProfileCommand:
    def test_plan_profile_prints_summary(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["plan-profile", "Q1", "--samples", "400"]) == 0
        out = capsys.readouterr().out
        assert "plans observed" in out
        assert "area" in out


class TestProfileCommand:
    def test_profile_prints_stage_tree(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["profile", "Q1", "--instances", "120"]) == 0
        out = capsys.readouterr().out
        assert "decision" in out
        assert "normalize" in out
        assert "execute_plan" in out
        # Deep predictor stages appear because tracing runs at interval 1.
        assert "aggregate" in out

    def test_profile_writes_collapsed_stacks(self, tmp_path, capsys):
        import json

        from repro.cli import main as cli_main

        out_path = tmp_path / "stacks.json"
        assert (
            cli_main(
                [
                    "profile", "Q1",
                    "--instances", "120",
                    "--collapsed-out", str(out_path),
                ]
            )
            == 0
        )
        payload = json.loads(out_path.read_text())
        assert payload["unit"] == "microseconds"
        assert any(
            key.startswith("Q1;decision") for key in payload["stacks"]
        )
        assert all(value >= 0.0 for value in payload["stacks"].values())


class TestExplain:
    def test_prints_span_tree(self, capsys):
        assert main(
            [
                "explain",
                "--template", "Q1",
                "--point", "0.3", "0.7",
                "--warmup", "120",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "trace Q1#" in out
        assert "decision=forced" in out
        assert "transform" in out
        assert "counts=" in out
        assert "vote=" in out
        assert "outcome:" in out

    def test_json_format_is_parseable(self, capsys):
        import json

        assert main(
            [
                "explain",
                "--template", "Q1",
                "--point", "0.3", "0.7",
                "--warmup", "50",
                "--format", "json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["template"] == "Q1"
        assert payload["decision"] == "forced"
        assert payload["root"]["children"]

    def test_arity_mismatch(self, capsys):
        assert main(
            ["explain", "--template", "Q1", "--point", "0.5"]
        ) == 1
        assert "coordinates" in capsys.readouterr().err


class TestTrace:
    def test_export_round_trips(self, tmp_path, capsys):
        from repro.obs.tracing import loads_jsonl

        out_path = tmp_path / "traces.jsonl"
        assert main(
            [
                "trace", "export", "Q1",
                "--instances", "40",
                "--out", str(out_path),
            ]
        ) == 0
        assert "wrote" in capsys.readouterr().out
        traces = loads_jsonl(out_path.read_text())
        assert len(traces) == 40
        assert all(t.template == "Q1" for t in traces)
        assert all(t.outcome is not None for t in traces)

    def test_audit_prints_stage_table(self, capsys):
        assert main(
            ["trace", "audit", "Q1", "--instances", "150"]
        ) == 0
        out = capsys.readouterr().out
        assert "instances traced" in out
        assert "suboptimal" in out


class TestReport:
    def test_text_report_shows_the_scorecard(self, capsys):
        assert main(
            ["report", "Q1", "--instances", "300", "--seed", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "PPC health report" in out
        assert "clock: VirtualClock" in out
        assert "template Q1" in out
        assert "coverage=" in out
        assert "purity=" in out
        assert "accuracy=" in out
        assert "cache_hit_rate" in out
        assert "predict_latency_p95" in out
        assert "regret_budget" in out

    def test_json_report_is_parseable(self, capsys):
        import json

        assert main(
            [
                "report", "Q1",
                "--instances", "200",
                "--format", "json",
            ]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert set(report["templates"]) == {"Q1"}
        assert report["worst_state"] in ("ok", "warning", "breach")
        assert report["slo"]["Q1"]
        assert report["telemetry"]["samples"] > 0

    def test_html_report_written_to_file(self, tmp_path, capsys):
        out_path = tmp_path / "report.html"
        assert main(
            [
                "report", "Q1",
                "--instances", "200",
                "--format", "html",
                "--out", str(out_path),
            ]
        ) == 0
        assert "wrote" in capsys.readouterr().out
        html = out_path.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "template Q1" in html

    def test_fail_on_breach_passes_on_a_healthy_run(self, capsys):
        assert main(
            [
                "report", "Q1",
                "--instances", "300",
                "--fail-on-breach",
            ]
        ) == 0

    def test_multi_template_report(self, capsys):
        assert main(
            ["report", "Q1", "Q5", "--instances", "120"]
        ) == 0
        out = capsys.readouterr().out
        assert "template Q1" in out
        assert "template Q5" in out


class TestWatch:
    def test_prints_one_status_line_per_template_per_tick(self, capsys):
        assert main(
            [
                "watch", "Q1",
                "--iterations", "3",
                "--batch", "60",
                "--interval", "0",
            ]
        ) == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if "Q1" in l]
        assert len(lines) >= 3
        assert "coverage=" in out
        assert "slo=" in out


class TestFaultsTraceOut:
    def test_flight_recorder_dumped_as_jsonl(self, tmp_path, capsys):
        from repro.obs.tracing import loads_jsonl

        out_path = tmp_path / "fault-traces.jsonl"
        assert main(
            [
                "faults", "Q1",
                "--instances", "300",
                "--trace-out", str(out_path),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "flight recorder" in out
        traces = loads_jsonl(out_path.read_text())
        assert traces
        # The error-biased sampler kept evidence of degraded decisions.
        assert any(t.errored for t in traces)


class TestScenarios:
    def test_list_names_every_scenario(self, capsys):
        from repro.workload.scenarios import SCENARIO_NAMES

        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIO_NAMES:
            assert name in out

    def test_run_one_scenario_writes_matrix(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "matrix.json"
        assert main(
            [
                "scenarios", "run", "cache_pressure",
                "--fast", "--out", str(out_path),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "PASS cache_pressure" in out
        # --out writes a schema-v2 bench envelope, not the raw matrix.
        envelope = json.loads(out_path.read_text())
        assert envelope["schema_version"] == 2
        assert envelope["gate"]["passed"] is True
        assert envelope["metrics"]["contracts_failed"]["value"] == 0
        rows = envelope["details"]["scenarios"]
        assert rows[0]["scenario"] == "cache_pressure"

    def test_unknown_scenario_rejected(self, capsys):
        assert main(["scenarios", "run", "nope"]) == 1
        assert "unknown scenario" in capsys.readouterr().err


class TestReplay:
    def test_record_then_verify_round_trip(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(
            [
                "replay", "record", "cache_pressure",
                "--fast", "--out", str(trace),
            ]
        ) == 0
        assert "recorded" in capsys.readouterr().out
        assert main(["replay", "verify", str(trace)]) == 0
        assert "bit-identically" in capsys.readouterr().out

    def test_record_requires_out(self, capsys):
        assert main(["replay", "record", "cache_pressure"]) == 1
        assert "--out" in capsys.readouterr().err

    def test_missing_trace_file_rejected(self, capsys):
        assert main(["replay", "verify", "/nonexistent/trace.jsonl"]) == 1
        assert "failed" in capsys.readouterr().err
