"""Property-based tests on the LSH substrate (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsh.grid import Grid
from repro.lsh.transforms import PlanSpaceTransform, hypersphere_radius
from repro.lsh.zorder import ZOrderCurve

dims_and_bits = st.tuples(
    st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=6)
)


class TestZOrderProperties:
    @given(config=dims_and_bits, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_encode_decode_round_trip(self, config, data):
        dims, bits = config
        curve = ZOrderCurve(dims, bits)
        coords = np.array(
            [
                data.draw(
                    st.lists(
                        st.integers(0, curve.cells_per_axis - 1),
                        min_size=dims,
                        max_size=dims,
                    )
                )
                for __ in range(5)
            ]
        )
        assert (curve.decode(curve.encode(coords)) == coords).all()

    @given(config=dims_and_bits, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_linearize_respects_cell_identity(self, config, data):
        """Two points land in the same grid cell iff their z-values match."""
        dims, bits = config
        curve = ZOrderCurve(dims, bits)
        point_strategy = st.lists(
            st.floats(0.0, 0.999999), min_size=dims, max_size=dims
        )
        a = np.array(data.draw(point_strategy))
        b = np.array(data.draw(point_strategy))
        cell_a = (a * curve.cells_per_axis).astype(int)
        cell_b = (b * curve.cells_per_axis).astype(int)
        za = curve.linearize(a[None, :])[0]
        zb = curve.linearize(b[None, :])[0]
        assert ((cell_a == cell_b).all()) == (za == zb)


class TestTransformProperties:
    @given(
        dims=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_transformed_points_within_bounds(self, dims, seed):
        transform = PlanSpaceTransform(dims, seed=seed)
        points = np.random.default_rng(seed).uniform(0, 1, (50, dims))
        out = transform.apply(points)
        lo, hi = transform.output_bounds
        assert (out >= lo - 1e-9).all()
        assert (out <= hi + 1e-9).all()

    @given(dims=st.integers(min_value=1, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_sphere_volume_matches_cube(self, dims):
        import math

        radius = hypersphere_radius(dims)
        ball = math.pi ** (dims / 2) / math.gamma(dims / 2 + 1) * radius**dims
        assert ball == pytest.approx(2.0**dims, rel=1e-9)

    @given(
        dims=st.integers(min_value=2, max_value=5),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_stretch_never_leaves_sphere(self, dims, seed):
        transform = PlanSpaceTransform(dims, seed=seed)
        points = np.random.default_rng(seed).uniform(0, 1, (100, dims))
        stretched = transform.stretch(transform.center_and_scale(points))
        norms = np.linalg.norm(stretched, axis=1)
        assert (norms <= transform.radius + 1e-9).all()


class TestGridProperties:
    @given(
        dims=st.integers(min_value=1, max_value=4),
        resolution=st.integers(min_value=1, max_value=16),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_cell_ids_in_range(self, dims, resolution, seed):
        grid = Grid(np.zeros(dims), np.ones(dims), resolution)
        points = np.random.default_rng(seed).uniform(-0.5, 1.5, (50, dims))
        ids = grid.cell_ids(points)
        assert (ids >= 0).all()
        assert (ids < grid.total_cells).all()
