"""Unit tests for the report renderers (text / JSON / HTML)."""

import json

from repro.obs import (
    render_report_html,
    render_report_json,
    render_report_text,
    sparkline,
)


def _sample_report() -> dict:
    return {
        "clock": {"source": "VirtualClock", "now": 240.0},
        "worst_state": "warning",
        "templates": {
            "Q1": {
                "template": "Q1",
                "executions": 300,
                "synopsis": {
                    "coverage": 0.74,
                    "purity": 0.81,
                    "entropy": 0.12,
                    "occupied_cells": 95,
                    "probe_cells": 128,
                    "total_points": 410,
                    "total_mass": 400.0,
                    "space_bytes": 20480,
                },
                "rolling": {
                    "window": 200,
                    "accuracy": 0.97,
                    "regret": 0.004,
                    "confidence_margin": 0.11,
                    "answered_fraction": 0.9,
                    "degraded_fraction": 0.0,
                },
                "monitor": {
                    "precision_estimate": 0.96,
                    "recall_estimate": 0.88,
                    "drift_pressure": 0.05,
                },
                "regret_attribution": {
                    "instances": 12,
                    "suboptimal": 3,
                    "stages": {
                        "median_vote": {"count": 3, "total_regret": 0.9}
                    },
                },
            }
        },
        "slo": {
            "Q1": [
                {
                    "name": "cache_hit_rate",
                    "signal": "hit_rate",
                    "objective": 0.5,
                    "state": "warning",
                    "burn_short": 1.4,
                    "burn_long": 0.2,
                    "short_window": 300.0,
                    "long_window": 3600.0,
                    "warning_burn": 1.0,
                    "breach_burn": 2.0,
                }
            ]
        },
        "telemetry": {
            "interval": 5.0,
            "capacity": 256,
            "samples": 48,
            "series": [
                {
                    "kind": "counter",
                    "name": "ppc_executions_total",
                    "labels": {"template": "Q1"},
                    "points": [[5.0, 10.0], [10.0, 40.0], [15.0, 90.0]],
                },
                {
                    "kind": "histogram",
                    "name": "ppc_stage_seconds",
                    "field": "p95",
                    "labels": {"template": "Q1", "stage": "predict"},
                    "points": [[5.0, 0.001], [10.0, 0.002]],
                },
            ],
        },
    }


class TestSparkline:
    def test_empty_series(self):
        assert sparkline([]) == ""

    def test_flat_series_renders_baseline(self):
        assert sparkline([3.0, 3.0, 3.0]) == "▁▁▁"

    def test_monotone_series_uses_the_full_ramp(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert len(line) == 4
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert line == "".join(sorted(line))


class TestTextReport:
    def test_contains_the_scorecard_and_slo_lines(self):
        text = render_report_text(_sample_report())
        assert "overall WARNING" in text
        assert "clock: VirtualClock" in text
        assert "template Q1 — 300 executions" in text
        assert "coverage=0.740" in text
        assert "purity=0.810" in text
        assert "accuracy=0.970" in text
        assert "drift_pressure=0.050" in text
        assert "blamed stages: median_vote×3" in text
        assert "cache_hit_rate" in text
        assert "warning" in text
        assert "burn short=1.40" in text
        # Sparklines derived from the telemetry series.
        assert "executions" in text
        assert "predict p95" in text
        assert text.endswith("\n")

    def test_renders_without_telemetry_or_slo(self):
        report = _sample_report()
        report["telemetry"] = None
        report["slo"] = {}
        text = render_report_text(report)
        assert "template Q1" in text
        assert "predict p95" not in text


class TestJsonReport:
    def test_round_trips_and_is_stable(self):
        report = _sample_report()
        rendered = render_report_json(report)
        assert json.loads(rendered) == report
        assert rendered == render_report_json(report)
        assert rendered.endswith("\n")


class TestHtmlReport:
    def test_self_contained_page(self):
        html = render_report_html(_sample_report())
        assert html.startswith("<!DOCTYPE html>")
        assert "</body></html>" in html
        assert "template Q1" in html
        assert "cache_hit_rate" in html
        assert "<svg" in html  # sparklines are inline SVG
        # Self-contained: no external fetches.
        assert "http://" not in html
        assert "https://" not in html
        assert "src=" not in html

    def test_escapes_untrusted_names(self):
        report = _sample_report()
        report["templates"]["<script>"] = report["templates"].pop("Q1")
        html = render_report_html(report)
        assert "<script>" not in html
        assert "&lt;script&gt;" in html
