"""Reporters: findings as terminal text or machine-readable JSON.

The text form mirrors compiler diagnostics (``path:line:col CODE
message``) so editors jump straight to the offending line; the JSON
form is what CI consumes (stable keys, a summary block, and the
fingerprints baseline tooling works with).
"""

from __future__ import annotations

import json
from collections.abc import Iterable

from repro.analysis.baseline import BaselineEntry
from repro.analysis.core import Finding, all_rules


def summarize(findings: Iterable[Finding]) -> dict:
    """Counts by rule and severity for a set of findings."""
    by_rule: dict[str, int] = {}
    by_severity: dict[str, int] = {}
    total = 0
    for finding in findings:
        total += 1
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
        by_severity[finding.severity] = (
            by_severity.get(finding.severity, 0) + 1
        )
    return {
        "total": total,
        "by_rule": dict(sorted(by_rule.items())),
        "by_severity": dict(sorted(by_severity.items())),
    }


def render_text(
    fresh: "list[Finding]",
    accepted: "list[Finding] | None" = None,
    stale: "list[BaselineEntry] | None" = None,
    errors: "list[str] | None" = None,
) -> str:
    """Human-readable report; one diagnostic per line."""
    lines = []
    for finding in fresh:
        lines.append(
            f"{finding.location} {finding.rule} [{finding.severity}] "
            f"{finding.message}"
        )
    for error in errors or []:
        lines.append(f"error: {error}")
    for entry in stale or []:
        lines.append(
            f"stale baseline entry: {entry.rule} {entry.path} "
            f"{entry.snippet!r} (matched nothing; remove it)"
        )
    summary = summarize(fresh)
    parts = [f"{summary['total']} finding(s)"]
    if accepted:
        parts.append(f"{len(accepted)} baselined")
    if stale:
        parts.append(f"{len(stale)} stale baseline entr(y/ies)")
    if errors:
        parts.append(f"{len(errors)} file error(s)")
    if summary["by_rule"]:
        parts.append(
            "by rule: "
            + ", ".join(
                f"{rule}={count}"
                for rule, count in summary["by_rule"].items()
            )
        )
    lines.append("; ".join(parts))
    return "\n".join(lines)


def render_json(
    fresh: "list[Finding]",
    accepted: "list[Finding] | None" = None,
    stale: "list[BaselineEntry] | None" = None,
    errors: "list[str] | None" = None,
) -> str:
    """CI-facing report: findings plus summary, one JSON document."""
    document = {
        "findings": [finding.to_dict() for finding in fresh],
        "baselined": [finding.to_dict() for finding in accepted or []],
        "stale_baseline": [entry.to_dict() for entry in stale or []],
        "file_errors": list(errors or []),
        "summary": summarize(fresh),
    }
    return json.dumps(document, indent=2, sort_keys=True)


def _escape_workflow_property(value: str) -> str:
    """Escape a value for a workflow-command *property* (file=...)."""
    return (
        value.replace("%", "%25")
        .replace("\r", "%0D")
        .replace("\n", "%0A")
        .replace(":", "%3A")
        .replace(",", "%2C")
    )


def _escape_workflow_message(value: str) -> str:
    """Escape a value for a workflow-command *message* (after ``::``)."""
    return value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def render_github(
    fresh: "list[Finding]",
    accepted: "list[Finding] | None" = None,
    stale: "list[BaselineEntry] | None" = None,
    errors: "list[str] | None" = None,
) -> str:
    """GitHub Actions workflow commands: ``::error file=...,line=...``.

    Each fresh finding becomes an inline annotation on the PR diff;
    file errors and stale baseline entries become file-less ``::error``
    / ``::warning`` lines.  A trailing plain-text summary keeps the raw
    log readable — runners ignore lines that are not workflow commands.
    """
    lines = []
    for finding in fresh:
        level = "error" if finding.severity == "error" else "warning"
        lines.append(
            f"::{level} file={_escape_workflow_property(finding.path)},"
            f"line={finding.line},col={finding.col},"
            f"title={finding.rule}::"
            + _escape_workflow_message(
                f"{finding.rule} {finding.message}"
            )
        )
    for error in errors or []:
        lines.append("::error::" + _escape_workflow_message(error))
    for entry in stale or []:
        lines.append(
            "::warning::"
            + _escape_workflow_message(
                f"stale baseline entry: {entry.rule} {entry.path} "
                f"{entry.snippet!r} (matched nothing; remove it)"
            )
        )
    summary = summarize(fresh)
    parts = [f"{summary['total']} finding(s)"]
    if accepted:
        parts.append(f"{len(accepted)} baselined")
    if summary["by_rule"]:
        parts.append(
            "by rule: "
            + ", ".join(
                f"{rule}={count}"
                for rule, count in summary["by_rule"].items()
            )
        )
    lines.append("; ".join(parts))
    return "\n".join(lines)


def render_rules() -> str:
    """``--list-rules``: every rule with its scope and rationale —
    the per-file rules first, then the whole-program RPR1xx family."""
    from repro.analysis.effects.rules import effect_rules

    lines = []
    for rule in all_rules():
        scope = (
            "all modules"
            if rule.only_modules is None
            else ", ".join(rule.only_modules)
        )
        lines.append(f"{rule.code} [{rule.severity}] {rule.title}")
        lines.append(f"    scope : {scope}")
        if rule.exempt_modules:
            lines.append(f"    exempt: {', '.join(rule.exempt_modules)}")
        lines.append(f"    fix   : {rule.rationale}")
    for rule in effect_rules():
        lines.append(
            f"{rule.code} [{rule.severity}] {rule.title} (whole-program)"
        )
        lines.append(f"    scope : {rule.scope}")
        lines.append(f"    fix   : {rule.rationale}")
    return "\n".join(lines)
