"""Plan cache with caching-potential eviction.

The PPC framework stores actual plan objects in a bounded cache; the
clustering structures only ever reference plan identifiers.  When the
cache is full, the evicted victim is the plan with the lowest *caching
potential*: the product of its sliding precision estimate (plans whose
predictions keep failing are poor cache citizens — Section IV-E) and a
recency preference (least-recently-used among equals).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING

from repro.core.monitor import PerformanceMonitor
from repro.exceptions import ConfigurationError
from repro.obs import MetricsRegistry, names as metric_names
from repro.optimizer.plans import PhysicalPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.events import _TemplateEmitter


class PlanCache:
    """Bounded plan store keyed by plan id.

    With a metrics registry attached, hit/miss/eviction events are also
    published as ``ppc_cache_events_total{template,event}`` counters;
    the plain ``hits``/``misses``/``evictions`` attributes stay
    authoritative either way.
    """

    def __init__(
        self,
        capacity: int = 32,
        monitor: "PerformanceMonitor | None" = None,
        metrics: "MetricsRegistry | None" = None,
        template: str = "",
    ) -> None:
        if capacity < 1:
            raise ConfigurationError("cache capacity must be >= 1")
        self.capacity = capacity
        self.monitor = monitor
        self._plans: OrderedDict[int, PhysicalPlan] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._event_counters = None
        # Lifecycle event emitter (``repro.obs.events``); None until the
        # owning session binds one.
        self._events = None
        if metrics is not None:
            self._event_counters = {
                event: metrics.counter(
                    metric_names.CACHE_EVENTS_TOTAL,
                    template=template,
                    event=event,
                )
                for event in metric_names.CACHE_EVENTS
            }

    def _publish(self, event: str) -> None:
        if self._event_counters is not None:
            self._event_counters[event].inc()

    def bind_events(self, emitter: "_TemplateEmitter") -> None:
        """Attach a lifecycle event emitter (``repro.obs.events``)."""
        self._events = emitter

    def __len__(self) -> int:
        return len(self._plans)

    def __contains__(self, plan_id: int) -> bool:
        return plan_id in self._plans

    def get(self, plan_id: int) -> "PhysicalPlan | None":
        """Fetch a plan, refreshing its recency."""
        plan = self._plans.get(plan_id)
        if plan is None:
            self.misses += 1
            self._publish("miss")
            return None
        self._plans.move_to_end(plan_id)
        self.hits += 1
        self._publish("hit")
        return plan

    def put(self, plan_id: int, plan: PhysicalPlan) -> None:
        """Insert (or refresh) a plan, evicting if over capacity."""
        if plan_id in self._plans:
            self._plans.move_to_end(plan_id)
            self._plans[plan_id] = plan
            return
        if len(self._plans) >= self.capacity:
            self._evict()
        self._plans[plan_id] = plan

    def _evict(self) -> None:
        victim = min(self._plans, key=self._caching_potential)
        del self._plans[victim]
        self.evictions += 1
        self._publish("eviction")
        if self._events is not None:
            self._events(
                "cache_evicted",
                plan=int(victim),
                prec_k=(
                    self.monitor.plan_precision(victim)
                    if self.monitor
                    else 1.0
                ),
                rec_k=(
                    self.monitor.recall_estimate if self.monitor else 0.0
                ),
                resident=len(self._plans),
            )

    def _caching_potential(self, plan_id: int) -> tuple[float, int]:
        """Lower = evicted first: precision estimate, then LRU order."""
        precision = (
            self.monitor.plan_precision(plan_id) if self.monitor else 1.0
        )
        recency = list(self._plans).index(plan_id)
        return (precision, recency)

    def most_recent(self) -> "int | None":
        """Id of the most recently used resident plan, without touching
        hit/miss accounting (the fallback chain's last resort)."""
        if not self._plans:
            return None
        return next(reversed(self._plans))

    def clear(self) -> None:
        self._plans.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
