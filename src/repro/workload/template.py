"""Binding between query instances and plan-space points.

A :class:`QueryInstance` carries the actual parameter values an
application supplies (Definition 1).  The :class:`TemplateBinder`
implements the paper's ``f`` function (Section II-A): it converts those
values to predicate selectivities using the same column statistics the
optimizer uses, then normalizes the selectivities onto ``[0, 1]``
through the template's parameter mapping.  The inverse direction lets
workload generators place query instances at chosen plan-space
coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import WorkloadError
from repro.optimizer.expressions import QueryTemplate
from repro.optimizer.parameters import ParameterMapping
from repro.optimizer.selectivity import (
    instance_selectivities,
    value_for_selectivity,
)
from repro.optimizer.statistics import CatalogStatistics


@dataclass(frozen=True)
class QueryInstance:
    """An instantiation of a query template (Definition 1)."""

    template_name: str
    values: tuple[float, ...]

    @property
    def parameter_degree(self) -> int:
        return len(self.values)


class TemplateBinder:
    """Bidirectional ``f`` map for one template."""

    def __init__(
        self,
        template: QueryTemplate,
        statistics: CatalogStatistics,
        mapping: "ParameterMapping | None" = None,
    ) -> None:
        self.template = template
        self.statistics = statistics
        self.mapping = mapping or ParameterMapping.for_template(
            template, statistics.catalog
        )
        self._predicates = sorted(
            template.predicates, key=lambda p: p.param_index
        )

    def to_point(self, instance: QueryInstance) -> np.ndarray:
        """Map an instance's parameter values to a plan-space point."""
        if instance.template_name != self.template.name:
            raise WorkloadError(
                f"instance of {instance.template_name!r} bound against "
                f"template {self.template.name!r}"
            )
        if len(instance.values) != self.template.parameter_degree:
            raise WorkloadError(
                f"instance has {len(instance.values)} values; template "
                f"expects {self.template.parameter_degree}"
            )
        selectivities = instance_selectivities(
            self.template, self.statistics, instance.values
        )
        return self.mapping.to_normalized(selectivities)[0]

    def to_instance(self, point: np.ndarray) -> QueryInstance:
        """Produce parameter values landing at a plan-space point."""
        point = np.asarray(point, dtype=float).reshape(1, -1)
        if point.shape[1] != self.template.parameter_degree:
            raise WorkloadError(
                f"point has degree {point.shape[1]}; template expects "
                f"{self.template.parameter_degree}"
            )
        selectivities = self.mapping.to_selectivity(point)[0]
        values = tuple(
            value_for_selectivity(self.statistics, predicate, selectivity)
            for predicate, selectivity in zip(self._predicates, selectivities, strict=True)
        )
        return QueryInstance(self.template.name, values)
