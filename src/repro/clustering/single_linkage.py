"""SINGLE LINKAGE PREDICT (Section III-A, algorithm b).

Prediction returns the plan label of the nearest sample point, or NULL
when the nearest point lies beyond radius ``d``.  Handles arbitrary
cluster shapes but is blind to *where inside* a cluster the test point
falls — a point just across a plan boundary confidently inherits the
wrong label, which is why the density method's frequency-based check
wins on precision (Figure 3).
"""

from __future__ import annotations

import numpy as np

from repro.core.point import SamplePool
from repro.core.predictor import PlanPredictor, Prediction
from repro.exceptions import PredictionError


class SingleLinkagePredictor(PlanPredictor):
    """Nearest-neighbor plan prediction with a radius sanity check."""

    def __init__(self, pool: SamplePool, radius: float = 0.1) -> None:
        if len(pool) == 0:
            raise PredictionError(
                "single-linkage predict needs a non-empty pool"
            )
        if radius <= 0.0:
            raise PredictionError("radius must be > 0")
        self.dimensions = pool.dimensions
        self.radius = radius
        self._coords = pool.coords
        self._plan_ids = pool.plan_ids

    def predict(self, x: np.ndarray) -> "Prediction | None":
        x = self._check_point(x)
        distances = np.linalg.norm(self._coords - x, axis=1)
        nearest = int(np.argmin(distances))
        if distances[nearest] > self.radius:
            return None
        return Prediction(int(self._plan_ids[nearest]), confidence=1.0)

    def space_bytes(self) -> int:
        return self._coords.shape[0] * (4 * self.dimensions + 4)
