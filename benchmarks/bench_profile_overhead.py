"""Stage-profiler overhead on the predict/execute hot path.

Thin wrapper over :func:`repro.bench.runners.run_profile_overhead` —
the same measurement core behind ``repro bench run``.  Two identically
seeded sessions run the same trajectory workload in lockstep: one with
the stage profiler disabled (the shipped default, where the profiler
object does not even exist) and one profiling every execution on the
span seam.  The profiler consumes no RNG and never flips
``trace.active``, so the runner asserts the two sessions' decisions
match bit-for-bit (the lockstep parity test in ``tests/obs`` pins the
same property per-field).

The acceptance bar from the observatory work: enabled at the default
sampling, the hot path slows by less than
``PROFILE_MAX_OVERHEAD_PCT`` percent.  The snapshot lands in
``benchmarks/results/BENCH_profile.json``.
"""

from _bench_utils import write_bench_json, write_result
from repro.bench.runners import (
    PROFILE_MAX_OVERHEAD_PCT,
    PROFILE_MODES,
    PROFILE_PROBES,
    PROFILE_REPEATS,
    PROFILE_WARMUP,
    run_profile_overhead,
)


def test_profile_overhead(benchmark):
    envelope = benchmark.pedantic(
        run_profile_overhead, rounds=1, iterations=1
    )
    modes = envelope["details"]["modes"]
    lines = [
        "Stage-profiler overhead on the predict/execute path",
        f"(Q1, {PROFILE_WARMUP} warmup + {PROFILE_REPEATS}x"
        f"{PROFILE_PROBES} probes, best of {PROFILE_REPEATS})",
        "",
    ]
    for name, __ in PROFILE_MODES:
        lines.append(
            f"{name:8s}: {modes[name]['us_per_instance']:8.2f} "
            f"us/instance  ({modes[name]['overhead_pct'] / 100.0:+.1%} "
            "vs off)"
        )
    lines.append(
        f"gate: enabled overhead < {PROFILE_MAX_OVERHEAD_PCT:.0f}% "
        "with bit-identical decisions"
    )
    write_result("profile_overhead", lines)
    write_bench_json("profile", envelope)
    # The runner already proved decision parity; this pins the cost bar.
    assert envelope["gate"]["parity"] is True
    assert (
        envelope["metrics"]["enabled_overhead_pct"]["value"]
        < PROFILE_MAX_OVERHEAD_PCT
    )
