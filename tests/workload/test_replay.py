"""Deterministic trace record/replay/verify.

The determinism claim is the tentpole: a recorded trace re-driven
through a fresh executor must reproduce the decision sequence bit for
bit.  These tests pin the round-trips the claim rests on (config,
events, the trace file format), the parity itself, tamper detection,
and the committed golden trace that guards cross-version determinism.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.config import PPCConfig, SLODefinition, TelemetryConfig
from repro.exceptions import ConfigurationError
from repro.resilience.faults import FaultSpec
from repro.workload.replay import (
    TRACE_VERSION,
    config_from_dict,
    config_to_dict,
    event_from_dict,
    event_to_dict,
    load_trace,
    record_trace,
    replay_trace,
    verify_trace,
)
from repro.workload.scenarios import (
    DriftShift,
    FaultPhase,
    QueryEvent,
    get_scenario,
)

GOLDEN = pathlib.Path(__file__).parent / "golden_trace.jsonl"


class TestConfigRoundTrip:
    def test_default_config(self):
        config = PPCConfig()
        assert config_from_dict(config_to_dict(config)) == config

    def test_customized_config_with_nested_slos(self):
        config = PPCConfig(
            cache_capacity=2,
            drift_threshold=0.6,
            monitor_window=50,
            telemetry=TelemetryConfig(
                slos=(
                    SLODefinition(
                        name="x", signal="regret", objective=0.25
                    ),
                )
            ),
        )
        rebuilt = config_from_dict(config_to_dict(config))
        assert rebuilt == config
        assert rebuilt.telemetry.slos[0].name == "x"

    def test_round_trip_survives_json(self):
        config = PPCConfig(confidence_threshold=0.75)
        payload = json.loads(json.dumps(config_to_dict(config)))
        assert config_from_dict(payload) == config


class TestEventRoundTrip:
    @pytest.mark.parametrize(
        "event",
        [
            QueryEvent("Q1", (0.25, 0.75), advance=2.5),
            DriftShift("Q1", 0.4),
            FaultPhase("optimizer", FaultSpec(failure_probability=1.0)),
            FaultPhase("optimizer", None),
        ],
    )
    def test_round_trip(self, event):
        payload = json.loads(json.dumps(event_to_dict(event)))
        assert event_from_dict(payload) == event

    def test_unknown_event_object(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            event_to_dict(object())

    def test_unknown_event_kind(self):
        with pytest.raises(ConfigurationError, match="unknown trace event"):
            event_from_dict({"kind": "mystery"})


class TestTraceFormat:
    def test_record_writes_header_events_decisions(self, tmp_path):
        scenario = get_scenario("cache_pressure")
        trace = tmp_path / "trace.jsonl"
        result = record_trace(scenario, trace, fast=True)
        header, events, decisions = load_trace(trace)
        assert header["version"] == TRACE_VERSION
        assert header["scenario"] == "cache_pressure"
        assert header["seed"] == scenario.seed
        assert header["templates"] == list(scenario.templates)
        assert header["config"]["cache_capacity"] == 2
        assert len(events) == scenario.fast_instances
        assert decisions == result.decisions
        assert result.passed

    def test_no_header_is_an_error(self, tmp_path):
        trace = tmp_path / "bad.jsonl"
        trace.write_text('{"kind": "decision", "i": 0}\n')
        with pytest.raises(ConfigurationError, match="no header"):
            load_trace(trace)

    def test_duplicate_header_is_an_error(self, tmp_path):
        trace = tmp_path / "bad.jsonl"
        header = json.dumps({"kind": "header", "version": TRACE_VERSION})
        trace.write_text(header + "\n" + header + "\n")
        with pytest.raises(ConfigurationError, match="duplicate"):
            load_trace(trace)

    def test_unsupported_version_is_an_error(self, tmp_path):
        trace = tmp_path / "bad.jsonl"
        trace.write_text(
            json.dumps({"kind": "header", "version": TRACE_VERSION + 1})
            + "\n"
        )
        with pytest.raises(ConfigurationError, match="not supported"):
            load_trace(trace)

    def test_invalid_json_reports_line_number(self, tmp_path):
        trace = tmp_path / "bad.jsonl"
        trace.write_text(
            json.dumps({"kind": "header", "version": TRACE_VERSION})
            + "\nnot json\n"
        )
        with pytest.raises(ConfigurationError, match="bad.jsonl:2"):
            load_trace(trace)


class TestReplayParity:
    def test_record_then_verify_is_bit_identical(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        record_trace(get_scenario("cache_pressure"), trace, fast=True)
        report = verify_trace(trace)
        assert report["identical"], report["mismatches"]
        assert report["instances"] == report["replayed"]
        assert report["mismatches"] == []

    def test_replay_returns_recorded_decisions(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        result = record_trace(
            get_scenario("cache_pressure"), trace, fast=True
        )
        header, replayed = replay_trace(trace)
        assert header["scenario"] == "cache_pressure"
        assert replayed == result.decisions

    def test_tampered_decision_is_detected(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        record_trace(get_scenario("cache_pressure"), trace, fast=True)
        lines = trace.read_text().splitlines()
        for index, raw in enumerate(lines):
            payload = json.loads(raw)
            if payload.get("kind") == "decision":
                payload["executed_plan"] = payload["executed_plan"] + 1
                lines[index] = json.dumps(payload, sort_keys=True)
                break
        trace.write_text("\n".join(lines) + "\n")
        report = verify_trace(trace)
        assert not report["identical"]
        assert report["mismatches"]
        fields = report["mismatches"][0]["fields"]
        assert "executed_plan" in fields

    def test_events_digest_round_trips(self, tmp_path):
        # step_drift journals the synopsis lifecycle; the recorded
        # digest must reproduce on replay and gate "identical".
        trace = tmp_path / "trace.jsonl"
        record_trace(get_scenario("step_drift"), trace, fast=True)
        header, __, __ = load_trace(trace)
        assert header["events_digest"] is not None
        report = verify_trace(trace)
        assert report["identical"]
        assert report["events_digest"]["match"]
        assert (
            report["events_digest"]["recorded"]
            == report["events_digest"]["replayed"]
        )

    def test_tampered_events_digest_is_detected(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        record_trace(get_scenario("step_drift"), trace, fast=True)
        lines = trace.read_text().splitlines()
        payload = json.loads(lines[0])
        payload["events_digest"] = "0" * 64
        lines[0] = json.dumps(payload, sort_keys=True)
        trace.write_text("\n".join(lines) + "\n")
        report = verify_trace(trace)
        assert not report["identical"]
        assert not report["events_digest"]["match"]
        # The decisions themselves still replay cleanly.
        assert report["mismatches"] == []

    def test_trace_without_digest_still_verifies(self, tmp_path):
        # cache_pressure runs with the journal disabled: both sides of
        # the digest comparison are None and verification passes.
        trace = tmp_path / "trace.jsonl"
        record_trace(get_scenario("cache_pressure"), trace, fast=True)
        header, __, __ = load_trace(trace)
        assert header["events_digest"] is None
        report = verify_trace(trace)
        assert report["identical"]
        assert report["events_digest"]["match"]

    def test_missing_decisions_are_mismatches(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        record_trace(get_scenario("cache_pressure"), trace, fast=True)
        lines = [
            raw
            for raw in trace.read_text().splitlines()
            if json.loads(raw).get("kind") != "decision"
        ]
        trace.write_text("\n".join(lines) + "\n")
        report = verify_trace(trace)
        assert not report["identical"]
        assert report["instances"] == 0
        assert report["replayed"] > 0


class TestGoldenTrace:
    """The committed trace is the cross-version determinism regression
    test: any change that perturbs the decision flow breaks it loudly
    (and the fix is to understand the perturbation, then re-record)."""

    def test_golden_trace_exists_and_verifies(self):
        assert GOLDEN.exists()
        report = verify_trace(GOLDEN)
        assert report["identical"], report["mismatches"]
        assert report["scenario"] == "step_drift"
        assert report["instances"] == 300
        assert report["events_digest"]["match"]
        assert report["events_digest"]["recorded"] is not None
