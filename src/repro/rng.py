"""Seeded random-number helpers.

Every stochastic component in the library accepts either an integer seed
or an already-constructed :class:`numpy.random.Generator`.  Centralizing
the coercion here keeps experiments reproducible: the same seed always
yields the same plan spaces, workloads and transformations.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def as_generator(seed: "int | np.random.Generator | None") -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` produces an OS-seeded generator, an ``int`` produces a
    deterministic generator, and an existing generator is returned as-is
    (so that a caller can thread one generator through several
    components).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Create ``count`` statistically independent child generators.

    Used when an experiment repeats a stochastic procedure (e.g. the 20
    repetitions of the clustering comparison in Section III) and every
    repetition must be independently seeded yet reproducible.
    """
    return [np.random.default_rng(s) for s in rng.spawn(count)]
