"""Per-template plan-space scorecard from the live predictor synopsis.

The cached decision is only as good as the density synopsis's shape
over ``[0, 1]^r`` — this module measures that shape while the session
serves, strictly read-only:

* **coverage** — fraction of z-axis probe cells holding any density
  mass, averaged over the LSH transforms.  Low coverage means the
  sample-point harvest has not yet seen (or drift dropped) most of the
  plan space, so NULL predictions dominate.
* **purity / entropy** — mass-weighted majority-plan share and
  normalized plan entropy of the occupied cells.  Pure cells are the
  paper's density clusters; high entropy marks regions where plans
  interleave along the z-order curve and the confidence check must
  referee.
* **confidence margin** — mean ``confidence - γ`` of answered
  predictions in the rolling window: how comfortably the chord model
  clears ``sin(θ) > γ``.
* **rolling accuracy / regret** — ground-truth prediction accuracy and
  mean regret (``suboptimality - 1``) over the last *window*
  executions, the continuous-evaluation signals Kepler-style safety
  demands.
* **drift pressure** — how close the Section IV-E estimators sit to the
  drift alarm (see
  :meth:`~repro.core.monitor.PerformanceMonitor.drift_pressure`).
* **regret attribution** — the :func:`~repro.obs.audit.regret_audit`
  stage blame over the flight recorder's retained traces.

Everything here is pure computation over existing state — no RNG, no
clock reads, no mutation — which is what the telemetry lockstep parity
test relies on.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.exceptions import ConfigurationError
from repro.obs import names
from repro.obs.audit import regret_audit

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.framework import ExecutionRecord, TemplateSession
    from repro.obs.registry import MetricsRegistry

__all__ = [
    "compute_scorecard",
    "export_quality_gauges",
    "rolling_window_stats",
    "synopsis_scorecard",
]


def synopsis_scorecard(densities: np.ndarray) -> dict[str, float]:
    """Coverage/purity/entropy from a ``(t, plans, probes)`` density
    tensor (see
    :meth:`~repro.core.histogram_predictor.HistogramPredictor.cell_densities`).
    """
    densities = np.asarray(densities, dtype=float)
    if densities.ndim != 3:
        raise ConfigurationError(
            "expected a (transforms, plans, probes) tensor"
        )
    __, plan_count, probes = densities.shape
    cell_mass = densities.sum(axis=1)  # (t, probes)
    occupied = cell_mass > 0.0
    coverage = float(occupied.mean(axis=1).mean()) if probes else 0.0
    total_mass = float(cell_mass.sum())
    if total_mass <= 0.0:
        return {
            "coverage": coverage,
            "purity": 0.0,
            "entropy": 0.0,
            "occupied_cells": 0,
            "probe_cells": int(probes),
        }
    majority_mass = float(densities.max(axis=1)[occupied].sum())
    purity = majority_mass / total_mass
    entropy = 0.0
    if plan_count > 1:
        # Mass-weighted normalized Shannon entropy over occupied cells.
        shares = densities / np.where(cell_mass, cell_mass, 1.0)[:, None, :]
        with np.errstate(divide="ignore", invalid="ignore"):
            logs = np.where(shares > 0.0, np.log(shares), 0.0)
        cell_entropy = -(shares * logs).sum(axis=1)  # (t, probes)
        entropy = float(
            (cell_entropy * cell_mass).sum()
            / (total_mass * math.log(plan_count))
        )
    return {
        "coverage": coverage,
        "purity": purity,
        "entropy": entropy,
        "occupied_cells": int(occupied.sum()),
        "probe_cells": int(probes),
    }


def rolling_window_stats(
    records: "list[ExecutionRecord]",
    gamma: float,
    window: int = 200,
) -> dict[str, float]:
    """Accuracy/regret/confidence-margin over the last *window* records."""
    tail = records[-window:] if window else []
    if not tail:
        return {
            "window": 0,
            "accuracy": 0.0,
            "regret": 0.0,
            "confidence_margin": 0.0,
            "answered_fraction": 0.0,
            "degraded_fraction": 0.0,
        }
    answered = [r for r in tail if r.predicted is not None]
    accuracy = (
        sum(1 for r in answered if r.correct) / len(answered)
        if answered
        else 0.0
    )
    regret = sum(max(0.0, r.suboptimality - 1.0) for r in tail) / len(tail)
    margin = (
        sum(r.confidence - gamma for r in answered) / len(answered)
        if answered
        else 0.0
    )
    return {
        "window": len(tail),
        "accuracy": accuracy,
        "regret": regret,
        "confidence_margin": margin,
        "answered_fraction": len(answered) / len(tail),
        "degraded_fraction": sum(1 for r in tail if r.degraded) / len(tail),
    }


def compute_scorecard(
    session: "TemplateSession",
    probes: int = 64,
    window: int = 200,
    include_attribution: bool = True,
) -> dict[str, Any]:
    """The full plan-space scorecard of one template session.

    Read-only over the session's predictor synopsis, execution records,
    monitor estimators, and flight recorder — never advances any state
    or RNG stream, so sampling it mid-workload is decision-neutral.
    ``include_attribution=False`` skips the trace regret audit (the one
    non-trivial sub-computation), the mode the periodic gauge refresh
    uses to stay inside its overhead budget.
    """
    predictor = session.online.predictor
    synopsis = synopsis_scorecard(predictor.cell_densities(probes))
    rolling = rolling_window_stats(
        session.records,
        gamma=session.config.confidence_threshold,
        window=window,
    )
    monitor = session.monitor.quality_snapshot()
    scorecard: dict[str, Any] = {
        "template": session.plan_space.template.name,
        "executions": len(session.records),
        "synopsis": {
            **synopsis,
            "total_points": predictor.total_points,
            "total_mass": predictor.total_mass,
            "space_bytes": session.online.space_bytes(),
        },
        "rolling": rolling,
        "monitor": monitor,
    }
    if include_attribution:
        scorecard["regret_attribution"] = regret_audit(
            session.tracer.traces()
        )
    return scorecard


def export_quality_gauges(
    session: "TemplateSession",
    registry: "MetricsRegistry",
    probes: int = 64,
    window: int = 200,
) -> dict[str, Any]:
    """Refresh the per-template ``ppc_quality_*`` gauges and return the
    scorecard they were read from (attribution skipped — see
    :func:`compute_scorecard`)."""
    scorecard = compute_scorecard(
        session, probes=probes, window=window, include_attribution=False
    )
    template = scorecard["template"]
    synopsis = scorecard["synopsis"]
    rolling = scorecard["rolling"]
    monitor = scorecard["monitor"]
    gauges = (
        (names.QUALITY_COVERAGE, synopsis["coverage"]),
        (names.QUALITY_PURITY, synopsis["purity"]),
        (names.QUALITY_ENTROPY, synopsis["entropy"]),
        (names.QUALITY_ACCURACY, rolling["accuracy"]),
        (names.QUALITY_REGRET, rolling["regret"]),
        (names.QUALITY_CONFIDENCE_MARGIN, rolling["confidence_margin"]),
        (names.QUALITY_DRIFT_PRESSURE, monitor["drift_pressure"]),
    )
    for name, value in gauges:
        registry.gauge(name, template=template).set(value)
    return scorecard
