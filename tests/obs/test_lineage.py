"""Cache lineage forensics (``repro.obs.lineage``).

The engine is a pure function of the event stream, so most tests drive
it with hand-built streams where the expected cache state is obvious.
The golden-journal tests are the acceptance criterion: the committed
``tests/obs/golden_journal.jsonl`` (exported from the deterministic
``step_drift`` scenario — the same run behind
``tests/workload/golden_trace.jsonl``, as the matching stream digests
prove) must answer the insert → feedback correction → drift drop
provenance chain correctly, including time-traveled queries on either
side of the drift event.
"""

from __future__ import annotations

import pathlib

from repro.obs.events import load_journal, stream_digest
from repro.obs.lineage import CACHING_PROVENANCES, LineageEngine

GOLDEN = pathlib.Path(__file__).parent / "golden_journal.jsonl"


def _event(seq, kind, template="Q1", **fields):
    return {
        "seq": seq,
        "ts": float(seq),
        "template": template,
        "kind": kind,
        "trace": None,
        **fields,
    }


def _insert(seq, plan, provenance, **fields):
    return _event(
        seq, "point_inserted", plan=plan, provenance=provenance, **fields
    )


class TestStateReconstruction:
    def test_caching_provenances_admit(self):
        events = [
            _insert(0, 1, "null_prediction"),
            _insert(1, 2, "exploration"),
            _insert(2, 3, "cache_miss"),
            _insert(3, 4, "negative_feedback"),
            _insert(4, 5, "positive_feedback"),  # synopsis-only
            _insert(5, 6, "direct"),  # synopsis-only
        ]
        state = LineageEngine(events).state_at("Q1")
        assert sorted(state["cached"]) == [1, 2, 3, 4]
        assert state["cached"][1]["provenance"] == "null_prediction"
        assert CACHING_PROVENANCES == {
            "null_prediction",
            "exploration",
            "cache_miss",
            "negative_feedback",
        }

    def test_eviction_removes_and_counts(self):
        events = [
            _insert(0, 1, "cache_miss"),
            _insert(1, 2, "cache_miss"),
            _event(2, "cache_evicted", plan=1, prec_k=0.2, rec_k=0.5),
        ]
        state = LineageEngine(events).state_at("Q1")
        assert sorted(state["cached"]) == [2]
        assert state["evictions"] == 1

    def test_drift_clears_everything(self):
        events = [
            _insert(0, 1, "cache_miss"),
            _insert(1, 2, "exploration"),
            _event(2, "drift_drop", precision=0.1, recall=0.9),
            _insert(3, 3, "null_prediction"),
        ]
        state = LineageEngine(events).state_at("Q1")
        assert sorted(state["cached"]) == [3]
        assert state["last_drift"] == 2

    def test_generation_counts_builds_and_rebuilds(self):
        events = [
            _event(0, "histogram_built"),
            _event(1, "histogram_rebuilt"),
            _event(2, "histogram_rebuilt"),
        ]
        assert LineageEngine(events).state_at("Q1")["generation"] == 3

    def test_time_travel_is_inclusive(self):
        events = [
            _insert(0, 1, "cache_miss"),
            _event(1, "drift_drop"),
        ]
        engine = LineageEngine(events)
        assert sorted(engine.state_at("Q1", at=0)["cached"]) == [1]
        assert engine.state_at("Q1", at=1)["cached"] == {}

    def test_templates_are_isolated(self):
        events = [
            _insert(0, 1, "cache_miss", template="Q1"),
            _insert(1, 2, "cache_miss", template="Q2"),
            _event(2, "drift_drop", template="Q1"),
        ]
        engine = LineageEngine(events)
        assert engine.state_at("Q1")["cached"] == {}
        assert sorted(engine.state_at("Q2")["cached"]) == [2]
        assert engine.templates() == ["Q1", "Q2"]

    def test_out_of_order_input_is_sorted(self):
        events = [
            _event(1, "drift_drop"),
            _insert(0, 1, "cache_miss"),
        ]
        assert LineageEngine(events).state_at("Q1")["cached"] == {}


class TestWhy:
    def test_cached_with_correction(self):
        events = [
            _insert(0, 1, "null_prediction"),
            _insert(1, 1, "negative_feedback"),
        ]
        # The corrective insert re-admits plan 1, so it is the
        # admission, not a later correction of itself.
        verdict = LineageEngine(events).why("Q1", 1)
        assert verdict["cached"]
        assert verdict["admitted"]["since"] == 1
        assert "negative_feedback" in verdict["explanation"]
        assert "corrected" not in verdict["explanation"]

    def test_correction_after_admission_is_reported(self):
        events = [
            _insert(0, 1, "negative_feedback"),
            _insert(1, 1, "positive_feedback"),
            _insert(2, 2, "cache_miss"),
            _insert(3, 1, "direct"),
        ]
        # Admission at 0 survives; the later synopsis-only inserts do
        # not re-admit, and none is a negative-feedback correction.
        verdict = LineageEngine(events).why("Q1", 1)
        assert verdict["admitted"]["since"] == 0
        assert "corrected" not in verdict["explanation"]

    def test_never_touched(self):
        verdict = LineageEngine([_insert(0, 1, "cache_miss")]).why(
            "Q1", 9
        )
        assert not verdict["cached"]
        assert "no lifecycle event" in verdict["explanation"]

    def test_dropped_by_drift(self):
        events = [
            _insert(0, 1, "cache_miss"),
            _event(1, "drift_drop", precision=0.25, recall=0.75),
        ]
        verdict = LineageEngine(events).why("Q1", 1)
        assert not verdict["cached"]
        assert "drift response" in verdict["explanation"]
        assert "0.25" in verdict["explanation"]

    def test_evicted(self):
        events = [
            _insert(0, 1, "cache_miss"),
            _event(1, "cache_evicted", plan=1, prec_k=0.1, rec_k=0.4),
        ]
        verdict = LineageEngine(events).why("Q1", 1)
        assert not verdict["cached"]
        assert "evicted at seq 1" in verdict["explanation"]
        assert "prec_k=0.1" in verdict["explanation"]

    def test_history_is_plan_scoped_plus_drifts(self):
        events = [
            _insert(0, 1, "cache_miss"),
            _insert(1, 2, "cache_miss"),
            _event(2, "drift_drop"),
        ]
        verdict = LineageEngine(events).why("Q1", 1)
        assert [event["seq"] for event in verdict["history"]] == [0, 2]


class TestTimeline:
    def test_filters_compose(self):
        events = [
            _insert(0, 1, "cache_miss", template="Q1"),
            _event(1, "drift_drop", template="Q2"),
            _event(2, "drift_drop", template="Q1"),
            _insert(3, 1, "cache_miss", template="Q1"),
        ]
        engine = LineageEngine(events)
        assert len(engine.timeline()) == 4
        assert len(engine.timeline(template="Q1")) == 3
        assert len(engine.timeline(kind="drift_drop")) == 2
        assert [
            event["seq"]
            for event in engine.timeline(template="Q1", at=2)
        ] == [0, 2]


class TestGoldenJournal:
    """The committed journal is the acceptance chain: admission by
    optimizer invocation, correction by negative feedback, annihilation
    by the drift response — answered correctly at any offset."""

    def _engine(self):
        events, torn = load_journal(GOLDEN)
        assert not torn
        return LineageEngine(events), events

    def test_matches_the_golden_trace_run(self):
        # Exported from the same deterministic step_drift run as
        # tests/workload/golden_trace.jsonl: the digests must agree.
        import json

        engine, events = self._engine()
        header = json.loads(
            (
                GOLDEN.parent.parent / "workload" / "golden_trace.jsonl"
            ).read_text().splitlines()[0]
        )
        assert stream_digest(events) == header["events_digest"]

    def test_chain_insert_feedback_drift(self):
        engine, events = self._engine()
        drops = [e for e in events if e["kind"] == "drift_drop"]
        assert len(drops) == 1
        drift_seq = drops[0]["seq"]

        # Before the drift: plan 0 is cached, admitted by an optimizer
        # invocation, with negative-feedback corrections on record.
        before = engine.why("Q1", 0, at=drift_seq - 1)
        assert before["cached"]
        assert before["admitted"]["provenance"] in CACHING_PROVENANCES
        assert any(
            event.get("provenance") == "negative_feedback"
            for event in before["history"]
        )

        # At the drift event: the whole cache is gone, and why() blames
        # the drift response with the pre-reset monitor scores.
        at_drift = engine.why("Q1", 0, at=drift_seq)
        assert not at_drift["cached"]
        assert "drift response" in at_drift["explanation"]
        assert engine.state_at("Q1", at=drift_seq)["cached"] == {}

        # After the run: the synopsis was rebuilt (generation 2) and
        # plans were re-admitted post-drift.
        final = engine.state_at("Q1")
        assert final["generation"] == 2
        assert final["last_drift"] == drift_seq
        assert final["cached"]
        assert all(
            entry["since"] > drift_seq
            for entry in final["cached"].values()
        )

    def test_every_kind_maps_to_known_inventory(self):
        from repro.obs.events import EVENT_KINDS

        __, events = self._engine()
        assert {e["kind"] for e in events} <= set(EVENT_KINDS)
