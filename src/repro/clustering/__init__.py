"""Candidate clustering methods for plan prediction (Section III).

Three clustering families, each extended with the sanity checks that
trade recall for precision:

* :class:`~repro.clustering.kmeans.KMeansPredictor` — per-plan k-means,
  nearest-centroid prediction within a radius.
* :class:`~repro.clustering.single_linkage.SingleLinkagePredictor` —
  nearest labeled point within a radius.
* :class:`~repro.clustering.density.DensityPredictor` — the density
  predict algorithm with the confidence threshold (identical to
  Algorithm 1, and the method the paper builds its framework on).
"""

from repro.clustering.density import DensityPredictor
from repro.clustering.kmeans import KMeansPredictor, lloyd_kmeans
from repro.clustering.single_linkage import SingleLinkagePredictor

__all__ = [
    "DensityPredictor",
    "KMeansPredictor",
    "lloyd_kmeans",
    "SingleLinkagePredictor",
]
