"""Physical plan operators with vectorized cardinality and cost.

Every node implements ``evaluate(x)`` where ``x`` is an ``(n, r)``
array of selectivity points; it returns ``(rows, cost)`` as ``(n,)``
arrays.  Evaluating a whole batch of plan-space points at once is what
makes the :class:`~repro.optimizer.plan_space.PlanSpace` oracle fast
enough to label the tens of thousands of points the experiments need.

Nodes are constructed with all catalog quantities (row counts, page
counts, join selectivities) already resolved to plain numbers, so the
operator layer has no dependency on the catalog — mirroring how a real
executor receives a fully bound plan.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import ConfigurationError
from repro.optimizer.cost_model import CostModel

RowsCost = tuple[np.ndarray, np.ndarray]


def _selectivity_product(x: np.ndarray, param_indexes: tuple[int, ...]) -> np.ndarray:
    """Combined selectivity of the predicates at ``param_indexes``."""
    if not param_indexes:
        return np.ones(x.shape[0])
    product = np.ones(x.shape[0])
    for index in param_indexes:
        product = product * x[:, index]
    return product


class PlanNode(ABC):
    """Base class of all physical operators."""

    #: Tables contributing rows to this subtree.
    tables: frozenset[str]
    #: Column the output is sorted on (as ``"table.column"``), or None.
    sort_order: "str | None" = None

    @abstractmethod
    def evaluate(self, x: np.ndarray) -> RowsCost:
        """Output cardinality and cumulative cost at each point of ``x``."""

    @abstractmethod
    def fingerprint(self) -> str:
        """Structural identity of the plan; equal plans compare equal."""

    def describe(self, indent: int = 0) -> str:
        """Readable multi-line plan rendering."""
        return " " * indent + self.fingerprint()


def _as_points(x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=float)
    if x.ndim == 1:
        x = x[None, :]
    return x


# ----------------------------------------------------------------------
# Scans
# ----------------------------------------------------------------------
class SeqScan(PlanNode):
    """Full sequential scan with all local predicates applied as filters."""

    def __init__(
        self,
        table: str,
        base_rows: float,
        pages: float,
        param_indexes: tuple[int, ...],
        model: CostModel,
    ) -> None:
        self.table = table
        self.base_rows = float(base_rows)
        self.pages = float(pages)
        self.param_indexes = tuple(param_indexes)
        self.model = model
        self.tables = frozenset((table,))
        self.sort_order = None

    def evaluate(self, x: np.ndarray) -> RowsCost:
        x = _as_points(x)
        rows = self.base_rows * _selectivity_product(x, self.param_indexes)
        cost = np.full(
            x.shape[0],
            self.pages * self.model.seq_page_cost
            + self.base_rows * self.model.cpu_tuple_cost,
        )
        return rows, cost

    def fingerprint(self) -> str:
        return f"SeqScan({self.table})"


class IndexScan(PlanNode):
    """Index range scan driven by one sargable parameterized predicate.

    The sargable predicate's selectivity decides how many index entries
    (and, for an unclustered index, how many random page fetches) the
    scan performs; the remaining local predicates are residual filters.
    """

    def __init__(
        self,
        table: str,
        index_name: str,
        sarg_param: int,
        base_rows: float,
        pages: float,
        residual_params: tuple[int, ...],
        clustered: bool,
        model: CostModel,
    ) -> None:
        if sarg_param in residual_params:
            raise ConfigurationError("sargable predicate repeated as residual")
        self.table = table
        self.index_name = index_name
        self.sarg_param = sarg_param
        self.base_rows = float(base_rows)
        self.pages = float(pages)
        self.residual_params = tuple(residual_params)
        self.clustered = clustered
        self.model = model
        self.tables = frozenset((table,))
        self.sort_order = None  # set by the builder to the indexed column

    def evaluate(self, x: np.ndarray) -> RowsCost:
        x = _as_points(x)
        sarg_sel = x[:, self.sarg_param]
        fetched = self.base_rows * sarg_sel
        if self.clustered:
            io_cost = self.pages * sarg_sel * self.model.seq_page_cost
        else:
            # Mackert-Lohman estimate of distinct pages touched by
            # `fetched` random row accesses; saturates at the table's
            # page count instead of growing without bound.
            pages_touched = self.pages * (1.0 - np.exp(-fetched / self.pages))
            io_cost = pages_touched * self.model.random_page_cost
        cost = self.model.index_probe_cost + io_cost + fetched * self.model.cpu_tuple_cost
        rows = fetched * _selectivity_product(x, self.residual_params)
        return rows, cost

    def fingerprint(self) -> str:
        return f"IndexScan({self.table}.{self.index_name})"


# ----------------------------------------------------------------------
# Sort
# ----------------------------------------------------------------------
class Sort(PlanNode):
    """Explicit sort enforcing an order for a merge join."""

    def __init__(self, child: PlanNode, order: str, model: CostModel) -> None:
        self.child = child
        self.order = order
        self.model = model
        self.tables = child.tables
        self.sort_order = order

    def evaluate(self, x: np.ndarray) -> RowsCost:
        rows, cost = self.child.evaluate(_as_points(x))
        safe_rows = np.maximum(rows, 2.0)
        sort_cost = self.model.sort_cost_factor * rows * np.log2(safe_rows)
        return rows, cost + sort_cost

    def fingerprint(self) -> str:
        return f"Sort[{self.order}]({self.child.fingerprint()})"

    def describe(self, indent: int = 0) -> str:
        pad = " " * indent
        return f"{pad}Sort on {self.order}\n{self.child.describe(indent + 2)}"


# ----------------------------------------------------------------------
# Joins
# ----------------------------------------------------------------------
class _Join(PlanNode):
    """Shared bookkeeping for binary joins."""

    def __init__(
        self,
        outer: PlanNode,
        inner: PlanNode,
        join_selectivity: float,
        model: CostModel,
    ) -> None:
        if outer.tables & inner.tables:
            raise ConfigurationError("join sides overlap")
        if not 0.0 < join_selectivity <= 1.0:
            raise ConfigurationError("join selectivity must be in (0, 1]")
        self.outer = outer
        self.inner = inner
        self.join_selectivity = float(join_selectivity)
        self.model = model
        self.tables = outer.tables | inner.tables
        self.sort_order = None

    def _output_rows(
        self, outer_rows: np.ndarray, inner_rows: np.ndarray
    ) -> np.ndarray:
        return outer_rows * inner_rows * self.join_selectivity

    def describe(self, indent: int = 0) -> str:
        pad = " " * indent
        return (
            f"{pad}{type(self).__name__} (sel={self.join_selectivity:.2e})\n"
            f"{self.outer.describe(indent + 2)}\n"
            f"{self.inner.describe(indent + 2)}"
        )


class NestedLoopJoin(_Join):
    """In-memory nested loops over a materialized inner.

    Cost is quadratic in input cardinalities; wins only when both sides
    are tiny, producing the small optimality pockets near the plan-space
    origin.  Like any nested-loops join, it emits outer tuples in
    order, so the outer's sort order survives.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.sort_order = self.outer.sort_order

    def evaluate(self, x: np.ndarray) -> RowsCost:
        x = _as_points(x)
        outer_rows, outer_cost = self.outer.evaluate(x)
        inner_rows, inner_cost = self.inner.evaluate(x)
        compare_cost = outer_rows * inner_rows * self.model.cpu_compare_cost
        rows = self._output_rows(outer_rows, inner_rows)
        cost = outer_cost + inner_cost + compare_cost + rows * self.model.cpu_tuple_cost
        return rows, cost

    def fingerprint(self) -> str:
        return f"NLJ({self.outer.fingerprint()},{self.inner.fingerprint()})"


class IndexNLJoin(_Join):
    """Nested loops probing an index on the inner base table.

    The inner side must be a base-table access: each outer row performs
    one index probe fetching ``inner_base_rows * join_selectivity``
    matches, after which the inner table's local predicates filter the
    output.  Wins when the outer is small, independent of inner size.
    """

    def __init__(
        self,
        outer: PlanNode,
        inner_table: str,
        inner_index: str,
        inner_base_rows: float,
        inner_param_indexes: tuple[int, ...],
        join_selectivity: float,
        model: CostModel,
    ) -> None:
        inner = SeqScan(inner_table, inner_base_rows, 1.0, inner_param_indexes, model)
        super().__init__(outer, inner, join_selectivity, model)
        self.inner_table = inner_table
        self.inner_index = inner_index
        self.inner_base_rows = float(inner_base_rows)
        self.inner_param_indexes = tuple(inner_param_indexes)
        # Nested loops emit outer tuples in order.
        self.sort_order = outer.sort_order

    def evaluate(self, x: np.ndarray) -> RowsCost:
        x = _as_points(x)
        outer_rows, outer_cost = self.outer.evaluate(x)
        matches_per_probe = self.inner_base_rows * self.join_selectivity
        probe_cost = (
            self.model.index_probe_cost
            + matches_per_probe * self.model.random_page_cost
        )
        residual = _selectivity_product(x, self.inner_param_indexes)
        rows = outer_rows * matches_per_probe * residual
        cost = (
            outer_cost
            + outer_rows * probe_cost
            + rows * self.model.cpu_tuple_cost
        )
        return rows, cost

    def fingerprint(self) -> str:
        return (
            f"IdxNLJ({self.outer.fingerprint()},"
            f"{self.inner_table}.{self.inner_index})"
        )

    def describe(self, indent: int = 0) -> str:
        pad = " " * indent
        return (
            f"{pad}IndexNLJoin probe {self.inner_table}.{self.inner_index}\n"
            f"{self.outer.describe(indent + 2)}"
        )


class HashJoin(_Join):
    """Hash join building on the inner side, spilling past memory."""

    def evaluate(self, x: np.ndarray) -> RowsCost:
        x = _as_points(x)
        outer_rows, outer_cost = self.outer.evaluate(x)
        inner_rows, inner_cost = self.inner.evaluate(x)
        build = inner_rows * self.model.hash_build_cost
        probe = outer_rows * self.model.hash_probe_cost
        spill_penalty = np.where(
            inner_rows > self.model.hash_memory_rows,
            (outer_rows + inner_rows)
            * self.model.hash_spill_factor
            * self.model.cpu_tuple_cost,
            0.0,
        )
        rows = self._output_rows(outer_rows, inner_rows)
        cost = (
            outer_cost
            + inner_cost
            + build
            + probe
            + spill_penalty
            + rows * self.model.cpu_tuple_cost
        )
        return rows, cost

    def fingerprint(self) -> str:
        return f"HJ({self.outer.fingerprint()},{self.inner.fingerprint()})"


class MergeJoin(_Join):
    """Merge join; both inputs must already carry the join order."""

    def __init__(
        self,
        outer: PlanNode,
        inner: PlanNode,
        join_selectivity: float,
        model: CostModel,
        order: str,
    ) -> None:
        super().__init__(outer, inner, join_selectivity, model)
        self.sort_order = order

    def evaluate(self, x: np.ndarray) -> RowsCost:
        x = _as_points(x)
        outer_rows, outer_cost = self.outer.evaluate(x)
        inner_rows, inner_cost = self.inner.evaluate(x)
        merge = (outer_rows + inner_rows) * self.model.merge_cost_factor
        rows = self._output_rows(outer_rows, inner_rows)
        cost = outer_cost + inner_cost + merge + rows * self.model.cpu_tuple_cost
        return rows, cost

    def fingerprint(self) -> str:
        return f"MJ({self.outer.fingerprint()},{self.inner.fingerprint()})"
