"""Cost-based misprediction detection (negative feedback, Section IV-E).

The sample pool contains only truly optimal points (no positive
feedback), so the histogram cost synopses estimate the *optimal*
execution cost near any point.  By the plan cost predictability
assumption, a correct prediction's observed cost must lie within a
relative error bound ``epsilon`` of that estimate; a larger deviation
is taken — by the contrapositive — as evidence of a false prediction.
The paper fixes ``epsilon = 0.25`` and reports the resulting binary
estimator is about 72 % accurate.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError

#: The paper's cost error bound.
DEFAULT_EPSILON = 0.25


class CostFeedbackDetector:
    """Binary classifier: was a prediction erroneous, judging by cost?

    By default the check is one-sided: executing a *wrong* plan can only
    cost more than the optimal-cost estimate, never less, so a cheaper-
    than-estimated execution signals estimate smearing rather than a
    misprediction.  ``one_sided=False`` restores the symmetric bound for
    ablation.
    """

    def __init__(
        self,
        epsilon: float = DEFAULT_EPSILON,
        one_sided: bool = True,
    ) -> None:
        if epsilon <= 0.0:
            raise ConfigurationError("epsilon must be > 0")
        self.epsilon = epsilon
        self.one_sided = one_sided

    def is_erroneous(
        self,
        estimated_cost: "float | None",
        observed_cost: float,
    ) -> bool:
        """True when the observed cost falls outside the error bound.

        With no cost estimate available (empty neighborhood) the
        detector abstains, i.e. reports "not erroneous".
        """
        if estimated_cost is None or estimated_cost <= 0.0:
            return False
        if observed_cost <= 0.0:
            return False
        ratio = observed_cost / estimated_cost
        bound = 1.0 + self.epsilon
        if ratio > bound:
            return True
        return not self.one_sided and ratio < 1.0 / bound
