"""Bushy join enumeration."""

import numpy as np
import pytest

from repro.optimizer.enumeration import DPEnumerator
from repro.tpch import build_catalog, query_template


@pytest.fixture(scope="module")
def catalog():
    return build_catalog()


class TestBushyEnumeration:
    def test_bushy_never_worse(self, catalog):
        """Bushy enumeration explores a superset of left-deep trees, so
        its optimum can only be equal or cheaper at every point."""
        template = query_template("Q7")  # five tables
        left_deep = DPEnumerator(template, catalog, allow_bushy=False)
        bushy = DPEnumerator(template, catalog, allow_bushy=True)
        rng = np.random.default_rng(0)
        for point in rng.uniform(0, 1, (8, 6)):
            __, cost_ld = left_deep.optimize(point[None, :])
            __, cost_bushy = bushy.optimize(point[None, :])
            assert cost_bushy <= cost_ld + 1e-9

    def test_bushy_wins_on_double_ended_chain(self):
        """A chain with selective filters at both ends and a many-many
        blowup in the middle: left-deep must carry the blowup from one
        end; only a bushy tree reduces both ends first."""
        from repro.optimizer.catalog import Catalog, Column, Table
        from repro.optimizer.expressions import (
            ColumnRef,
            JoinPredicate,
            ParamPredicate,
            QueryTemplate,
        )

        catalog = Catalog()
        catalog.add_table(
            Table("a", 10_000, {
                "ab": Column("ab", 1, 10_000, 10_000),
                "af": Column("af", 0, 100, 100),
            })
        )
        catalog.add_table(
            Table("b", 10_000, {
                "ab": Column("ab", 1, 10_000, 10_000),
                # Many-many middle join: only 100 distinct keys.
                "bc": Column("bc", 1, 100, 100),
            })
        )
        catalog.add_table(
            Table("c", 1_000_000, {
                "bc": Column("bc", 1, 100, 100),
                "cd": Column("cd", 1, 10, 10),
            })
        )
        catalog.add_table(
            Table("d", 10, {
                "cd": Column("cd", 1, 10, 10),
                "df": Column("df", 0, 100, 100),
            })
        )
        template = QueryTemplate(
            name="chain",
            tables=("a", "b", "c", "d"),
            joins=(
                JoinPredicate(ColumnRef("a", "ab"), ColumnRef("b", "ab")),
                JoinPredicate(ColumnRef("b", "bc"), ColumnRef("c", "bc")),
                JoinPredicate(ColumnRef("c", "cd"), ColumnRef("d", "cd")),
            ),
            predicates=(
                ParamPredicate(
                    ColumnRef("a", "af"), 0,
                    sel_range=(1e-3, 1e-2),
                ),
                ParamPredicate(
                    ColumnRef("d", "df"), 1,
                    sel_range=(0.05, 0.2),
                ),
            ),
        )
        left_deep = DPEnumerator(template, catalog, allow_bushy=False)
        bushy = DPEnumerator(template, catalog, allow_bushy=True)
        point = np.array([[0.1, 0.1]])
        plan_bushy, cost_bushy = bushy.optimize(point)
        __, cost_ld = left_deep.optimize(point)
        assert cost_bushy < cost_ld
        assert _has_bushy_shape(plan_bushy.root)

    def test_three_tables_unaffected(self, catalog):
        """With fewer than four tables there is no bushy shape; both
        modes must agree exactly."""
        template = query_template("Q3")
        left_deep = DPEnumerator(template, catalog, allow_bushy=False)
        bushy = DPEnumerator(template, catalog, allow_bushy=True)
        rng = np.random.default_rng(2)
        for point in rng.uniform(0, 1, (5, 3)):
            plan_ld, cost_ld = left_deep.optimize(point[None, :])
            plan_bushy, cost_bushy = bushy.optimize(point[None, :])
            assert cost_bushy == pytest.approx(cost_ld)
            assert plan_bushy.fingerprint == plan_ld.fingerprint


def _has_bushy_shape(node) -> bool:
    """True if some join in the tree has joins on both inputs."""
    from repro.optimizer.operators import Sort, _Join

    def strip(child):
        while isinstance(child, Sort):
            child = child.child
        return child

    if isinstance(node, _Join):
        outer = strip(node.outer)
        inner = strip(node.inner)
        if isinstance(outer, _Join) and isinstance(inner, _Join):
            return True
        return _has_bushy_shape(outer) or _has_bushy_shape(inner)
    return False
