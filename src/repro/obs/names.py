"""Canonical metric names exported by the PPC pipeline.

One place to look up what the instrumented pipeline emits; README's
"Observability" section documents the same inventory for adopters.
Label conventions: ``template`` is the query-template name; ``stage``
is one of :data:`STAGES`; ``reason`` is one of
:data:`INVOCATION_REASONS`; ``event`` is one of :data:`CACHE_EVENTS`;
``outcome`` is ``accepted``/``rejected``; ``action`` is
``shrink``/``drop``; ``component`` is one of
:data:`DEGRADED_COMPONENTS`; ``source`` is one of
:data:`FALLBACK_SOURCES`; ``state`` is a circuit-breaker state.
"""

from __future__ import annotations

#: Per-stage wall-clock of :meth:`TemplateSession.execute`
#: (labels: template, stage) — latency histogram, seconds.
STAGE_SECONDS = "ppc_stage_seconds"

#: Query instances executed (labels: template) — counter.
EXECUTIONS_TOTAL = "ppc_executions_total"

#: Optimizer invocations by cause (labels: template, reason) — counter.
INVOCATIONS_TOTAL = "ppc_optimizer_invocations_total"

#: Positive-feedback offers (labels: template, outcome) — counter.
POSITIVE_FEEDBACK_TOTAL = "ppc_positive_feedback_total"

#: Drift responses fired (labels: template) — counter.
DRIFT_EVENTS_TOTAL = "ppc_drift_events_total"

#: Plan-cache activity (labels: template, event) — counter.
CACHE_EVENTS_TOTAL = "ppc_cache_events_total"

#: Synopsis bytes reclaimed by the memory governor — counter.
GOVERNOR_RECLAIMED_BYTES = "ppc_governor_reclaimed_bytes_total"

#: Governor reclamation steps (labels: template, action) — counter.
GOVERNOR_ACTIONS_TOTAL = "ppc_governor_actions_total"

#: Time spent in the LSH transform + z-order pipeline per scalar
#: predict (labels: template) — latency histogram, seconds.
PREDICT_TRANSFORM_SECONDS = "ppc_predict_transform_seconds"

#: Time spent answering histogram range queries per scalar predict
#: (labels: template) — latency histogram, seconds.
PREDICT_RANGE_QUERY_SECONDS = "ppc_predict_range_query_seconds"

#: Current synopsis footprint (labels: template) — gauge, bytes.
SYNOPSIS_BYTES = "ppc_synopsis_bytes"

#: Plans currently resident in the plan cache (labels: template) — gauge.
CACHE_PLANS = "ppc_cache_plans"

#: Optimizer circuit-breaker state (labels: template) — gauge;
#: 0 = closed, 1 = half-open, 2 = open.
BREAKER_STATE = "ppc_breaker_state"

#: Breaker state transitions (labels: template, state) — counter.
BREAKER_TRANSITIONS_TOTAL = "ppc_breaker_transitions_total"

#: Component failures absorbed by the guarded decision flow
#: (labels: template, component) — counter.
DEGRADED_TOTAL = "ppc_degraded_total"

#: Instances answered from the fallback chain because the optimizer
#: was unavailable (labels: template, source) — counter.
FALLBACK_SERVED_TOTAL = "ppc_fallback_served_total"

#: Suboptimality ratio (executed cost / optimal cost) of instances
#: served from the fallback chain (labels: template) — histogram,
#: dimensionless (>= 1).
FALLBACK_SUBOPTIMALITY = "ppc_fallback_suboptimality"

#: Query instances rejected before entering the decision flow
#: (labels: template, reason) — counter.
REJECTED_INSTANCES_TOTAL = "ppc_rejected_instances_total"

#: Optimizer invocation retries performed by the backoff loop
#: (labels: template) — counter.
OPTIMIZER_RETRIES_TOTAL = "ppc_optimizer_retries_total"

#: Spans closed inside recorded decision traces (labels: template)
#: — counter.
TRACE_SPANS_TOTAL = "ppc_trace_spans_total"

#: Decision traces admitted to the flight recorder (labels: template)
#: — counter.
TRACE_RECORDED_TOTAL = "ppc_trace_recorded_total"

#: Decision traces evicted from the flight recorder to admit newer
#: ones (labels: template) — counter.
TRACE_DROPPED_TOTAL = "ppc_trace_dropped_total"

#: Trace-sampler verdicts, one per execution (labels: template,
#: decision) — counter; ``decision`` is one of
#: :data:`SAMPLER_DECISIONS`.
TRACE_SAMPLER_TOTAL = "ppc_trace_sampler_total"

#: Decision traces currently held by the flight recorder
#: (labels: template) — gauge.
TRACE_OCCUPANCY = "ppc_trace_occupancy"

#: The decision-flow stages timed inside ``TemplateSession.execute``.
STAGES = ("predict", "optimize", "execute", "feedback")

#: Why the optimizer was invoked (Figure 1 decision flow).
INVOCATION_REASONS = (
    "null_prediction",
    "exploration",
    "cache_miss",
    "negative_feedback",
)

#: Plan-cache event labels.
CACHE_EVENTS = ("hit", "miss", "eviction")

#: Guarded components of the decision flow (``component`` label of
#: :data:`DEGRADED_TOTAL`).
DEGRADED_COMPONENTS = ("predictor", "predictor_insert", "optimizer")

#: Fallback-chain sources, in preference order (``source`` label of
#: :data:`FALLBACK_SERVED_TOTAL`).
FALLBACK_SOURCES = ("prediction", "last_plan", "cache")

#: Up-front validation failures (``reason`` label of
#: :data:`REJECTED_INSTANCES_TOTAL`).
REJECTION_REASONS = ("bad_shape", "non_finite", "out_of_domain")

#: Trace-sampler verdicts (``decision`` label of
#: :data:`TRACE_SAMPLER_TOTAL`), in evaluation order.
SAMPLER_DECISIONS = ("forced", "head", "error_bias", "interval", "skipped")
