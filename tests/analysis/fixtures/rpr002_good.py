"""Clock access through the injectable aliases (and perf_counter,
which is allowed: latency measurement never drives control flow)."""
from time import perf_counter

from repro.resilience.clocks import system_clock, system_sleep


def deadline(budget: float) -> float:
    return system_clock() + budget


def wait(seconds: float) -> None:
    system_sleep(seconds)


def measure(fn) -> float:
    start = perf_counter()
    fn()
    return perf_counter() - start
