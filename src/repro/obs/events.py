"""Synopsis lifecycle event journal (cache lineage forensics).

The paper's plan cache is *learned state*: points harvested on misses,
corrective inserts from negative feedback, noise elimination,
precision/recall-driven eviction, and drift-triggered histogram drops
(PAPER.md §V).  PRs 1–9 made every *decision* observable — spans,
metrics, SLO burn rates, stage profiles — but the evolution of the
learned state itself left no record.  :class:`EventJournal` closes the
gap: an append-only journal of typed lifecycle events emitted from the
predictor mutation paths, the session decision flow, and the cache
eviction policy, each event carrying the template id, a global
monotonic sequence number, the *injected* clock timestamp, and the
active :class:`~repro.obs.tracing.DecisionTrace` sequence number so
spans and lifecycle events cross-link.

House invariants (the lockstep-parity discipline of the tracer and
profiler):

* **disabled is free** — with ``EventsConfig.enabled`` False (the
  default) no journal object exists, mutation paths pay one ``is
  None`` check, and nothing is allocated;
* **enabled is inert** — emission consumes no RNG, reads only the
  injected clock, and never feeds back into a decision: journaled runs
  are bit-identical to unjournaled ones (pinned by the parity suite
  and the ``events_overhead`` bench);
* **bounded, never silently** — the ring holds ``capacity`` events;
  older events rotate out under an explicit ``dropped`` counter, like
  the profiler's ``max_paths`` accounting.  The running stream digest
  covers every event ever emitted, rotation notwithstanding.

Export is JSONL through the crash-safe
:func:`~repro.core.persistence.append_text` writer; every exported
line carries a CRC32 of its canonical payload so :func:`load_journal`
distinguishes a torn tail (tolerated) from mid-file tampering
(rejected), mirroring the predictor snapshot envelope.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import zlib
from collections import deque
from typing import Any

from repro.config import EventsConfig
from repro.exceptions import PersistenceError
from repro.resilience.clocks import system_clock

#: Every lifecycle event type the pipeline emits, mapped to its paper
#: mechanism in DESIGN.md §12.
EVENT_KINDS = (
    "point_inserted",
    "histogram_built",
    "histogram_rebuilt",
    "noise_pruned",
    "cache_evicted",
    "drift_drop",
    "breaker_transition",
    "fallback_served",
)


def _canonical(event: "dict[str, Any]") -> str:
    """Canonical JSON of one event (sorted keys, no whitespace)."""
    return json.dumps(event, sort_keys=True, separators=(",", ":"))


class _TemplateEmitter:
    """One template's bound emitter: ``emitter(kind, **fields)``.

    Handed to predictors, caches and sessions so emission sites never
    thread the template name (or the journal) explicitly.
    """

    __slots__ = ("_journal", "_template")

    def __init__(self, journal: "EventJournal", template: str) -> None:
        self._journal = journal
        self._template = template

    def __call__(self, kind: str, **fields: Any) -> "dict[str, Any]":
        return self._journal.emit(self._template, kind, **fields)

    def set_trace(self, seq: "int | None") -> None:
        """Pin the active decision-trace seq for cross-linking."""
        self._journal.set_trace(self._template, seq)


class EventJournal:
    """Deterministic, bounded, append-only lifecycle event journal.

    ``clock`` defaults to the injected ``system_clock`` alias; pass the
    framework clock (or a fake) for deterministic timestamps.  One
    journal is shared by every session of a framework, so the sequence
    numbers give a total order across templates.
    """

    def __init__(
        self,
        config: "EventsConfig | None" = None,
        clock=None,
    ) -> None:
        self.config = config if config is not None else EventsConfig(
            enabled=True
        )
        self._clock = clock if clock is not None else system_clock
        self._capacity = self.config.capacity
        self._ring: "deque[dict[str, Any]]" = deque()
        self._seq = 0
        self.emitted = 0
        self.dropped = 0
        self._by_kind: "dict[tuple[str, str], int]" = {}
        self._trace: "dict[str, int | None]" = {}
        self._hash = hashlib.sha256()
        self._metrics = None
        self._emit_counters: "dict[tuple[str, str], Any]" = {}
        self._dropped_counter = None
        self._occupancy_gauge = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def bind(self, template: str) -> _TemplateEmitter:
        """A bound emitter for one template."""
        return _TemplateEmitter(self, template)

    def bind_metrics(self, registry) -> None:
        """Publish emit/drop/occupancy counts through ``registry``."""
        from repro.obs import names as metric_names

        self._metrics = registry
        self._emit_counters = {}
        self._dropped_counter = registry.counter(
            metric_names.EVENTS_DROPPED_TOTAL
        )
        self._occupancy_gauge = registry.gauge(metric_names.EVENTS_OCCUPANCY)

    def set_trace(self, template: str, seq: "int | None") -> None:
        """Record the active decision-trace seq for ``template``."""
        self._trace[template] = seq

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def emit(
        self, template: str, kind: str, **fields: Any
    ) -> "dict[str, Any]":
        """Append one typed event; returns the event dict."""
        event: "dict[str, Any]" = {
            "seq": self._seq,
            "ts": float(self._clock()),
            "template": template,
            "kind": kind,
            "trace": self._trace.get(template),
        }
        if fields:
            event.update(fields)
        self._seq += 1
        self.emitted += 1
        key = (template, kind)
        self._by_kind[key] = self._by_kind.get(key, 0) + 1
        self._hash.update((_canonical(event) + "\n").encode("utf-8"))
        if len(self._ring) >= self._capacity:
            self._ring.popleft()
            self.dropped += 1
            if self._dropped_counter is not None:
                self._dropped_counter.inc()
        self._ring.append(event)
        if self._metrics is not None:
            counter = self._emit_counters.get(key)
            if counter is None:
                from repro.obs import names as metric_names

                counter = self._metrics.counter(
                    metric_names.EVENTS_EMITTED_TOTAL,
                    template=template,
                    kind=kind,
                )
                self._emit_counters[key] = counter
            counter.inc()
            self._occupancy_gauge.set(float(len(self._ring)))
        return event

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def events(
        self,
        template: "str | None" = None,
        kind: "str | None" = None,
    ) -> "list[dict[str, Any]]":
        """Resident events, oldest first, optionally filtered."""
        return [
            dict(event)
            for event in self._ring
            if (template is None or event["template"] == template)
            and (kind is None or event["kind"] == kind)
        ]

    def digest(self) -> str:
        """SHA-256 over the canonical form of every event ever emitted
        (a running hash, so rotation does not weaken it)."""
        return self._hash.copy().hexdigest()

    def stats(self) -> "dict[str, Any]":
        """JSON-ready journal accounting."""
        by_kind: "dict[str, int]" = {}
        templates: "dict[str, dict[str, int]]" = {}
        for (template, kind), count in sorted(self._by_kind.items()):
            by_kind[kind] = by_kind.get(kind, 0) + count
            templates.setdefault(template, {})[kind] = count
        return {
            "enabled": True,
            "capacity": self._capacity,
            "emitted": self.emitted,
            "dropped": self.dropped,
            "occupancy": len(self._ring),
            "next_seq": self._seq,
            "digest": self.digest(),
            "by_kind": by_kind,
            "templates": templates,
        }

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def export(self, path: "str | pathlib.Path") -> int:
        """Append the resident events to ``path`` as checksummed JSONL
        (crash-safe, via :func:`~repro.core.persistence.append_text`);
        returns the number of lines written."""
        return export_journal(self.events(), path)


def export_journal(
    events: "list[dict[str, Any]]", path: "str | pathlib.Path"
) -> int:
    """Durably append ``events`` to ``path``, one CRC-stamped JSON
    line each; returns the count written (0 writes nothing)."""
    from repro.core.persistence import append_text

    if not events:
        return 0
    lines = []
    for event in events:
        body = dict(event)
        body.pop("crc", None)
        record = dict(body)
        record["crc"] = zlib.crc32(_canonical(body).encode("utf-8"))
        lines.append(json.dumps(record, sort_keys=True))
    append_text(path, "\n".join(lines) + "\n")
    return len(lines)


def load_journal(
    path: "str | pathlib.Path",
) -> "tuple[list[dict[str, Any]], bool]":
    """Parse an exported journal: ``(events, torn_tail)``.

    A final line that fails to parse is a torn tail — the artifact of a
    crash mid-append — and is tolerated (``torn_tail`` True).  A
    non-tail parse failure or any per-line CRC mismatch raises
    :class:`~repro.exceptions.PersistenceError`: the journal was
    tampered with or corrupted, and lineage conclusions drawn from it
    would be forensically worthless.
    """
    path = pathlib.Path(path)
    try:
        raw_lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        raise PersistenceError(f"cannot read journal {path}: {exc}") from exc
    populated = [i for i, raw in enumerate(raw_lines) if raw.strip()]
    last = populated[-1] if populated else -1
    events: "list[dict[str, Any]]" = []
    torn = False
    for number, raw in enumerate(raw_lines):
        raw = raw.strip()
        if not raw:
            continue
        try:
            record = json.loads(raw)
        except json.JSONDecodeError as exc:
            if number == last:
                torn = True
                break
            raise PersistenceError(
                f"{path}:{number + 1}: not valid JSON: {exc}"
            ) from exc
        if not isinstance(record, dict) or "crc" not in record:
            raise PersistenceError(
                f"{path}:{number + 1}: journal line has no checksum"
            )
        crc = record.pop("crc")
        if zlib.crc32(_canonical(record).encode("utf-8")) != crc:
            raise PersistenceError(
                f"{path}:{number + 1}: event checksum mismatch "
                "(tampered or corrupt journal)"
            )
        events.append(record)
    return events, torn


def stream_digest(events: "list[dict[str, Any]]") -> str:
    """The digest a fresh journal would report after emitting exactly
    ``events`` — for verifying exported/loaded streams offline."""
    digest = hashlib.sha256()
    for event in events:
        body = dict(event)
        body.pop("crc", None)
        digest.update((_canonical(body) + "\n").encode("utf-8"))
    return digest.hexdigest()


def render_timeline(
    events: "list[dict[str, Any]]", limit: "int | None" = None
) -> str:
    """Terminal rendering of an event stream, oldest first."""
    if not events:
        return "no lifecycle events recorded"
    if limit is not None and limit > 0:
        events = events[-limit:]
    lines = []
    for event in events:
        detail = " ".join(
            f"{key}={_fmt_value(event[key])}"
            for key in sorted(event)
            if key not in ("seq", "ts", "template", "kind", "trace", "crc")
        )
        trace = event.get("trace")
        link = f" [trace {trace}]" if trace is not None else ""
        lines.append(
            f"#{event['seq']:>6d} t={event['ts']:>10.3f} "
            f"{event['template']:<4s} {event['kind']:<18s} "
            f"{detail}{link}".rstrip()
        )
    return "\n".join(lines)


def _fmt_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


__all__ = [
    "EVENT_KINDS",
    "EventJournal",
    "export_journal",
    "load_journal",
    "render_timeline",
    "stream_digest",
]
