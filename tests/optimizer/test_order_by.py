"""ORDER BY: interesting orders at the root of the plan."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.optimizer.enumeration import DPEnumerator
from repro.optimizer.expressions import (
    ColumnRef,
    JoinPredicate,
    ParamPredicate,
    QueryTemplate,
)
from repro.optimizer.operators import Sort


def _template(order_by=None):
    return QueryTemplate(
        name="ordered",
        tables=("emp", "dept"),
        joins=(
            JoinPredicate(ColumnRef("emp", "dept_id"), ColumnRef("dept", "dept_id")),
        ),
        predicates=(
            ParamPredicate(ColumnRef("emp", "hired"), 0),
            ParamPredicate(ColumnRef("dept", "budget"), 1),
        ),
        order_by=order_by,
    )


class TestOrderBy:
    def test_output_carries_requested_order(self, tiny_catalog):
        template = _template(order_by=ColumnRef("emp", "hired"))
        enumerator = DPEnumerator(template, tiny_catalog)
        rng = np.random.default_rng(0)
        for point in rng.uniform(0, 1, (6, 2)):
            plan, __ = enumerator.optimize(point[None, :])
            assert plan.root.sort_order == "emp.hired"

    def test_sorted_plan_no_more_than_sort_on_cheapest(self, tiny_catalog):
        """The ordered optimum never exceeds unordered optimum + one
        explicit sort (that combination is always a candidate)."""
        plain = DPEnumerator(_template(), tiny_catalog)
        ordered = DPEnumerator(
            _template(order_by=ColumnRef("emp", "hired")), tiny_catalog
        )
        rng = np.random.default_rng(1)
        for point in rng.uniform(0, 1, (6, 2)):
            plan_plain, cost_plain = plain.optimize(point[None, :])
            x_sel = plain.mapping.to_selectivity(point[None, :])
            sorted_cheapest = Sort(
                plan_plain.root, "emp.hired", plain.builder.model
            )
            __, upper_bound = sorted_cheapest.evaluate(x_sel)
            __, cost_ordered = ordered.optimize(point[None, :])
            assert cost_ordered <= float(upper_bound[0]) + 1e-9

    def test_ordered_at_least_as_expensive_as_plain(self, tiny_catalog):
        plain = DPEnumerator(_template(), tiny_catalog)
        ordered = DPEnumerator(
            _template(order_by=ColumnRef("emp", "hired")), tiny_catalog
        )
        point = np.array([[0.3, 0.6]])
        __, cost_plain = plain.optimize(point)
        __, cost_ordered = ordered.optimize(point)
        assert cost_ordered >= cost_plain - 1e-9

    def test_interesting_order_exploited_when_sort_is_expensive(
        self, tiny_catalog
    ):
        """When the result is large, sorting it costs more than reading
        through the matching index: the natively ordered plan must win
        (no top-level Sort)."""
        template = QueryTemplate(
            name="scan_ordered",
            tables=("emp",),
            predicates=(
                ParamPredicate(
                    ColumnRef("emp", "hired"), 0,
                    sel_range=(0.5, 0.99), scale="linear",
                ),
            ),
            order_by=ColumnRef("emp", "hired"),
        )
        enumerator = DPEnumerator(template, tiny_catalog)
        plan, __ = enumerator.optimize(np.array([[0.9]]))
        assert not isinstance(plan.root, Sort)
        assert plan.root.sort_order == "emp.hired"

    def test_sort_enforcer_chosen_when_cheap(self, tiny_catalog):
        """When the result is tiny, a final sort is cheaper than any
        order-preserving plan: the enforcer must win."""
        ordered = DPEnumerator(
            _template(order_by=ColumnRef("emp", "hired")), tiny_catalog
        )
        plan, __ = ordered.optimize(np.array([[0.05, 0.5]]))
        assert isinstance(plan.root, Sort)

    def test_order_by_rendered_in_sql(self):
        template = _template(order_by=ColumnRef("emp", "hired"))
        assert template.sql().endswith("ORDER BY emp.hired")

    def test_order_by_foreign_table_rejected(self):
        with pytest.raises(ConfigurationError):
            _template(order_by=ColumnRef("zzz", "a"))
