"""Sanctioned wall-clock access points.

Everything time-driven in the pipeline — retry backoff, breaker
recovery windows, injected fault latency — takes an injectable
``clock`` (``() -> float`` seconds, monotonic) and ``sleep``
(``(float) -> None``), so tests and fault storms substitute a
:class:`~repro.resilience.faults.VirtualClock` and run simulated hours
in microseconds.  The *defaults* for those hooks live here, and only
here: the invariant linter (rule RPR002) bans ``time.time`` /
``time.monotonic`` / ``time.sleep`` everywhere outside
``repro.resilience`` and ``repro.simulation``, which keeps "forgot to
thread the clock" a lint failure instead of a flaky storm test.

(``time.perf_counter`` stays allowed globally: latency *measurement*
for metrics never drives control flow, so determinism is unaffected.)
"""

from __future__ import annotations

import time
from collections.abc import Callable

#: Monotonic seconds — the default for every injectable ``clock``.
system_clock: "Callable[[], float]" = time.monotonic

#: Really wait — the default for every injectable ``sleep``.
system_sleep: "Callable[[float], None]" = time.sleep

__all__ = ["system_clock", "system_sleep"]
