"""Spans opened through the tracer's context manager."""


def annotate(trace, predictor, x):
    with trace.span("predict") as span:
        prediction = predictor.predict(x)
        if trace.active:
            span.set(plan=None if prediction is None else prediction.plan_id)
    return prediction
