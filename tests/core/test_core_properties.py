"""Property-based tests on core invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.confidence import ConfidenceModel, confidence_from_ratio
from repro.core.point import SamplePool
from repro.core.baseline import BaselinePredictor
from repro.optimizer.parameters import ParameterMapping

ratios = st.floats(min_value=1.0, max_value=1e6, allow_nan=False)
counts = st.lists(
    st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
    min_size=1,
    max_size=8,
)


class TestConfidenceProperties:
    @given(ratio=ratios)
    @settings(max_examples=80, deadline=None)
    def test_confidence_in_unit_interval(self, ratio):
        value = confidence_from_ratio(ratio)
        assert 0.0 <= value <= 1.0

    @given(a=ratios, b=ratios)
    @settings(max_examples=80, deadline=None)
    def test_confidence_monotone(self, a, b):
        lo, hi = min(a, b), max(a, b)
        assert confidence_from_ratio(lo) <= confidence_from_ratio(hi) + 1e-12

    @given(count_list=counts, threshold=st.floats(0.0, 1.0))
    @settings(max_examples=80, deadline=None)
    def test_decide_consistent_with_confidence(self, count_list, threshold):
        model = ConfidenceModel()
        plan, confidence = model.decide(count_list, threshold)
        if plan is not None:
            # The returned plan is a strict argmax and passed the gate.
            assert count_list[plan] == max(count_list)
            assert confidence > threshold

    @given(count_list=counts)
    @settings(max_examples=80, deadline=None)
    def test_scaling_counts_preserves_mixed_confidence(self, count_list):
        """The chord model depends only on the count *ratio*: scaling a
        mixed neighborhood cannot change the confidence."""
        model = ConfidenceModel()
        arr = np.array(count_list)
        if arr.max() <= 0 or (arr > 0).sum() < 2:
            return
        # A minority mass below float resolution (sum - max == 0) is a
        # *pure* neighborhood to the model, and pure confidence is
        # count-dependent by design — only the chord path is scale-free.
        if arr.sum() - arr.max() <= 0.0 or (
            (arr * 7.0).sum() - (arr * 7.0).max() <= 0.0
        ):
            return
        __, confidence = model.decide(arr, threshold=2.0)
        __, scaled = model.decide(arr * 7.0, threshold=2.0)
        assert scaled == pytest.approx(confidence, abs=1e-9)


class TestParameterMappingProperties:
    @given(
        lo=st.floats(1e-5, 0.5),
        span=st.floats(1.1, 100.0),
        x=st.floats(0.0, 1.0),
        scale=st.sampled_from(["log", "linear"]),
    )
    @settings(max_examples=80, deadline=None)
    def test_selectivity_within_range(self, lo, span, x, scale):
        hi = min(1.0, lo * span)
        mapping = ParameterMapping([(lo, hi)], [scale])
        sel = mapping.to_selectivity(np.array([[x]]))[0, 0]
        assert lo - 1e-12 <= sel <= hi + 1e-12

    @given(
        lo=st.floats(1e-5, 0.5),
        span=st.floats(1.1, 100.0),
        x=st.floats(0.0, 1.0),
        scale=st.sampled_from(["log", "linear"]),
    )
    @settings(max_examples=80, deadline=None)
    def test_round_trip(self, lo, span, x, scale):
        hi = min(1.0, lo * span)
        mapping = ParameterMapping([(lo, hi)], [scale])
        sel = mapping.to_selectivity(np.array([[x]]))
        back = mapping.to_normalized(sel)[0, 0]
        assert back == pytest.approx(x, abs=1e-6)


class TestBaselineProperties:
    @given(
        seed=st.integers(0, 1000),
        radius=st.floats(0.02, 0.5),
        gamma=st.floats(0.0, 0.99),
    )
    @settings(max_examples=30, deadline=None)
    def test_answers_never_contradict_majority(self, seed, radius, gamma):
        rng = np.random.default_rng(seed)
        coords = rng.uniform(0, 1, (60, 2))
        labels = (coords[:, 0] > 0.5).astype(int)
        pool = SamplePool.from_arrays(coords, labels)
        predictor = BaselinePredictor(
            pool, radius=radius, confidence_threshold=gamma
        )
        x = rng.uniform(0, 1, 2)
        prediction = predictor.predict(x)
        if prediction is not None:
            neighborhood = predictor.neighborhood_counts(x)
            assert neighborhood[prediction.plan_id] == neighborhood.max()

    @given(seed=st.integers(0, 1000), gamma=st.floats(0.0, 0.95))
    @settings(max_examples=30, deadline=None)
    def test_higher_threshold_never_answers_more(self, seed, gamma):
        rng = np.random.default_rng(seed)
        coords = rng.uniform(0, 1, (80, 2))
        labels = (coords[:, 0] * 3).astype(int)
        pool = SamplePool.from_arrays(coords, labels)
        lenient = BaselinePredictor(pool, 0.2, gamma)
        strict = BaselinePredictor(pool, 0.2, min(0.99, gamma + 0.04))
        test = rng.uniform(0, 1, (30, 2))
        lenient_answers = sum(
            1 for i in range(30) if lenient.predict(test[i]) is not None
        )
        strict_answers = sum(
            1 for i in range(30) if strict.predict(test[i]) is not None
        )
        assert strict_answers <= lenient_answers
