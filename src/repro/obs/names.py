"""Canonical metric names exported by the PPC pipeline.

One place to look up what the instrumented pipeline emits; README's
"Observability" section documents the same inventory for adopters.
Label conventions: ``template`` is the query-template name; ``stage``
is one of :data:`STAGES`; ``reason`` is one of
:data:`INVOCATION_REASONS`; ``event`` is one of :data:`CACHE_EVENTS`;
``outcome`` is ``accepted``/``rejected``; ``action`` is
``shrink``/``drop``; ``component`` is one of
:data:`DEGRADED_COMPONENTS`; ``source`` is one of
:data:`FALLBACK_SOURCES`; ``state`` is a circuit-breaker state.
"""

from __future__ import annotations

from typing import NamedTuple

#: Per-stage wall-clock of :meth:`TemplateSession.execute`
#: (labels: template, stage) — latency histogram, seconds.
STAGE_SECONDS = "ppc_stage_seconds"

#: Query instances executed (labels: template) — counter.
EXECUTIONS_TOTAL = "ppc_executions_total"

#: Optimizer invocations by cause (labels: template, reason) — counter.
INVOCATIONS_TOTAL = "ppc_optimizer_invocations_total"

#: Positive-feedback offers (labels: template, outcome) — counter.
POSITIVE_FEEDBACK_TOTAL = "ppc_positive_feedback_total"

#: Drift responses fired (labels: template) — counter.
DRIFT_EVENTS_TOTAL = "ppc_drift_events_total"

#: Plan-cache activity (labels: template, event) — counter.
CACHE_EVENTS_TOTAL = "ppc_cache_events_total"

#: Synopsis bytes reclaimed by the memory governor — counter.
GOVERNOR_RECLAIMED_BYTES = "ppc_governor_reclaimed_bytes_total"

#: Governor reclamation steps (labels: template, action) — counter.
GOVERNOR_ACTIONS_TOTAL = "ppc_governor_actions_total"

#: Time spent in the LSH transform + z-order pipeline per scalar
#: predict (labels: template) — latency histogram, seconds.
PREDICT_TRANSFORM_SECONDS = "ppc_predict_transform_seconds"

#: Time spent answering histogram range queries per scalar predict
#: (labels: template) — latency histogram, seconds.
PREDICT_RANGE_QUERY_SECONDS = "ppc_predict_range_query_seconds"

#: Current synopsis footprint (labels: template) — gauge, bytes.
SYNOPSIS_BYTES = "ppc_synopsis_bytes"

#: Plans currently resident in the plan cache (labels: template) — gauge.
CACHE_PLANS = "ppc_cache_plans"

#: Optimizer circuit-breaker state (labels: template) — gauge;
#: 0 = closed, 1 = half-open, 2 = open.
BREAKER_STATE = "ppc_breaker_state"

#: Breaker state transitions (labels: template, state) — counter.
BREAKER_TRANSITIONS_TOTAL = "ppc_breaker_transitions_total"

#: Component failures absorbed by the guarded decision flow
#: (labels: template, component) — counter.
DEGRADED_TOTAL = "ppc_degraded_total"

#: Instances answered from the fallback chain because the optimizer
#: was unavailable (labels: template, source) — counter.
FALLBACK_SERVED_TOTAL = "ppc_fallback_served_total"

#: Suboptimality ratio (executed cost / optimal cost) of instances
#: served from the fallback chain (labels: template) — histogram,
#: dimensionless (>= 1).
FALLBACK_SUBOPTIMALITY = "ppc_fallback_suboptimality"

#: Query instances rejected before entering the decision flow
#: (labels: template, reason) — counter.
REJECTED_INSTANCES_TOTAL = "ppc_rejected_instances_total"

#: Optimizer invocation retries performed by the backoff loop
#: (labels: template) — counter.
OPTIMIZER_RETRIES_TOTAL = "ppc_optimizer_retries_total"

#: Spans closed inside recorded decision traces (labels: template)
#: — counter.
TRACE_SPANS_TOTAL = "ppc_trace_spans_total"

#: Decision traces admitted to the flight recorder (labels: template)
#: — counter.
TRACE_RECORDED_TOTAL = "ppc_trace_recorded_total"

#: Decision traces evicted from the flight recorder to admit newer
#: ones (labels: template) — counter.
TRACE_DROPPED_TOTAL = "ppc_trace_dropped_total"

#: Trace-sampler verdicts, one per execution (labels: template,
#: decision) — counter; ``decision`` is one of
#: :data:`SAMPLER_DECISIONS`.
TRACE_SAMPLER_TOTAL = "ppc_trace_sampler_total"

#: Decision traces currently held by the flight recorder
#: (labels: template) — gauge.
TRACE_OCCUPANCY = "ppc_trace_occupancy"

#: Accumulated regret (``suboptimality - 1``) of executed instances
#: (labels: template) — counter; divided by ``ppc_executions_total``
#: over a window this is the mean regret the SLO engine budgets.
REGRET_TOTAL = "ppc_regret_total"

#: Telemetry snapshots taken by the time-series sampler — counter.
TELEMETRY_SAMPLES_TOTAL = "ppc_telemetry_samples_total"

#: Wall-clock cost of one telemetry snapshot (metric scan + ring
#: append) — latency histogram, seconds.
TELEMETRY_SAMPLE_SECONDS = "ppc_telemetry_sample_seconds"

#: Scorecard: fraction of z-axis probe cells holding density mass,
#: averaged over the LSH transforms (labels: template) — gauge in
#: [0, 1]; the synopsis-coverage proxy for sample-point harvesting.
QUALITY_COVERAGE = "ppc_quality_coverage"

#: Scorecard: mass-weighted purity (majority-plan share) of occupied
#: z-cells (labels: template) — gauge in [0, 1].
QUALITY_PURITY = "ppc_quality_purity"

#: Scorecard: mass-weighted normalized plan entropy of occupied
#: z-cells (labels: template) — gauge in [0, 1]; 0 = every cell pure.
QUALITY_ENTROPY = "ppc_quality_entropy"

#: Scorecard: rolling ground-truth prediction accuracy over the
#: quality window (labels: template) — gauge in [0, 1].
QUALITY_ACCURACY = "ppc_quality_rolling_accuracy"

#: Scorecard: rolling mean regret (``suboptimality - 1``) over the
#: quality window (labels: template) — gauge, >= 0.
QUALITY_REGRET = "ppc_quality_rolling_regret"

#: Scorecard: mean confidence margin (``confidence - gamma``) of
#: answered predictions in the quality window (labels: template) —
#: gauge; negative means answers are scraping the threshold.
QUALITY_CONFIDENCE_MARGIN = "ppc_quality_confidence_margin"

#: Scorecard: how close the Section IV-E estimators sit to the drift
#: alarm (labels: template) — gauge in [0, 1]; 1 = alarm firing.
QUALITY_DRIFT_PRESSURE = "ppc_quality_drift_pressure"

#: SLO evaluation state (labels: template, slo) — gauge;
#: 0 = ok, 1 = warning, 2 = breach.
SLO_STATE = "ppc_slo_state"

#: SLO burn rate per evaluation window (labels: template, slo,
#: window = short/long) — gauge; 1.0 burns the whole error budget
#: exactly at the objective.
SLO_BURN_RATE = "ppc_slo_burn_rate"

#: Build identity of the serving process (labels: version, commit) —
#: gauge, always 1; join on it to know exactly what code produced any
#: other series.
BUILD_INFO = "ppc_build_info"

#: Synopsis lifecycle events appended to the event journal (labels:
#: template, kind) — counter; one increment per emitted event.
EVENTS_EMITTED_TOTAL = "ppc_events_emitted_total"

#: Lifecycle events rotated out of the bounded journal ring — counter;
#: a non-zero value means the timeline is truncated at the front.
EVENTS_DROPPED_TOTAL = "ppc_events_dropped_total"

#: Lifecycle events currently resident in the journal ring — gauge.
EVENTS_OCCUPANCY = "ppc_events_occupancy"

#: Lineage provenance queries answered (labels: query = why/timeline/
#: export) — counter.
LINEAGE_QUERIES_TOTAL = "ppc_lineage_queries_total"

#: The decision-flow stages timed inside ``TemplateSession.execute``.
STAGES = ("predict", "optimize", "execute", "feedback")

#: Why the optimizer was invoked (Figure 1 decision flow).
INVOCATION_REASONS = (
    "null_prediction",
    "exploration",
    "cache_miss",
    "negative_feedback",
)

#: Plan-cache event labels.
CACHE_EVENTS = ("hit", "miss", "eviction")

#: Guarded components of the decision flow (``component`` label of
#: :data:`DEGRADED_TOTAL`).
DEGRADED_COMPONENTS = ("predictor", "predictor_insert", "optimizer")

#: Fallback-chain sources, in preference order (``source`` label of
#: :data:`FALLBACK_SERVED_TOTAL`).
FALLBACK_SOURCES = ("prediction", "last_plan", "cache")

#: Up-front validation failures (``reason`` label of
#: :data:`REJECTED_INSTANCES_TOTAL`).
REJECTION_REASONS = ("bad_shape", "non_finite", "out_of_domain")

#: Trace-sampler verdicts (``decision`` label of
#: :data:`TRACE_SAMPLER_TOTAL`), in evaluation order.
SAMPLER_DECISIONS = ("forced", "head", "error_bias", "interval", "skipped")

#: Synopsis lifecycle event types (``kind`` label of
#: :data:`EVENTS_EMITTED_TOTAL`); see :mod:`repro.obs.events`.
EVENT_KINDS = (
    "point_inserted",
    "histogram_built",
    "histogram_rebuilt",
    "noise_pruned",
    "cache_evicted",
    "drift_drop",
    "breaker_transition",
    "fallback_served",
)


class MetricSpec(NamedTuple):
    """One entry of the exporter-facing metric inventory."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    help: str


#: Every metric the pipeline emits, with its exposition-format kind and
#: one-line help text.  The Prometheus renderer sources its ``# HELP``
#: lines here; :func:`help_text` and the names test keep this inventory
#: in lockstep with the module-level constants above.
INVENTORY: "tuple[MetricSpec, ...]" = (
    MetricSpec(
        BUILD_INFO,
        "gauge",
        "Build identity of the serving process (version/commit labels)",
    ),
    MetricSpec(
        STAGE_SECONDS,
        "histogram",
        "Per-stage wall-clock seconds of TemplateSession.execute",
    ),
    MetricSpec(
        EXECUTIONS_TOTAL, "counter", "Query instances executed per template"
    ),
    MetricSpec(
        INVOCATIONS_TOTAL, "counter", "Optimizer invocations by cause"
    ),
    MetricSpec(
        POSITIVE_FEEDBACK_TOTAL,
        "counter",
        "Positive-feedback offers by outcome",
    ),
    MetricSpec(
        DRIFT_EVENTS_TOTAL, "counter", "Drift responses fired per template"
    ),
    MetricSpec(CACHE_EVENTS_TOTAL, "counter", "Plan-cache activity by event"),
    MetricSpec(
        GOVERNOR_RECLAIMED_BYTES,
        "counter",
        "Synopsis bytes reclaimed by the memory governor",
    ),
    MetricSpec(
        GOVERNOR_ACTIONS_TOTAL,
        "counter",
        "Governor reclamation steps by action",
    ),
    MetricSpec(
        PREDICT_TRANSFORM_SECONDS,
        "histogram",
        "Seconds in the LSH transform and z-order pipeline per predict",
    ),
    MetricSpec(
        PREDICT_RANGE_QUERY_SECONDS,
        "histogram",
        "Seconds answering histogram range queries per predict",
    ),
    MetricSpec(
        SYNOPSIS_BYTES, "gauge", "Current synopsis footprint in bytes"
    ),
    MetricSpec(
        CACHE_PLANS, "gauge", "Plans currently resident in the plan cache"
    ),
    MetricSpec(
        BREAKER_STATE,
        "gauge",
        "Optimizer circuit-breaker state (0 closed, 1 half-open, 2 open)",
    ),
    MetricSpec(
        BREAKER_TRANSITIONS_TOTAL,
        "counter",
        "Circuit-breaker state transitions",
    ),
    MetricSpec(
        DEGRADED_TOTAL,
        "counter",
        "Component failures absorbed by the guarded decision flow",
    ),
    MetricSpec(
        FALLBACK_SERVED_TOTAL,
        "counter",
        "Instances answered from the fallback chain by source",
    ),
    MetricSpec(
        FALLBACK_SUBOPTIMALITY,
        "histogram",
        "Suboptimality ratio of instances served from the fallback chain",
    ),
    MetricSpec(
        REJECTED_INSTANCES_TOTAL,
        "counter",
        "Instances rejected before entering the decision flow",
    ),
    MetricSpec(
        OPTIMIZER_RETRIES_TOTAL,
        "counter",
        "Optimizer invocation retries performed by the backoff loop",
    ),
    MetricSpec(
        TRACE_SPANS_TOTAL,
        "counter",
        "Spans closed inside recorded decision traces",
    ),
    MetricSpec(
        TRACE_RECORDED_TOTAL,
        "counter",
        "Decision traces admitted to the flight recorder",
    ),
    MetricSpec(
        TRACE_DROPPED_TOTAL,
        "counter",
        "Decision traces evicted from the flight recorder",
    ),
    MetricSpec(
        TRACE_SAMPLER_TOTAL,
        "counter",
        "Trace-sampler verdicts, one per execution",
    ),
    MetricSpec(
        TRACE_OCCUPANCY,
        "gauge",
        "Decision traces currently held by the flight recorder",
    ),
    MetricSpec(
        REGRET_TOTAL,
        "counter",
        "Accumulated regret (suboptimality - 1) of executed instances",
    ),
    MetricSpec(
        TELEMETRY_SAMPLES_TOTAL,
        "counter",
        "Telemetry snapshots taken by the time-series sampler",
    ),
    MetricSpec(
        TELEMETRY_SAMPLE_SECONDS,
        "histogram",
        "Seconds spent taking one telemetry snapshot",
    ),
    MetricSpec(
        QUALITY_COVERAGE,
        "gauge",
        "Scorecard: fraction of z-axis probe cells holding density mass",
    ),
    MetricSpec(
        QUALITY_PURITY,
        "gauge",
        "Scorecard: mass-weighted majority-plan purity of occupied cells",
    ),
    MetricSpec(
        QUALITY_ENTROPY,
        "gauge",
        "Scorecard: mass-weighted normalized plan entropy of occupied cells",
    ),
    MetricSpec(
        QUALITY_ACCURACY,
        "gauge",
        "Scorecard: rolling prediction accuracy over the quality window",
    ),
    MetricSpec(
        QUALITY_REGRET,
        "gauge",
        "Scorecard: rolling mean regret over the quality window",
    ),
    MetricSpec(
        QUALITY_CONFIDENCE_MARGIN,
        "gauge",
        "Scorecard: mean confidence margin (confidence - gamma) of answers",
    ),
    MetricSpec(
        QUALITY_DRIFT_PRESSURE,
        "gauge",
        "Scorecard: proximity of the monitor estimators to the drift alarm",
    ),
    MetricSpec(
        SLO_STATE,
        "gauge",
        "SLO evaluation state (0 ok, 1 warning, 2 breach)",
    ),
    MetricSpec(
        SLO_BURN_RATE,
        "gauge",
        "SLO burn rate per evaluation window (1.0 = at objective)",
    ),
    MetricSpec(
        EVENTS_EMITTED_TOTAL,
        "counter",
        "Synopsis lifecycle events appended to the event journal",
    ),
    MetricSpec(
        EVENTS_DROPPED_TOTAL,
        "counter",
        "Lifecycle events rotated out of the bounded journal ring",
    ),
    MetricSpec(
        EVENTS_OCCUPANCY,
        "gauge",
        "Lifecycle events currently resident in the journal ring",
    ),
    MetricSpec(
        LINEAGE_QUERIES_TOTAL,
        "counter",
        "Lineage provenance queries answered by kind",
    ),
)

#: ``name -> help`` view of :data:`INVENTORY` for the exporter.
HELP_TEXT: "dict[str, str]" = {spec.name: spec.help for spec in INVENTORY}

#: ``name -> kind`` view of :data:`INVENTORY`.
METRIC_KINDS: "dict[str, str]" = {spec.name: spec.kind for spec in INVENTORY}


def help_text(name: str) -> str:
    """Return the inventory help line for *name* (empty if unknown)."""

    return HELP_TEXT.get(name, "")
