"""Meta-test: the repository's own source passes its own linter.

This is the same gate CI runs (``python -m repro.analysis src``); having
it in the suite means a violation fails locally before it fails CI.
"""

import pathlib

from repro.analysis import (
    apply_baseline,
    lint_paths,
    load_baseline,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def test_repo_src_lints_clean():
    findings, errors = lint_paths([REPO_ROOT / "src"])
    assert errors == []
    baseline = load_baseline(REPO_ROOT / ".repro-lint-baseline.json")
    fresh, _accepted, stale = apply_baseline(findings, baseline)
    assert fresh == [], "\n".join(
        f"{f.path}:{f.line} {f.rule} {f.message}" for f in fresh
    )
    assert stale == [], "stale baseline entries: burn-down complete, delete them"
