"""Foundational modules: geometry, rng, config, exceptions."""

import dataclasses
import math

import numpy as np
import pytest

from repro import PPCConfig
from repro.exceptions import (
    CatalogError,
    ConfigurationError,
    HistogramError,
    OptimizationError,
    PredictionError,
    ReproError,
    WorkloadError,
)
from repro.geometry import ball_volume, equivalent_radius, unit_ball_volume
from repro.rng import as_generator, spawn


class TestGeometry:
    def test_unit_ball_volumes_match_closed_forms(self):
        assert unit_ball_volume(1) == pytest.approx(2.0)
        assert unit_ball_volume(2) == pytest.approx(math.pi)
        assert unit_ball_volume(3) == pytest.approx(4.0 / 3.0 * math.pi)

    def test_ball_volume_scaling(self):
        assert ball_volume(2.0, 2) == pytest.approx(4.0 * math.pi)
        assert ball_volume(0.0, 3) == 0.0

    def test_equivalent_radius_identity_in_reference_dims(self):
        assert equivalent_radius(0.05, 2) == pytest.approx(0.05)

    def test_equivalent_radius_preserves_volume(self):
        for dims in (3, 4, 6):
            radius = equivalent_radius(0.05, dims)
            assert ball_volume(radius, dims) == pytest.approx(
                ball_volume(0.05, 2)
            )

    def test_equivalent_radius_grows_with_dims(self):
        radii = [equivalent_radius(0.05, d) for d in range(2, 7)]
        assert radii == sorted(radii)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            unit_ball_volume(0)
        with pytest.raises(ConfigurationError):
            ball_volume(-1.0, 2)
        with pytest.raises(ConfigurationError):
            equivalent_radius(0.0, 3)


class TestRng:
    def test_int_seed_deterministic(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        assert (a == b).all()

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert as_generator(generator) is generator

    def test_none_gives_fresh_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_spawn_independence(self):
        children = spawn(as_generator(7), 3)
        draws = [child.random(4).tolist() for child in children]
        assert draws[0] != draws[1] != draws[2]

    def test_spawn_reproducible(self):
        first = [g.random(3).tolist() for g in spawn(as_generator(7), 2)]
        second = [g.random(3).tolist() for g in spawn(as_generator(7), 2)]
        assert first == second


class TestConfig:
    def test_defaults_valid(self):
        config = PPCConfig()
        assert config.transforms == 5
        assert config.max_buckets == 40
        assert config.confidence_threshold == 0.8

    @pytest.mark.parametrize(
        "overrides",
        [
            {"transforms": 0},
            {"max_buckets": 0},
            {"radius": 0.0},
            {"confidence_threshold": 1.5},
            {"mean_invocation_probability": -0.1},
            {"cache_capacity": 0},
        ],
    )
    def test_invalid_values_rejected(self, overrides):
        with pytest.raises(ConfigurationError):
            PPCConfig(**overrides)

    def test_frozen(self):
        config = PPCConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.transforms = 7


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exception",
        [
            ConfigurationError,
            CatalogError,
            OptimizationError,
            HistogramError,
            WorkloadError,
            PredictionError,
        ],
    )
    def test_all_derive_from_repro_error(self, exception):
        assert issubclass(exception, ReproError)
        with pytest.raises(ReproError):
            raise exception("boom")
