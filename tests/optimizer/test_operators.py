"""Physical operators: cardinality and cost formulas."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.optimizer.cost_model import CostModel
from repro.optimizer.operators import (
    HashJoin,
    IndexNLJoin,
    IndexScan,
    MergeJoin,
    NestedLoopJoin,
    SeqScan,
    Sort,
)

MODEL = CostModel()


def _points(*rows):
    return np.array(rows, dtype=float)


@pytest.fixture()
def scan_a():
    return SeqScan("a", base_rows=10_000, pages=100, param_indexes=(0,), model=MODEL)


@pytest.fixture()
def scan_b():
    return SeqScan("b", base_rows=1_000, pages=10, param_indexes=(1,), model=MODEL)


class TestSeqScan:
    def test_cardinality_scales_with_selectivity(self, scan_a):
        rows, __ = scan_a.evaluate(_points([0.5, 1.0], [0.1, 1.0]))
        assert rows.tolist() == [5_000.0, 1_000.0]

    def test_cost_independent_of_selectivity(self, scan_a):
        __, cost = scan_a.evaluate(_points([0.5, 1.0], [0.01, 1.0]))
        assert cost[0] == cost[1]
        expected = 100 * MODEL.seq_page_cost + 10_000 * MODEL.cpu_tuple_cost
        assert cost[0] == pytest.approx(expected)

    def test_multiple_local_predicates_multiply(self):
        scan = SeqScan("a", 1000, 10, (0, 1), MODEL)
        rows, __ = scan.evaluate(_points([0.5, 0.5]))
        assert rows[0] == pytest.approx(250.0)

    def test_no_predicates(self):
        scan = SeqScan("a", 1000, 10, (), MODEL)
        rows, __ = scan.evaluate(_points([0.5, 0.5]))
        assert rows[0] == 1000.0


class TestIndexScan:
    def _scan(self, clustered):
        return IndexScan(
            "a", "ix", sarg_param=0, base_rows=10_000, pages=160,
            residual_params=(1,), clustered=clustered, model=MODEL,
        )

    def test_rows_include_residual_filters(self):
        rows, __ = self._scan(False).evaluate(_points([0.1, 0.5]))
        assert rows[0] == pytest.approx(10_000 * 0.1 * 0.5)

    def test_cost_monotone_in_sargable_selectivity(self):
        scan = self._scan(False)
        __, costs = scan.evaluate(_points([0.01, 1.0], [0.5, 1.0], [0.99, 1.0]))
        assert costs[0] < costs[1] < costs[2]

    def test_unclustered_io_saturates_at_table_pages(self):
        scan = self._scan(False)
        __, cost_full = scan.evaluate(_points([1.0, 1.0]))
        ceiling = (
            MODEL.index_probe_cost
            + 160 * MODEL.random_page_cost
            + 10_000 * MODEL.cpu_tuple_cost
        )
        assert cost_full[0] <= ceiling + 1e-9

    def test_clustered_cheaper_than_unclustered_midrange(self):
        point = _points([0.5, 1.0])
        __, clustered = self._scan(True).evaluate(point)
        __, unclustered = self._scan(False).evaluate(point)
        assert clustered[0] < unclustered[0]

    def test_beats_seqscan_only_at_low_selectivity(self, scan_a):
        index = IndexScan(
            "a", "ix", 0, 10_000, 160, (), clustered=False, model=MODEL
        )
        low = _points([0.001, 1.0])
        high = _points([0.9, 1.0])
        assert index.evaluate(low)[1][0] < scan_a.evaluate(low)[1][0]
        assert index.evaluate(high)[1][0] > scan_a.evaluate(high)[1][0]

    def test_sarg_cannot_repeat_as_residual(self):
        with pytest.raises(ConfigurationError):
            IndexScan("a", "ix", 0, 100, 10, (0,), False, MODEL)


class TestSort:
    def test_preserves_rows_adds_cost(self, scan_a):
        sort = Sort(scan_a, "a.x", MODEL)
        point = _points([0.5, 1.0])
        rows_scan, cost_scan = scan_a.evaluate(point)
        rows_sort, cost_sort = sort.evaluate(point)
        assert rows_sort[0] == rows_scan[0]
        assert cost_sort[0] > cost_scan[0]

    def test_sets_sort_order(self, scan_a):
        assert Sort(scan_a, "a.x", MODEL).sort_order == "a.x"


class TestJoins:
    def test_output_cardinality(self, scan_a, scan_b):
        join = HashJoin(scan_a, scan_b, join_selectivity=0.001, model=MODEL)
        rows, __ = join.evaluate(_points([0.5, 0.5]))
        assert rows[0] == pytest.approx(5_000 * 500 * 0.001)

    def test_overlapping_sides_rejected(self, scan_a):
        other = SeqScan("a", 10, 1, (), MODEL)
        with pytest.raises(ConfigurationError):
            HashJoin(scan_a, other, 0.5, MODEL)

    def test_invalid_selectivity_rejected(self, scan_a, scan_b):
        with pytest.raises(ConfigurationError):
            HashJoin(scan_a, scan_b, 0.0, MODEL)
        with pytest.raises(ConfigurationError):
            HashJoin(scan_a, scan_b, 1.5, MODEL)

    def test_hash_spill_penalty(self, scan_b):
        big = SeqScan("big", 10_000_000, 100_000, (0,), MODEL)
        join = HashJoin(scan_b, big, 1e-6, MODEL)
        # Build side below memory at low selectivity, above at high.
        sel_small = MODEL.hash_memory_rows / 10_000_000 * 0.5
        sel_large = MODEL.hash_memory_rows / 10_000_000 * 2.0
        __, cost_small = join.evaluate(_points([sel_small, 1.0]))
        __, cost_large = join.evaluate(_points([sel_large, 1.0]))
        build_ratio = sel_large / sel_small
        # Spill adds more than the linear growth of the build input.
        assert cost_large[0] > cost_small[0] * 1.01
        assert cost_large[0] - cost_small[0] > 0

    def test_nested_loop_quadratic_term(self, scan_a, scan_b):
        join = NestedLoopJoin(scan_a, scan_b, 0.001, MODEL)
        __, c1 = join.evaluate(_points([0.1, 0.1]))
        __, c2 = join.evaluate(_points([0.2, 0.2]))
        compare_1 = 10_000 * 0.1 * 1_000 * 0.1 * MODEL.cpu_compare_cost
        compare_4 = 10_000 * 0.2 * 1_000 * 0.2 * MODEL.cpu_compare_cost
        assert (c2[0] - c1[0]) >= (compare_4 - compare_1) * 0.9

    def test_index_nl_join_cost_scales_with_outer(self, scan_b):
        join = IndexNLJoin(
            outer=scan_b,
            inner_table="a",
            inner_index="pk_a",
            inner_base_rows=10_000,
            inner_param_indexes=(0,),
            join_selectivity=1.0 / 10_000,
            model=MODEL,
        )
        __, c_small = join.evaluate(_points([1.0, 0.1]))
        __, c_big = join.evaluate(_points([1.0, 1.0]))
        assert c_big[0] > c_small[0]

    def test_index_nl_join_output_rows(self, scan_b):
        join = IndexNLJoin(
            outer=scan_b,
            inner_table="a",
            inner_index="pk_a",
            inner_base_rows=10_000,
            inner_param_indexes=(0,),
            join_selectivity=1.0 / 10_000,
            model=MODEL,
        )
        rows, __ = join.evaluate(_points([0.5, 0.2]))
        # outer 200 rows x 1 match per probe x residual 0.5.
        assert rows[0] == pytest.approx(200 * 1.0 * 0.5)

    def test_merge_join_sets_sort_order(self, scan_a, scan_b):
        join = MergeJoin(scan_a, scan_b, 0.001, MODEL, order="a.x")
        assert join.sort_order == "a.x"

    def test_merge_join_cost_linear_in_inputs(self, scan_a, scan_b):
        join = MergeJoin(scan_a, scan_b, 1e-6, MODEL, order="a.x")
        __, c1 = join.evaluate(_points([0.1, 0.1]))
        __, c2 = join.evaluate(_points([0.2, 0.2]))
        assert c2[0] > c1[0]


class TestFingerprints:
    def test_distinct_structures_distinct_fingerprints(self, scan_a, scan_b):
        hash_join = HashJoin(scan_a, scan_b, 0.001, MODEL)
        merge_join = MergeJoin(scan_a, scan_b, 0.001, MODEL, order="a.x")
        nl_join = NestedLoopJoin(scan_a, scan_b, 0.001, MODEL)
        prints = {
            hash_join.fingerprint(),
            merge_join.fingerprint(),
            nl_join.fingerprint(),
        }
        assert len(prints) == 3

    def test_swapped_sides_distinct(self, scan_a, scan_b):
        ab = HashJoin(scan_a, scan_b, 0.001, MODEL)
        ba = HashJoin(scan_b, scan_a, 0.001, MODEL)
        assert ab.fingerprint() != ba.fingerprint()
