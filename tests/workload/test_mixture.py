"""Multi-template mixture workloads."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, WorkloadError
from repro.workload import MixtureWorkload


@pytest.fixture()
def mixture():
    return MixtureWorkload(
        {"Q0": 2, "Q5": 4, "Q8": 3}, spread=0.02, zipf_exponent=1.0, seed=0
    )


class TestGeneration:
    def test_count_and_shapes(self, mixture):
        workload = mixture.generate(300)
        assert len(workload) == 300
        dims = {"Q0": 2, "Q5": 4, "Q8": 3}
        for name, point in workload:
            assert point.shape == (dims[name],)
            assert (point >= 0).all() and (point <= 1).all()

    def test_zipf_popularity_ordering(self, mixture):
        workload = mixture.generate(3000)
        counts = {"Q0": 0, "Q5": 0, "Q8": 0}
        for name, __ in workload:
            counts[name] += 1
        # Rank 1 beats rank 2 beats rank 3.
        assert counts["Q0"] > counts["Q5"] > counts["Q8"]
        assert counts["Q0"] / 3000 == pytest.approx(
            mixture.expected_share("Q0"), abs=0.05
        )

    def test_uniform_with_zero_exponent(self):
        mixture = MixtureWorkload(
            {"a": 2, "b": 2}, zipf_exponent=0.0, seed=1
        )
        workload = mixture.generate(2000)
        share_a = sum(1 for name, __ in workload if name == "a") / 2000
        assert share_a == pytest.approx(0.5, abs=0.05)

    def test_intra_template_locality_survives_interleaving(self, mixture):
        workload = mixture.generate(1000)
        points = [p for name, p in workload if name == "Q0"]
        steps = [
            np.linalg.norm(b - a) for a, b in zip(points, points[1:], strict=False)
        ]
        rng = np.random.default_rng(2)
        shuffled = [points[i] for i in rng.permutation(len(points))]
        random_steps = [
            np.linalg.norm(b - a) for a, b in zip(shuffled, shuffled[1:], strict=False)
        ]
        assert np.median(steps) < np.median(random_steps)

    def test_deterministic_under_seed(self):
        a = MixtureWorkload({"x": 2, "y": 2}, seed=7).generate(50)
        b = MixtureWorkload({"x": 2, "y": 2}, seed=7).generate(50)
        for (na, pa), (nb, pb) in zip(a, b, strict=True):
            assert na == nb
            assert (pa == pb).all()

    def test_invalid_inputs(self):
        with pytest.raises(WorkloadError):
            MixtureWorkload({})
        with pytest.raises(WorkloadError):
            MixtureWorkload({"a": 2}, zipf_exponent=-1.0)
        with pytest.raises(WorkloadError):
            MixtureWorkload({"a": 2}).generate(0)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_non_finite_zipf_exponent(self, bad):
        with pytest.raises(ConfigurationError, match="finite"):
            MixtureWorkload({"a": 2}, zipf_exponent=bad)

    def test_expected_share_unknown_template(self, mixture):
        with pytest.raises(ConfigurationError, match="unknown template"):
            mixture.expected_share("Q99")


class TestExplicitWeights:
    DIMS = {"a": 2, "b": 2, "c": 2}

    def test_weights_pin_popularity(self):
        mixture = MixtureWorkload(
            self.DIMS, seed=0, weights={"a": 30.0, "b": 1.0, "c": 1.0}
        )
        assert mixture.expected_share("a") == pytest.approx(30.0 / 32.0)
        assert mixture.expected_share("b") == pytest.approx(1.0 / 32.0)
        workload = mixture.generate(2000)
        share_a = sum(1 for name, __ in workload if name == "a") / 2000
        assert share_a == pytest.approx(30.0 / 32.0, abs=0.05)

    def test_integer_weights_are_accepted(self):
        mixture = MixtureWorkload(
            self.DIMS, seed=0, weights={"a": 2, "b": 1, "c": 1}
        )
        assert mixture.expected_share("a") == pytest.approx(0.5)

    def test_unknown_template_in_weights(self):
        with pytest.raises(ConfigurationError, match="unknown templates"):
            MixtureWorkload(
                self.DIMS,
                weights={"a": 1.0, "b": 1.0, "c": 1.0, "ghost": 1.0},
            )

    def test_weights_must_cover_every_template(self):
        with pytest.raises(ConfigurationError, match="missing"):
            MixtureWorkload(self.DIMS, weights={"a": 1.0, "b": 1.0})

    @pytest.mark.parametrize(
        "bad", [0.0, -1.0, float("nan"), float("inf"), -float("inf")]
    )
    def test_degenerate_weight_values(self, bad):
        with pytest.raises(ConfigurationError, match="positive finite"):
            MixtureWorkload(
                self.DIMS, weights={"a": bad, "b": 1.0, "c": 1.0}
            )

    @pytest.mark.parametrize("bad", [True, "3", None, [1.0]])
    def test_non_numeric_weight_values(self, bad):
        with pytest.raises(ConfigurationError, match="must be a number"):
            MixtureWorkload(
                self.DIMS, weights={"a": bad, "b": 1.0, "c": 1.0}
            )

    def test_weights_ignore_zipf_exponent(self):
        flat = MixtureWorkload(
            self.DIMS,
            zipf_exponent=3.0,
            seed=0,
            weights={"a": 1.0, "b": 1.0, "c": 1.0},
        )
        assert flat.expected_share("a") == pytest.approx(1.0 / 3.0)
        assert flat.expected_share("c") == pytest.approx(1.0 / 3.0)


class TestFrameworkIntegration:
    def test_budgeted_framework_over_mixture(self, q1_space, q5_space):
        """The governor keeps a mixed workload's footprint bounded while
        the popular template keeps its accuracy."""
        from repro import PPCConfig, PPCFramework

        framework = PPCFramework(
            PPCConfig(confidence_threshold=0.8, drift_response=False),
            seed=0,
            memory_budget_bytes=8_000,
            governor_interval=25,
        )
        framework.register(q1_space)
        framework.register(q5_space)
        mixture = MixtureWorkload(
            {"Q1": 2, "Q5": 4}, spread=0.02, zipf_exponent=2.0, seed=3
        )
        for name, point in mixture.generate(600):
            framework.execute(name, point)
        assert framework.space_bytes <= 8_000
        hot = framework.session("Q1")
        metrics = hot.ground_truth_metrics()
        assert metrics.precision > 0.9
        assert metrics.recall > 0.3
