"""Pytest configuration for the benchmark suite.

Ensures the benchmarks directory is importable so every bench can use
the shared helpers in ``_bench_utils``.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))
