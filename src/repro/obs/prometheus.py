"""Prometheus text-exposition rendering of a metrics registry.

Renders counters and gauges one sample per label set, and latency
histograms in the summary style (``quantile`` label plus ``_sum`` and
``_count`` series) so p50/p95/p99 are scrapable directly.  ``# HELP``
lines come from the :data:`repro.obs.names.INVENTORY` metric inventory.
Output follows the Prometheus text format version 0.0.4; no client
library is involved.
"""

from __future__ import annotations

import math

from repro.obs import names
from repro.obs.registry import MetricsRegistry

_QUANTILES = ((0.5, "p50"), (0.95, "p95"), (0.99, "p99"))


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(value: str) -> str:
    # HELP lines are unquoted: only backslash and newline need escaping.
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _format_labels(labels: dict, extra: "dict | None" = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{key}="{_escape(str(value))}"'
        for key, value in sorted(merged.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    # Exposition format spells non-finite floats `+Inf`/`-Inf`/`NaN`;
    # Python's repr() would emit `inf`/`nan`, which scrapers reject.
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _header(lines: "list[str]", name: str, kind: str) -> None:
    help_line = names.help_text(name)
    if help_line:
        lines.append(f"# HELP {name} {_escape_help(help_line)}")
    lines.append(f"# TYPE {name} {kind}")


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text exposition (one big string)."""
    snapshot = registry.snapshot()
    lines: list[str] = []

    for name in sorted(snapshot["counters"]):
        _header(lines, name, "counter")
        for sample in snapshot["counters"][name]:
            labels = _format_labels(sample["labels"])
            lines.append(f"{name}{labels} {_format_value(sample['value'])}")

    for name in sorted(snapshot["gauges"]):
        _header(lines, name, "gauge")
        for sample in snapshot["gauges"][name]:
            labels = _format_labels(sample["labels"])
            lines.append(f"{name}{labels} {_format_value(sample['value'])}")

    for name in sorted(snapshot["histograms"]):
        _header(lines, name, "summary")
        for sample in snapshot["histograms"][name]:
            for quantile, key in _QUANTILES:
                labels = _format_labels(
                    sample["labels"], {"quantile": quantile}
                )
                lines.append(
                    f"{name}{labels} {_format_value(sample[key])}"
                )
            labels = _format_labels(sample["labels"])
            lines.append(
                f"{name}_sum{labels} {_format_value(sample['sum'])}"
            )
            lines.append(f"{name}_count{labels} {sample['count']}")

    return "\n".join(lines) + "\n"
