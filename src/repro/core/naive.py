"""NAIVE: single fixed grid over the plan space (Section IV-B).

The plan space is partitioned once into a grid; each (plan, bucket)
pair stores a point count and an average cost, so prediction is O(1).
Density around a test point is approximated from the bucket containing
it — extended to the neighboring buckets when the query ball spills
past the bucket walls — which is exactly the misalignment weakness the
LSH ensemble fixes.
"""

from __future__ import annotations

import numpy as np

from repro.core.confidence import ConfidenceModel
from repro.core.point import SamplePool
from repro.core.predictor import PlanPredictor, Prediction
from repro.exceptions import PredictionError
from repro.lsh.grid import Grid


class NaivePredictor(PlanPredictor):
    """One grid, per-plan per-bucket counts and average costs."""

    def __init__(
        self,
        pool: SamplePool,
        plan_count: "int | None" = None,
        resolution: int = 8,
        radius: float = 0.05,
        confidence_threshold: float = 0.7,
        include_neighbors: bool = True,
        confidence_model: "ConfidenceModel | None" = None,
    ) -> None:
        if radius <= 0.0:
            raise PredictionError("radius must be > 0")
        self.dimensions = pool.dimensions
        self.radius = radius
        self.confidence_threshold = confidence_threshold
        self.include_neighbors = include_neighbors
        self.model = confidence_model or ConfidenceModel()
        self.grid = Grid(
            np.zeros(self.dimensions), np.ones(self.dimensions), resolution
        )
        if plan_count is None:
            if len(pool) == 0:
                raise PredictionError(
                    "NAIVE needs either samples or an explicit plan count"
                )
            plan_count = int(pool.plan_ids.max()) + 1
        self.plan_count = plan_count
        self._counts = np.zeros((plan_count, self.grid.total_cells))
        self._cost_sums = np.zeros_like(self._counts)
        if len(pool):
            self._insert_pool(pool)

    def _insert_pool(self, pool: SamplePool) -> None:
        cells = self.grid.cell_ids(pool.coords)
        for cell, plan, cost in zip(cells, pool.plan_ids, pool.costs, strict=True):
            self._counts[plan, cell] += 1.0
            self._cost_sums[plan, cell] += cost

    def insert(self, x: np.ndarray, plan_id: int, cost: float = 0.0) -> None:
        """Add one labeled point (NAIVE is trivially online-capable)."""
        x = self._check_point(x)
        cell = int(self.grid.cell_ids(x[None, :])[0])
        self._counts[plan_id, cell] += 1.0
        self._cost_sums[plan_id, cell] += cost

    def _query_cells(self, x: np.ndarray) -> list[int]:
        if self.include_neighbors:
            return list(self.grid.neighbor_ids(x, self.radius))
        return [int(self.grid.cell_ids(x[None, :])[0])]

    def counts_around(self, x: np.ndarray) -> np.ndarray:
        """Per-plan counts aggregated over the query's grid buckets."""
        x = self._check_point(x)
        cells = self._query_cells(x)
        return self._counts[:, cells].sum(axis=1)

    def predict(self, x: np.ndarray) -> "Prediction | None":
        x = self._check_point(x)
        cells = self._query_cells(x)
        counts = self._counts[:, cells].sum(axis=1)
        plan_id, confidence = self.model.decide(
            counts, self.confidence_threshold
        )
        if plan_id is None:
            return None
        cost_sum = float(self._cost_sums[plan_id, cells].sum())
        count = float(counts[plan_id])
        estimated_cost = cost_sum / count if count > 0 else None
        return Prediction(plan_id, confidence, estimated_cost)

    def space_bytes(self) -> int:
        """``n_plans * buckets * 8`` bytes (count + average cost)."""
        return self.plan_count * self.grid.total_cells * 8
