"""Deterministic fault injection for the plan-caching pipeline.

The resilience layer is only trustworthy if its failure paths are
exercised, and failure paths are only testable if failures happen *on
demand and reproducibly*.  :class:`FaultInjector` wraps the pipeline's
three external surfaces — the optimizer (``PlanSpace.label``), the
predictor (``predict``/``insert``), and persistence I/O — with
configurable, seedable fault distributions:

* **exceptions** — the call raises :class:`InjectedFault`;
* **timeouts** — the call raises :class:`InjectedTimeout` (a distinct
  class so handlers can treat deadline expiry separately);
* **slow calls** — the call succeeds after an injected latency (paid
  through the injector's ``sleep``, so a :class:`VirtualClock` makes
  storms run in microseconds);
* **torn writes** — a predictor snapshot is cut mid-byte-stream and
  left on disk, simulating a crash inside a non-atomic writer.

Each component draws from its own :class:`numpy.random.Generator`
stream, derived from the injector seed and a CRC of the component name,
so the fault sequence seen by one component never depends on how often
the others were called — two runs with the same seed and per-component
call counts inject identical faults.
"""

from __future__ import annotations

import pathlib
import zlib
from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.exceptions import ResilienceError
from repro.resilience.clocks import system_sleep

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.histogram_predictor import HistogramPredictor


class InjectedFault(ResilienceError):
    """A failure raised deliberately by a :class:`FaultInjector`."""


class InjectedTimeout(InjectedFault):
    """An injected fault presenting as a timeout / deadline expiry."""


#: Fault kinds an injector can produce (the ``kind`` key of
#: :attr:`FaultInjector.counts`).
FAULT_KINDS = ("exception", "timeout", "slow", "torn_write")


@dataclass(frozen=True)
class FaultSpec:
    """Failure distribution of one wrapped component.

    Probabilities are per call and drawn from one uniform roll, so
    ``failure + timeout + slow`` must not exceed 1.
    ``torn_write_probability`` applies only to persistence snapshots.
    """

    failure_probability: float = 0.0
    timeout_probability: float = 0.0
    slow_probability: float = 0.0
    latency: float = 0.05
    torn_write_probability: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "failure_probability",
            "timeout_probability",
            "slow_probability",
            "torn_write_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ResilienceError(f"{name} must lie in [0, 1]")
        total = (
            self.failure_probability
            + self.timeout_probability
            + self.slow_probability
        )
        if total > 1.0:
            raise ResilienceError(
                "failure + timeout + slow probabilities exceed 1"
            )
        if self.latency < 0.0:
            raise ResilienceError("latency must be >= 0")

    @property
    def inert(self) -> bool:
        return (
            self.failure_probability == 0.0
            and self.timeout_probability == 0.0
            and self.slow_probability == 0.0
            and self.torn_write_probability == 0.0
        )


class VirtualClock:
    """A manually advanced monotonic clock whose ``sleep`` is free.

    Injected into retry/backoff and circuit-breaker logic so fault
    storms (thousands of retries and breaker recoveries) run without
    real waiting, deterministically.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0.0:
            raise ResilienceError("clocks only move forward")
        self._now += seconds

    def sleep(self, seconds: float) -> None:
        self.advance(max(0.0, seconds))

    __call__ = now


class FaultInjector:
    """Seedable fault source for the pipeline's external surfaces.

    ``specs`` maps component names (conventionally ``"optimizer"``,
    ``"predictor"``, ``"predictor_insert"``, ``"persistence"``) to
    :class:`FaultSpec` distributions; unlisted components pass through
    untouched.  ``counts`` tallies every injected fault as
    ``(component, kind) -> int``.
    """

    def __init__(
        self,
        specs: "dict[str, FaultSpec] | None" = None,
        seed: int = 0,
        sleep: "Callable[[float], None] | None" = None,
    ) -> None:
        self.specs = dict(specs or {})
        self._seed = seed
        self._sleep = sleep if sleep is not None else system_sleep
        self._streams: dict[str, np.random.Generator] = {}
        self.counts: dict[tuple[str, str], int] = {}

    @classmethod
    def storm(
        cls,
        optimizer_failure: float = 0.2,
        predictor_failure: float = 0.05,
        torn_write: float = 0.5,
        seed: int = 0,
        sleep: "Callable[[float], None] | None" = None,
    ) -> "FaultInjector":
        """The acceptance-test mix: failing optimizer and predictor
        plus torn persistence writes."""
        return cls(
            {
                "optimizer": FaultSpec(failure_probability=optimizer_failure),
                "predictor": FaultSpec(failure_probability=predictor_failure),
                "predictor_insert": FaultSpec(
                    failure_probability=predictor_failure
                ),
                "persistence": FaultSpec(torn_write_probability=torn_write),
            },
            seed=seed,
            sleep=sleep,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _stream(self, component: str) -> np.random.Generator:
        """Per-component RNG, independent of other components' usage."""
        stream = self._streams.get(component)
        if stream is None:
            key = zlib.crc32(component.encode("utf-8"))
            stream = np.random.default_rng(
                np.random.SeedSequence(self._seed, spawn_key=(key,))
            )
            self._streams[component] = stream
        return stream

    def _record(self, component: str, kind: str) -> None:
        key = (component, kind)
        self.counts[key] = self.counts.get(key, 0) + 1

    # ------------------------------------------------------------------
    # Wrapping
    # ------------------------------------------------------------------
    def wrap(self, component: str, fn: Callable) -> Callable:
        """A guarded version of ``fn`` that injects this component's
        faults before delegating.  Inert specs return ``fn`` unwrapped
        (zero overhead when a component is healthy)."""
        spec = self.specs.get(component)
        if spec is None or spec.inert:
            return fn

        def guarded(*args, **kwargs):
            self._inject(component, spec)
            return fn(*args, **kwargs)

        guarded.__name__ = f"faulty_{component}"
        return guarded

    def _inject(self, component: str, spec: FaultSpec) -> None:
        """One fault roll: raise, sleep, or pass through."""
        roll = float(self._stream(component).random())
        if roll < spec.failure_probability:
            self._record(component, "exception")
            raise InjectedFault(f"injected {component} failure")
        roll -= spec.failure_probability
        if roll < spec.timeout_probability:
            self._record(component, "timeout")
            raise InjectedTimeout(f"injected {component} timeout")
        roll -= spec.timeout_probability
        if roll < spec.slow_probability:
            self._record(component, "slow")
            self._sleep(spec.latency)

    # ------------------------------------------------------------------
    # Persistence faults
    # ------------------------------------------------------------------
    def save_predictor(
        self,
        predictor: "HistogramPredictor",
        path: "str | pathlib.Path",
    ) -> pathlib.Path:
        """Snapshot ``predictor`` through the torn-write distribution.

        With probability ``torn_write_probability`` the serialized
        document is cut at a random byte and written *directly* to the
        target path — exactly the artifact a crash inside a non-atomic
        writer leaves behind — and :class:`InjectedFault` is raised.
        Otherwise the real (atomic) writer runs.
        """
        from repro.core.persistence import dumps_predictor, save_predictor

        path = pathlib.Path(path)
        spec = self.specs.get("persistence")
        if spec is not None and spec.torn_write_probability > 0.0:
            stream = self._stream("persistence")
            if float(stream.random()) < spec.torn_write_probability:
                document = dumps_predictor(predictor)
                cut = int(stream.integers(1, max(2, len(document))))
                # The torn write is the *point*: leave exactly the
                # artifact a crash inside a non-atomic writer leaves.
                path.write_text(document[:cut])  # repro: noqa[RPR005]
                self._record("persistence", "torn_write")
                raise InjectedFault(
                    f"injected torn write: {path} truncated at byte {cut}"
                )
        return save_predictor(predictor, path)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def total_injected(self) -> int:
        return sum(self.counts.values())

    def summary(self) -> dict:
        """JSON-ready tally of injected faults by component and kind."""
        report: dict[str, dict[str, int]] = {}
        for (component, kind), count in sorted(self.counts.items()):
            report.setdefault(component, {})[kind] = count
        return report

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultInjector(components={sorted(self.specs)}, "
            f"injected={self.total_injected})"
        )


class ScheduledFaultInjector(FaultInjector):
    """A fault injector whose specs may change *mid-run*.

    :meth:`FaultInjector.wrap` binds the component's spec once, at wrap
    time, which is the right trade for steady-state storms (inert specs
    cost nothing) but wrong for scenario schedules: the framework wraps
    its external surfaces in ``TemplateSession.__init__``, long before a
    cold-start storm turns the optimizer off and back on.  This variant
    always interposes and re-reads ``specs[component]`` on every call,
    so :meth:`set_spec` takes effect immediately on already-wrapped
    surfaces.  Healthy phases draw nothing from the component's RNG
    stream — the fault sequence within a faulty phase depends only on
    the seed and the number of calls made during faulty phases.
    """

    def wrap(self, component: str, fn: Callable) -> Callable:
        def guarded(*args, **kwargs):
            spec = self.specs.get(component)
            if spec is not None and not spec.inert:
                self._inject(component, spec)
            return fn(*args, **kwargs)

        guarded.__name__ = f"faulty_{component}"
        return guarded

    def set_spec(self, component: str, spec: "FaultSpec | None") -> None:
        """Install (or with ``None`` clear) a component's fault spec."""
        if spec is None:
            self.specs.pop(component, None)
        else:
            self.specs[component] = spec


def torn_copy(document: str, fraction: float) -> str:
    """Cut a serialized document at ``fraction`` of its length (test
    helper for scripting exact truncation points)."""
    if not 0.0 <= fraction <= 1.0:
        raise ResilienceError("fraction must lie in [0, 1]")
    return document[: max(1, int(len(document) * fraction))]


def bit_flip(document: str, position: int) -> str:
    """Flip one bit of a serialized document (test helper for
    corruption that keeps the length intact)."""
    data = bytearray(document.encode("utf-8"))
    if not data:
        raise ResilienceError("cannot bit-flip an empty document")
    data[position % len(data)] ^= 0x01
    return data.decode("utf-8", errors="replace")


__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "InjectedTimeout",
    "ScheduledFaultInjector",
    "VirtualClock",
    "bit_flip",
    "torn_copy",
]
