"""Per-template circuit breaker over the optimizer.

Retrying masks transient optimizer failures; a *persistently* failing
optimizer would still be retried on every instance, paying the full
backoff schedule each time.  The breaker cuts that cost: after
``failure_threshold`` consecutive failures it **opens** and the session
stops invoking the optimizer entirely, serving the last cached plan
instead (recording the suboptimality it accepts).  After
``recovery_time`` seconds it moves to **half-open** and admits a
bounded number of trial calls; one success closes it again, one failure
re-opens it.

The clock is injectable so breaker recovery is scriptable in tests and
fault storms (see :class:`~repro.resilience.faults.VirtualClock`).
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.exceptions import ResilienceError
from repro.resilience.clocks import system_clock

#: Breaker states, in gauge order (0 = closed, 1 = half-open, 2 = open).
CLOSED = "closed"
HALF_OPEN = "half_open"
OPEN = "open"
BREAKER_STATES = (CLOSED, HALF_OPEN, OPEN)
BREAKER_STATE_VALUES = {state: i for i, state in enumerate(BREAKER_STATES)}


class CircuitOpenError(ResilienceError):
    """A guarded call was attempted while the breaker was open."""


class CircuitBreaker:
    """Closed → open → half-open failure isolation for one dependency.

    ``on_transition(new_state)`` fires on every state change so callers
    can publish breaker gauges/counters without the breaker depending
    on the metrics layer.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        recovery_time: float = 5.0,
        half_open_trials: int = 1,
        clock: "Callable[[], float] | None" = None,
        on_transition: "Callable[[str], None] | None" = None,
    ) -> None:
        if failure_threshold < 1:
            raise ResilienceError("failure threshold must be >= 1")
        if recovery_time < 0.0:
            raise ResilienceError("recovery time must be >= 0")
        if half_open_trials < 1:
            raise ResilienceError("half-open trials must be >= 1")
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self.half_open_trials = half_open_trials
        self._clock = clock or system_clock
        self._on_transition = on_transition
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._trials_left = 0
        self.transitions: dict[str, int] = {}

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------
    def _transition(self, state: str) -> None:
        if state == self._state:
            return
        self._state = state
        self.transitions[state] = self.transitions.get(state, 0) + 1
        if self._on_transition is not None:
            self._on_transition(state)

    @property
    def state(self) -> str:
        """Current state, recovering open → half-open lazily."""
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.recovery_time
        ):
            self._trials_left = self.half_open_trials
            self._transition(HALF_OPEN)
        return self._state

    def allow(self) -> bool:
        """May the caller invoke the guarded dependency right now?"""
        state = self.state
        if state == CLOSED:
            return True
        if state == HALF_OPEN and self._trials_left > 0:
            self._trials_left -= 1
            return True
        return False

    def call(self, fn: Callable) -> Any:
        """Guard one call: raises :class:`CircuitOpenError` when open,
        otherwise delegates and records the outcome."""
        if not self.allow():
            raise CircuitOpenError(
                "circuit is open; dependency considered unavailable"
            )
        try:
            result = fn()
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result

    def record_success(self) -> None:
        self._consecutive_failures = 0
        self._transition(CLOSED)

    def record_failure(self) -> None:
        self._consecutive_failures += 1
        if self._state == HALF_OPEN:
            self._open()
        elif (
            self._state == CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._open()
        elif self._state == OPEN:
            # A failure recorded while open (e.g. a straggler) restarts
            # the recovery window.
            self._opened_at = self._clock()

    def _open(self) -> None:
        self._opened_at = self._clock()
        self._trials_left = 0
        self._transition(OPEN)

    def reset(self) -> None:
        """Force-close (administrative override / tests)."""
        self._consecutive_failures = 0
        self._trials_left = 0
        self._transition(CLOSED)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"failures={self._consecutive_failures})"
        )


__all__ = [
    "BREAKER_STATES",
    "BREAKER_STATE_VALUES",
    "CircuitBreaker",
    "CircuitOpenError",
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
]
