"""Predicate selectivity estimation from column statistics.

The bridge between parameter *values* and the optimizer's world of
selectivities: given a parameterized range predicate and a bound value,
estimate the fraction of rows satisfying it — computed exactly the way
the optimizer itself would, from the per-column quantile sketches
(Section II-B: the framework "computes the predicate selectivities in
the same way that the query optimizer makes its selectivity
estimations").
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.optimizer.expressions import ParamPredicate, QueryTemplate
from repro.optimizer.statistics import CatalogStatistics


def predicate_selectivity(
    statistics: CatalogStatistics,
    predicate: ParamPredicate,
    value: float,
) -> float:
    """Estimated selectivity of ``predicate`` bound to ``value``."""
    sketch = statistics.column(
        predicate.column.table, predicate.column.column
    )
    leq = float(sketch.selectivity_leq(value))
    if predicate.op == "<=":
        return leq
    if predicate.op == ">=":
        return 1.0 - leq
    raise ConfigurationError(f"unsupported predicate op {predicate.op!r}")


def value_for_selectivity(
    statistics: CatalogStatistics,
    predicate: ParamPredicate,
    selectivity: float,
) -> float:
    """Inverse of :func:`predicate_selectivity` (up to interpolation)."""
    if not 0.0 <= selectivity <= 1.0:
        raise ConfigurationError("selectivity must lie in [0, 1]")
    sketch = statistics.column(
        predicate.column.table, predicate.column.column
    )
    target = selectivity if predicate.op == "<=" else 1.0 - selectivity
    return float(sketch.value_at_selectivity(target))


def instance_selectivities(
    template: QueryTemplate,
    statistics: CatalogStatistics,
    values: "tuple[float, ...] | list[float]",
) -> np.ndarray:
    """Selectivity vector of one instance, ordered by ``param_index``."""
    predicates = sorted(template.predicates, key=lambda p: p.param_index)
    if len(values) != len(predicates):
        raise ConfigurationError(
            f"expected {len(predicates)} values, got {len(values)}"
        )
    return np.array(
        [
            predicate_selectivity(statistics, predicate, value)
            for predicate, value in zip(predicates, values, strict=True)
        ]
    )
