"""Visitor core of the invariant linter.

One parse per file: a :class:`ModuleContext` wraps the AST together
with everything rules keep re-deriving — the dotted module name (which
drives per-rule scoping), import alias tables for resolving attribute
chains like ``np.random.default_rng`` back to real dotted names, the
raw source lines, and the ``# repro: noqa[RULE]`` suppression map.
Rules are small classes registered with :func:`register_rule`; each
yields ``(node, message)`` pairs and the driver turns them into
:class:`Finding` records, dropping any that a suppression covers.

The framework is deliberately tiny (no config files, no plugins): the
rules *are* the configuration, and their scoping lives in class
attributes (``only_modules`` / ``exempt_modules``) where a reviewer can
see it next to the check itself.
"""

from __future__ import annotations

import ast
import hashlib
import pathlib
import re
from dataclasses import dataclass
from collections.abc import Iterable, Iterator

#: Severities a rule can carry; ``error`` gates the exit status.
SEVERITIES = ("warning", "error")

#: Inline suppression: ``# repro: noqa`` (all rules) or
#: ``# repro: noqa[RPR001]`` / ``# repro: noqa[RPR001,RPR002]``.
_NOQA_PATTERN = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9_,\s]+)\])?", re.IGNORECASE
)

#: Sentinel stored in the suppression map when a bare ``noqa`` (no
#: bracketed code list) silences every rule on the line.
ALL_RULES = "*"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    #: The stripped source line — the stable part of the fingerprint,
    #: so baselines survive unrelated edits shifting line numbers.
    snippet: str = ""

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def fingerprint(self) -> str:
        """Line-number-independent identity used for baseline matching."""
        digest = hashlib.sha256(
            f"{self.rule}\x00{self.path}\x00{self.snippet}".encode()
        )
        return digest.hexdigest()[:16]

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint(),
        }


class ModuleContext:
    """Everything the rules need about one parsed module."""

    def __init__(
        self,
        source: str,
        path: str = "<memory>",
        module: "str | None" = None,
    ) -> None:
        self.source = source
        self.path = path
        self.module = module if module is not None else _module_name(path)
        self.tree = ast.parse(source, filename=path)
        self.lines = source.splitlines()
        #: alias -> dotted module, from ``import x.y as z`` (and plain
        #: ``import x.y``, under the first component).
        self.module_aliases: dict[str, str] = {}
        #: local name -> fully dotted origin, from ``from m import n``.
        self.imported_names: dict[str, str] = {}
        self._collect_imports()
        self.suppressions = _collect_suppressions(self.lines)
        self._statement_spans = _statement_spans(self.tree)

    # ------------------------------------------------------------------
    # Import resolution
    # ------------------------------------------------------------------
    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.asname and alias.name or local
                    self.module_aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.level:
                    continue  # relative imports stay unresolved
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.imported_names[local] = (
                        f"{node.module}.{alias.name}"
                    )

    def resolve(self, node: ast.AST) -> "str | None":
        """Dotted origin of a ``Name``/``Attribute`` chain, if statically
        knowable — ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` given ``import numpy as np``."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = node.id
        base = self.module_aliases.get(
            root, self.imported_names.get(root, root)
        )
        return ".".join([base, *reversed(parts)]) if parts else base

    # ------------------------------------------------------------------
    # Source access
    # ------------------------------------------------------------------
    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def suppressed(self, lineno: int, rule: str) -> bool:
        codes = self.suppressions.get(lineno)
        return codes is not None and (ALL_RULES in codes or rule in codes)

    def suppressed_node(self, node: ast.AST, rule: str) -> bool:
        """Range-aware suppression: a ``noqa`` on *any* physical line
        of the enclosing simple statement covers a finding anchored
        anywhere inside it, so a wrapped call may carry the comment
        wherever black put the closing paren.  Block-opening nodes
        (``def``/``class``/``except``) anchor findings at their header
        and would otherwise swallow a ``noqa`` meant for a statement
        deep in their body — they stay header-line-only.
        """
        lineno = getattr(node, "lineno", 1)
        if isinstance(
            node,
            (
                ast.FunctionDef,
                ast.AsyncFunctionDef,
                ast.ClassDef,
                ast.ExceptHandler,
            ),
        ):
            return self.suppressed(lineno, rule)
        end = getattr(node, "end_lineno", None) or lineno
        start, end = self._statement_spans.get(lineno, (lineno, end))
        return any(
            self.suppressed(line, rule)
            for line in range(start, max(start, end) + 1)
        )


class Rule:
    """Base class for one invariant check.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding ``(node, message)`` pairs.  ``only_modules`` restricts the
    rule to dotted-module prefixes; ``exempt_modules`` carves out the
    packages allowed to break it (e.g. the clock sources themselves).
    """

    code = "RPR000"
    title = ""
    severity = "error"
    rationale = ""
    only_modules: "tuple[str, ...] | None" = None
    exempt_modules: "tuple[str, ...]" = ()

    def applies_to(self, module: str) -> bool:
        if any(_prefixed(module, prefix) for prefix in self.exempt_modules):
            return False
        if self.only_modules is None:
            return True
        return any(_prefixed(module, prefix) for prefix in self.only_modules)

    def check(self, ctx: ModuleContext) -> "Iterator[tuple[ast.AST, str]]":
        raise NotImplementedError


def _prefixed(module: str, prefix: str) -> bool:
    return module == prefix or module.startswith(prefix + ".")


# ----------------------------------------------------------------------
# Rule registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, type[Rule]] = {}


def register_rule(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if rule_class.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule_class.code}")
    if rule_class.severity not in SEVERITIES:
        raise ValueError(f"unknown severity {rule_class.severity!r}")
    _REGISTRY[rule_class.code] = rule_class
    return rule_class


def rule_registry() -> dict[str, type[Rule]]:
    """Registered rule classes, keyed by code (imports the built-ins)."""
    import repro.analysis.rules  # noqa: F401 - registration side effect

    return dict(_REGISTRY)


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, code order."""
    return [cls() for __, cls in sorted(rule_registry().items())]


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------
def _module_name(path: str) -> str:
    """Dotted module name for scoping: anchor at the ``repro`` package
    when present, else fall back to the bare stem (fixtures, scratch
    files)."""
    parts = pathlib.PurePath(path).parts
    stem = pathlib.PurePath(path).stem
    if "repro" in parts:
        anchor = len(parts) - 1 - tuple(reversed(parts)).index("repro")
        dotted = list(parts[anchor:-1]) + ([] if stem == "__init__" else [stem])
        return ".".join(dotted)
    return stem


#: Compound statements own nested statements; their spans must not
#: become suppression groups (a ``noqa`` deep in a function body would
#: otherwise cover the whole ``def``).  Only the simple statements —
#: calls, assignments, raises — group their wrapped physical lines.
_COMPOUND_STATEMENTS = tuple(
    getattr(ast, name)
    for name in (
        "If",
        "For",
        "AsyncFor",
        "While",
        "With",
        "AsyncWith",
        "Try",
        "TryStar",
        "Match",
        "FunctionDef",
        "AsyncFunctionDef",
        "ClassDef",
    )
    if hasattr(ast, name)
)


def _statement_spans(tree: ast.AST) -> "dict[int, tuple[int, int]]":
    """Physical line -> ``(first, last)`` line of the enclosing simple
    statement, for the multi-line ``noqa`` check."""
    spans: dict[int, tuple[int, int]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        if isinstance(node, _COMPOUND_STATEMENTS):
            continue
        end = node.end_lineno or node.lineno
        for line in range(node.lineno, end + 1):
            spans[line] = (node.lineno, end)
    return spans


def _collect_suppressions(lines: "list[str]") -> dict[int, set]:
    suppressions: dict[int, set] = {}
    for lineno, text in enumerate(lines, start=1):
        if "#" not in text:
            continue
        match = _NOQA_PATTERN.search(text)
        if match is None:
            continue
        codes = match.group("codes")
        if codes is None:
            suppressions[lineno] = {ALL_RULES}
        else:
            suppressions[lineno] = {
                code.strip().upper()
                for code in codes.split(",")
                if code.strip()
            }
    return suppressions


def lint_source(
    source: str,
    path: str = "<memory>",
    module: "str | None" = None,
    rules: "Iterable[Rule] | None" = None,
) -> list[Finding]:
    """Lint one in-memory module; the unit the file driver loops over."""
    ctx = ModuleContext(source, path=path, module=module)
    active = list(rules) if rules is not None else all_rules()
    findings: list[Finding] = []
    for rule in active:
        if not rule.applies_to(ctx.module):
            continue
        for node, message in rule.check(ctx):
            lineno = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
            if ctx.suppressed_node(node, rule.code):
                continue
            findings.append(
                Finding(
                    rule=rule.code,
                    severity=rule.severity,
                    path=path,
                    line=lineno,
                    col=col + 1,
                    message=message,
                    snippet=ctx.line_text(lineno),
                )
            )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def iter_python_files(paths: "Iterable[str | pathlib.Path]") -> list[pathlib.Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    seen: dict[pathlib.Path, None] = {}
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if "__pycache__" not in candidate.parts:
                    seen[candidate] = None
        elif path.suffix == ".py":
            seen[path] = None
    return list(seen)


def lint_paths(
    paths: "Iterable[str | pathlib.Path]",
    rules: "Iterable[Rule] | None" = None,
) -> "tuple[list[Finding], list[str]]":
    """Lint files and directories.

    Returns ``(findings, errors)`` where ``errors`` are files that could
    not be read or parsed — reported, and counted as a failure by the
    CLI, but not silently skipped.
    """
    active = list(rules) if rules is not None else all_rules()
    findings: list[Finding] = []
    errors: list[str] = []
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            errors.append(f"{path}: unreadable ({exc})")
            continue
        try:
            findings.extend(
                lint_source(source, path=path.as_posix(), rules=active)
            )
        except SyntaxError as exc:
            errors.append(f"{path}: syntax error ({exc.msg}, line {exc.lineno})")
    return findings, errors
