"""Drive scenario event streams through the PPC framework.

:class:`WorkloadExecutor` owns one deterministic run: a
:class:`~repro.resilience.faults.VirtualClock`, a
:class:`~repro.resilience.faults.ScheduledFaultInjector` (so
:class:`~repro.workload.scenarios.FaultPhase` events take effect on
surfaces the framework wrapped at registration time), a
:class:`~repro.core.framework.PPCFramework` with per-template
:class:`~repro.workload.drift.ManipulatedPlanSpace` wrappers, and the
event loop that turns a scenario stream into a list of JSON-ready
**decision digests** — the unit of comparison for replay verification.

:class:`ScenarioRunner` layers contract evaluation and the
``BENCH_scenarios.json`` matrix on top.  Both the scenario CLI and the
replay machinery build on the same executor, which is what makes a
recorded trace re-runnable bit-identically: same registration order,
same seeds, same clock discipline, same batch grouping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.config import PPCConfig
from repro.core.framework import ExecutionRecord, PPCFramework
from repro.exceptions import ConfigurationError, ReproError
from repro.resilience.faults import ScheduledFaultInjector, VirtualClock
from repro.workload.drift import ManipulatedPlanSpace
from repro.workload.scenarios import (
    ContractVerdict,
    DriftShift,
    FaultPhase,
    ManipulationSpec,
    QueryEvent,
    Scenario,
)


def decision_digest(record: ExecutionRecord) -> "dict[str, Any]":
    """The JSON-primitive projection of one execution decision.

    Every field either round-trips exactly through JSON (``repr``-based
    float serialization is lossless) or is an int/str/bool, so digest
    equality is bit-identity of the decision sequence.
    """
    return {
        "template": record.template,
        "predicted": (
            None if record.predicted is None else int(record.predicted)
        ),
        "confidence": float(record.confidence),
        "optimizer_invoked": bool(record.optimizer_invoked),
        "invocation_reason": record.invocation_reason,
        "executed_plan": int(record.executed_plan),
        "execution_cost": float(record.execution_cost),
        "optimal_plan": int(record.optimal_plan),
        "optimal_cost": float(record.optimal_cost),
        "drift_triggered": bool(record.drift_triggered),
        "degraded": bool(record.degraded),
        "fallback_source": record.fallback_source,
    }


class WorkloadExecutor:
    """One deterministic scenario run over an injected clock.

    ``plan_spaces`` maps template name to its (already harvested)
    oracle; ``manipulation`` wraps the named templates in
    :class:`ManipulatedPlanSpace` so :class:`DriftShift` events can
    steer their intensity mid-run.  Registration happens in
    ``templates`` order — the framework spawns per-template RNG streams
    by registration order, so replay must (and does) preserve it.
    """

    def __init__(
        self,
        templates: "tuple[str, ...]",
        plan_spaces: "dict[str, Any]",
        config: "PPCConfig | None" = None,
        seed: int = 0,
        batch_size: int = 1,
        manipulation: "tuple[tuple[str, ManipulationSpec], ...]" = (),
    ) -> None:
        if batch_size < 1:
            raise ConfigurationError("batch size must be >= 1")
        self.templates = tuple(templates)
        self.seed = seed
        self.batch_size = batch_size
        self.clock = VirtualClock()
        self.injector = ScheduledFaultInjector(
            seed=seed, sleep=self.clock.sleep
        )
        self.framework = PPCFramework(
            config=config,
            seed=seed,
            fault_injector=self.injector,
            clock=self.clock.now,
            sleep=self.clock.sleep,
        )
        self.oracles: "dict[str, ManipulatedPlanSpace]" = {}
        wrapped = dict(manipulation)
        for name in self.templates:
            space = plan_spaces[name]
            spec = wrapped.get(name)
            if spec is not None:
                space = ManipulatedPlanSpace(
                    space,
                    resolution=spec.resolution,
                    cost_jitter=spec.cost_jitter,
                    seed=spec.seed,
                    scramble_labels=spec.scramble_labels,
                )
                self.oracles[name] = space
            self.framework.register(space)

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------
    def drive(self, events: "list[Any]") -> "list[dict[str, Any]]":
        """Run the event stream; one digest per :class:`QueryEvent`.

        Query instances flow through ``execute`` (or, with
        ``batch_size > 1``, through ``execute_batch`` over maximal runs
        of consecutive same-template queries).  A clean
        :class:`~repro.exceptions.ReproError` becomes an error digest
        (``{"i", "template", "error"}``) rather than aborting the run —
        the *contracts* decide whether raising was acceptable.  Control
        events (fault phases, drift shifts) flush any pending batch so
        they take effect exactly between the instances they separate.
        """
        digests: "list[dict[str, Any]]" = []
        pending: "list[QueryEvent]" = []

        def flush() -> None:
            if not pending:
                return
            group = list(pending)
            pending.clear()
            template = group[0].template
            points = np.array([e.point for e in group], dtype=float)
            base = len(digests)
            try:
                records = self.framework.execute_batch(template, points)
            except ReproError as error:
                for offset, event in enumerate(group):
                    digests.append(
                        {
                            "i": base + offset,
                            "template": event.template,
                            "error": (
                                f"{type(error).__name__}: {error}"
                            ),
                        }
                    )
            else:
                for offset, record in enumerate(records):
                    digest = decision_digest(record)
                    digest["i"] = base + offset
                    digests.append(digest)
            self.clock.advance(sum(e.advance for e in group))

        for event in events:
            if isinstance(event, QueryEvent):
                if self.batch_size == 1:
                    index = len(digests)
                    try:
                        record = self.framework.execute(
                            event.template, np.array(event.point)
                        )
                    except ReproError as error:
                        digests.append(
                            {
                                "i": index,
                                "template": event.template,
                                "error": (
                                    f"{type(error).__name__}: {error}"
                                ),
                            }
                        )
                    else:
                        digest = decision_digest(record)
                        digest["i"] = index
                        digests.append(digest)
                    self.clock.advance(event.advance)
                else:
                    if pending and (
                        pending[0].template != event.template
                        or len(pending) >= self.batch_size
                    ):
                        flush()
                    pending.append(event)
            elif isinstance(event, FaultPhase):
                flush()
                self.injector.set_spec(event.component, event.spec)
            elif isinstance(event, DriftShift):
                flush()
                oracle = self.oracles.get(event.template)
                if oracle is None:
                    raise ConfigurationError(
                        f"drift shift for {event.template!r} but the "
                        "template has no manipulation spec"
                    )
                oracle.set_intensity(event.intensity)
            else:
                raise ConfigurationError(
                    f"unknown scenario event {type(event).__name__}"
                )
        flush()
        return digests


@dataclass
class RunResult:
    """Everything a contract may assert against after one run."""

    scenario: str
    seed: int
    count: int
    batch_size: int
    decisions: "list[dict[str, Any]]"
    executor: WorkloadExecutor
    verdicts: "list[ContractVerdict]" = field(default_factory=list)

    @property
    def templates(self) -> "tuple[str, ...]":
        return self.executor.templates

    @property
    def config(self) -> PPCConfig:
        return self.executor.framework.config

    @property
    def errors(self) -> "list[dict[str, Any]]":
        return [d for d in self.decisions if "error" in d]

    @property
    def passed(self) -> bool:
        return all(v.passed for v in self.verdicts)

    def session(self, template: str):
        return self.executor.framework.session(template)

    def slo(self, template: str) -> "list[dict[str, Any]]":
        engine = self.executor.framework.slo_engine
        if engine is None:
            return []
        return engine.evaluate(template)


class ScenarioRunner:
    """Run named scenarios and evaluate their robustness contracts.

    ``fast=True`` runs each scenario's CI tier
    (``fast_instances``); the full tier is the benchmark default.
    ``batch_size`` routes instances through ``execute_batch``.  For
    scenarios whose decisions don't hinge on intra-batch clock position
    the decision sequence is lockstep-identical either way (pinned by
    the scenario parity test); clock-coupled scenarios (e.g. breaker
    open-timers during an outage) may legitimately diverge, which is
    why the replay header records the batch size — replay is always
    bit-identical *at the recorded batch size*.
    """

    def __init__(self, fast: bool = False, batch_size: int = 1) -> None:
        self.fast = fast
        self.batch_size = batch_size

    def instance_count(self, scenario: Scenario) -> int:
        return scenario.fast_instances if self.fast else scenario.instances

    def load_spaces(self, scenario: Scenario) -> "dict[str, Any]":
        from repro.tpch import plan_space_for

        return {name: plan_space_for(name) for name in scenario.templates}

    def build_executor(
        self, scenario: Scenario, plan_spaces: "dict[str, Any] | None" = None
    ) -> WorkloadExecutor:
        if plan_spaces is None:
            plan_spaces = self.load_spaces(scenario)
        return WorkloadExecutor(
            templates=scenario.templates,
            plan_spaces=plan_spaces,
            config=scenario.config,
            seed=scenario.seed,
            batch_size=self.batch_size,
            manipulation=scenario.manipulation,
        )

    def run(
        self,
        scenario: Scenario,
        plan_spaces: "dict[str, Any] | None" = None,
    ) -> RunResult:
        count = self.instance_count(scenario)
        executor = self.build_executor(scenario, plan_spaces)
        dims = {
            name: executor.framework.session(name).plan_space.dimensions
            for name in scenario.templates
        }
        events = scenario.events(count, dims)
        decisions = executor.drive(events)
        result = RunResult(
            scenario=scenario.name,
            seed=scenario.seed,
            count=count,
            batch_size=self.batch_size,
            decisions=decisions,
            executor=executor,
        )
        result.verdicts = [
            contract.evaluate(result)
            for contract in scenario.contracts(count)
        ]
        return result

    def summarize(self, result: RunResult) -> "dict[str, Any]":
        """One JSON-ready matrix row for ``BENCH_scenarios.json``."""
        scenario = result.scenario
        fallbacks = sum(
            1
            for d in result.decisions
            if "error" not in d and d["fallback_source"]
        )
        drift_events = {
            name: result.session(name).drift_events
            for name in result.templates
        }
        return {
            "scenario": scenario,
            "seed": result.seed,
            "instances": result.count,
            "batch_size": result.batch_size,
            "templates": list(result.templates),
            "decisions": len(result.decisions),
            "errors": len(result.errors),
            "fallbacks": fallbacks,
            "drift_events": drift_events,
            "faults_injected": result.executor.injector.summary(),
            "contracts": [
                {
                    "contract": v.contract,
                    "passed": v.passed,
                    "observed": v.observed,
                }
                for v in result.verdicts
            ],
            "passed": result.passed,
        }


def run_matrix(
    names: "tuple[str, ...] | list[str]",
    fast: bool = False,
    batch_size: int = 1,
) -> "dict[str, Any]":
    """Run a set of named scenarios; the full bench payload."""
    from repro.workload.scenarios import get_scenario

    runner = ScenarioRunner(fast=fast, batch_size=batch_size)
    rows = []
    for name in names:
        scenario = get_scenario(name)
        rows.append(runner.summarize(runner.run(scenario)))
    return {
        "tier": "fast" if fast else "full",
        "batch_size": batch_size,
        "scenarios": rows,
        "passed": all(row["passed"] for row in rows),
    }


__all__ = [
    "RunResult",
    "ScenarioRunner",
    "WorkloadExecutor",
    "decision_digest",
    "run_matrix",
]
