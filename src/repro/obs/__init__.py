"""Observability for the PPC pipeline: metrics, timing, export.

A dependency-free metrics layer sized for a hot path:

* :class:`~repro.obs.registry.MetricsRegistry` — counters, gauges and
  streaming latency histograms (p50/p95/p99 over fixed log-scale
  buckets), keyed by name + labels;
* :func:`~repro.obs.timing.timed` / :func:`~repro.obs.timing.time_block`
  — decorator and context-manager timing helpers;
* :func:`~repro.obs.prometheus.render_prometheus` — Prometheus text
  exposition of a registry;
* :mod:`repro.obs.names` — the canonical metric-name inventory the
  instrumented pipeline emits.

Every :class:`~repro.core.framework.PPCFramework` (and therefore every
:class:`~repro.service.PlanCachingService`) owns one registry; pass
``metrics=`` to share a registry across frameworks or swap in your own.
"""

from repro.obs import names
from repro.obs.prometheus import render_prometheus
from repro.obs.registry import (
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
)
from repro.obs.timing import time_block, timed

__all__ = [
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "names",
    "render_prometheus",
    "time_block",
    "timed",
]
