"""Circuit breaker state machine under scripted fault sequences."""

import pytest

from repro.exceptions import ResilienceError
from repro.resilience import CircuitBreaker, CircuitOpenError, VirtualClock
from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN


@pytest.fixture()
def clock():
    return VirtualClock()


def make_breaker(clock, **kwargs):
    kwargs.setdefault("failure_threshold", 3)
    kwargs.setdefault("recovery_time", 10.0)
    return CircuitBreaker(clock=clock.now, **kwargs)


class TestTransitions:
    def test_starts_closed_and_allows(self, clock):
        breaker = make_breaker(clock)
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_opens_after_consecutive_failures(self, clock):
        breaker = make_breaker(clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_success_resets_the_failure_streak(self, clock):
        breaker = make_breaker(clock)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_after_recovery_time(self, clock):
        breaker = make_breaker(clock)
        for __ in range(3):
            breaker.record_failure()
        clock.advance(9.9)
        assert breaker.state == OPEN
        clock.advance(0.2)
        assert breaker.state == HALF_OPEN

    def test_half_open_admits_bounded_trials(self, clock):
        breaker = make_breaker(clock, half_open_trials=1)
        for __ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()  # the single probe
        assert not breaker.allow()  # no second call while undecided

    def test_half_open_success_closes(self, clock):
        breaker = make_breaker(clock)
        for __ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_half_open_failure_reopens(self, clock):
        breaker = make_breaker(clock)
        for __ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        # The recovery window restarts from the re-open.
        clock.advance(5.0)
        assert breaker.state == OPEN
        clock.advance(5.0)
        assert breaker.state == HALF_OPEN

    def test_scripted_fault_sequence(self, clock):
        """fail fail ok fail fail fail -> open; recover; ok -> closed."""
        breaker = make_breaker(clock)
        script = ["fail", "fail", "ok", "fail", "fail", "fail"]
        for step in script:
            if step == "ok":
                breaker.record_success()
            else:
                breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.transitions == {OPEN: 1, HALF_OPEN: 1, CLOSED: 1}


class TestCallGuard:
    def test_call_records_outcomes(self, clock):
        breaker = make_breaker(clock, failure_threshold=1)
        with pytest.raises(RuntimeError):
            breaker.call(lambda: (_ for _ in ()).throw(RuntimeError()))
        assert breaker.state == OPEN
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: "ok")
        clock.advance(10.0)
        assert breaker.call(lambda: "ok") == "ok"
        assert breaker.state == CLOSED

    def test_transition_callback_fires_once_per_change(self, clock):
        events = []
        breaker = CircuitBreaker(
            failure_threshold=2,
            recovery_time=10.0,
            clock=clock.now,
            on_transition=events.append,
        )
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_failure()  # already open: no second event
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert events == [OPEN, HALF_OPEN, CLOSED]

    def test_reset_force_closes(self, clock):
        breaker = make_breaker(clock, failure_threshold=1)
        breaker.record_failure()
        assert breaker.state == OPEN
        breaker.reset()
        assert breaker.state == CLOSED
        assert breaker.allow()


class TestValidation:
    def test_thresholds_validated(self, clock):
        with pytest.raises(ResilienceError):
            CircuitBreaker(failure_threshold=0, clock=clock.now)
        with pytest.raises(ResilienceError):
            CircuitBreaker(recovery_time=-1.0, clock=clock.now)
        with pytest.raises(ResilienceError):
            CircuitBreaker(half_open_trials=0, clock=clock.now)
