"""Section V-D: estimator accuracy and plan-space drift detection.

Two reproductions: (1) the cost-feedback binary estimator at
epsilon = 0.25 — the paper reports ~72 % accuracy; (2) the mid-workload
manipulation experiment — the online precision estimate drops sharply
and a drift alarm fires shortly after the plan space is scrambled.
"""

import numpy as np

from _bench_utils import write_result
from repro.experiments.drift import run_drift_detection, run_estimator_accuracy


def test_drift_estimator_accuracy(benchmark):
    result = benchmark.pedantic(
        run_estimator_accuracy,
        kwargs=dict(template="Q1", epsilon=0.25, sample_size=2000,
                    test_size=2000, seed=7),
        rounds=1,
        iterations=1,
    )
    lines = [
        "Section V-D — cost-feedback estimator accuracy (epsilon = 0.25)",
        "",
        f"evaluated predictions : {result.evaluated}",
        f"accuracy              : {result.accuracy:.1%}   (paper: ~72%)",
        f"true positives        : {result.true_positive}",
        f"false positives       : {result.false_positive}",
        f"true negatives        : {result.true_negative}",
        f"false negatives       : {result.false_negative}",
    ]
    write_result("drift_estimator_accuracy", lines)
    assert result.accuracy > 0.6


def test_drift_detection_alarm(benchmark):
    run = benchmark.pedantic(
        run_drift_detection,
        kwargs=dict(template="Q1", workload_size=2000, spread=0.02, seed=7),
        rounds=1,
        iterations=1,
    )
    trace = np.array(run.precision_trace)
    m = run.manipulation_index
    before = float(trace[m - 200 : m].mean())
    after_min = float(trace[m : m + 400].min())
    lines = [
        "Section V-D — drift detection after mid-workload manipulation",
        "(Q1, 2000 instances, plan space scrambled at instance "
        f"{m})",
        "",
        f"precision estimate before manipulation : {before:.3f}",
        f"precision estimate min after           : {after_min:.3f}",
        f"recall before / after                  : "
        f"{run.recall_before:.3f} / {run.recall_after:.3f}",
        f"first drift alarm at instance          : {run.alarm_index}",
    ]
    write_result("drift_detection", lines)
    assert after_min < before - 0.04
    assert run.recall_after < 0.5 * run.recall_before
    assert run.alarm_index is not None and run.alarm_index >= m
