"""Multi-template memory governor.

The paper notes plan caching "must operate on a very limited space
budget" but evaluates templates in isolation.  A real deployment runs
many templates against one budget, so this module adds the missing
governor: it watches the total synopsis footprint across registered
sessions and, when over budget, reclaims space from the *coldest*
templates first — shrinking their histogram bucket budgets step by
step (the recall-only dial of Figure 10(b)) and, at the floor, dropping
the template's synopses entirely (it will relearn lazily if the
workload returns).

Heat combines recency and usefulness: a template that predicted
recently and successfully is the last to lose buckets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.exceptions import ConfigurationError
from repro.obs import MetricsRegistry, names as metric_names

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.framework import TemplateSession

#: A histogram is never shrunk below this bucket budget.
MIN_BUCKETS = 5


@dataclass
class _Registration:
    session: "TemplateSession"
    last_used: int = 0
    executions: int = 0

    def heat(self, clock: int) -> float:
        """Higher = keep; combines recency, recall and usage."""
        staleness = clock - self.last_used
        usefulness = self.session.monitor.recall_estimate
        return usefulness + 1.0 / (1.0 + staleness) + 0.001 * self.executions


@dataclass
class GovernorAction:
    """One reclamation step, for observability."""

    template: str
    action: str  # "shrink" or "drop"
    new_buckets: "int | None" = None
    reclaimed_bytes: int = 0


class MemoryGovernor:
    """Holds the sum of all sessions' synopsis bytes under a budget."""

    def __init__(
        self,
        budget_bytes: int,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        if budget_bytes < 1:
            raise ConfigurationError("budget must be positive")
        self.budget_bytes = budget_bytes
        self._registrations: dict[str, _Registration] = {}
        self._clock = 0
        self.actions: list[GovernorAction] = []
        self.reclaimed_bytes = 0
        self.shrinks = 0
        self.drops = 0
        self._metrics = metrics

    # ------------------------------------------------------------------
    # Registration and usage tracking
    # ------------------------------------------------------------------
    def register(self, session: "TemplateSession") -> None:
        name = session.plan_space.template.name
        self._registrations[name] = _Registration(session)

    def touch(self, template_name: str) -> None:
        """Record that a template just executed an instance."""
        self._clock += 1
        registration = self._registrations[template_name]
        registration.last_used = self._clock
        registration.executions += 1

    # ------------------------------------------------------------------
    # Accounting and enforcement
    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        return sum(
            r.session.online.space_bytes()
            for r in self._registrations.values()
        )

    def over_budget(self) -> bool:
        return self.total_bytes > self.budget_bytes

    def enforce(self) -> list[GovernorAction]:
        """Reclaim space until within budget; returns the actions taken."""
        taken: list[GovernorAction] = []
        guard = 0
        while self.over_budget() and guard < 1000:
            guard += 1
            victim = self._coldest_shrinkable()
            if victim is None:
                break
            action = self._reclaim(victim)
            taken.append(action)
            self.actions.append(action)
        return taken

    def _coldest_shrinkable(self) -> "_Registration | None":
        candidates = [
            r
            for r in self._registrations.values()
            if r.session.online.space_bytes() > 0
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda r: r.heat(self._clock))

    def _reclaim(self, registration: _Registration) -> GovernorAction:
        session = registration.session
        name = session.plan_space.template.name
        predictor = session.online.predictor
        before = session.online.space_bytes()
        current = predictor.max_buckets
        if current > MIN_BUCKETS:
            new_buckets = max(MIN_BUCKETS, current // 2)
            predictor.max_buckets = new_buckets
            for row in predictor._histograms:
                for histogram in row:
                    if hasattr(histogram, "shrink"):
                        histogram.shrink(new_buckets)
            action = GovernorAction(
                name,
                "shrink",
                new_buckets,
                reclaimed_bytes=before - session.online.space_bytes(),
            )
        else:
            # At the floor: drop the template's synopses entirely.
            session.online.drop()
            session.monitor.reset()
            session.cache.clear()
            action = GovernorAction(
                name,
                "drop",
                reclaimed_bytes=before - session.online.space_bytes(),
            )
        self._account(action)
        return action

    def _account(self, action: GovernorAction) -> None:
        self.reclaimed_bytes += action.reclaimed_bytes
        if action.action == "shrink":
            self.shrinks += 1
        else:
            self.drops += 1
        if self._metrics is not None:
            self._metrics.counter(
                metric_names.GOVERNOR_RECLAIMED_BYTES
            ).inc(max(0, action.reclaimed_bytes))
            self._metrics.counter(
                metric_names.GOVERNOR_ACTIONS_TOTAL,
                template=action.template,
                action=action.action,
            ).inc()
