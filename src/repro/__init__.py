"""repro — Parametric Plan Caching Using Density-Based Clustering.

A from-scratch reproduction of Aluç, DeHaan and Bowman (ICDE 2012):
an online density-based plan-space clustering framework for parametric
plan caching, built on locality-sensitive hashing and database
histograms, together with the full substrate it needs — a cost-based
query optimizer over a modified TPC-H catalog, workload generators, and
an end-to-end runtime simulator.

Quickstart::

    import numpy as np
    from repro import PPCFramework, plan_space_for
    from repro.workload import RandomTrajectoryWorkload

    space = plan_space_for("Q1")
    framework = PPCFramework()
    framework.register(space)
    workload = RandomTrajectoryWorkload(space.dimensions, spread=0.02, seed=7)
    for point in workload.generate(500):
        framework.execute("Q1", point)
    session = framework.session("Q1")
    print(session.ground_truth_metrics())
"""

from repro.config import PPCConfig, ResilienceConfig
from repro.core import (
    BaselinePredictor,
    ConfidenceModel,
    CostFeedbackDetector,
    ExecutionRecord,
    HistogramPredictor,
    LshPredictor,
    NaivePredictor,
    OnlinePredictor,
    PerformanceMonitor,
    PlanCache,
    PlanPredictor,
    PPCFramework,
    Prediction,
    SamplePool,
    TemplateSession,
)
from repro.exceptions import (
    PersistenceError,
    PredictionError,
    ReproError,
    ResilienceError,
)
from repro.obs import MetricsRegistry, render_prometheus
from repro.optimizer import Optimizer, PlanSpace, QueryTemplate
from repro.resilience import (
    CircuitBreaker,
    FaultInjector,
    FaultSpec,
    RetryPolicy,
    VirtualClock,
)
from repro.service import PlanCachingService
from repro.tpch import build_catalog, build_statistics, plan_space_for

__version__ = "1.0.0"

__all__ = [
    "PPCConfig",
    "ResilienceConfig",
    "BaselinePredictor",
    "CircuitBreaker",
    "FaultInjector",
    "FaultSpec",
    "RetryPolicy",
    "VirtualClock",
    "ConfidenceModel",
    "CostFeedbackDetector",
    "ExecutionRecord",
    "HistogramPredictor",
    "LshPredictor",
    "NaivePredictor",
    "OnlinePredictor",
    "PerformanceMonitor",
    "PlanCache",
    "PlanPredictor",
    "PPCFramework",
    "Prediction",
    "SamplePool",
    "TemplateSession",
    "ReproError",
    "PersistenceError",
    "PredictionError",
    "ResilienceError",
    "MetricsRegistry",
    "render_prometheus",
    "Optimizer",
    "PlanSpace",
    "QueryTemplate",
    "PlanCachingService",
    "build_catalog",
    "build_statistics",
    "plan_space_for",
    "__version__",
]
