"""APPROXIMATE-LSH: median density over randomized grids."""

import numpy as np
import pytest

from repro.core.lsh_predictor import LshPredictor
from repro.core.point import SamplePool
from repro.exceptions import PredictionError


def _pool():
    pool = SamplePool(2)
    rng = np.random.default_rng(0)
    for x in rng.uniform(0.0, 0.45, size=(80, 2)):
        pool.add(x, 0, cost=5.0)
    for x in rng.uniform(0.55, 1.0, size=(80, 2)):
        pool.add(x, 1, cost=9.0)
    return pool


class TestPrediction:
    def test_cluster_interiors(self):
        predictor = LshPredictor(_pool(), transforms=5, resolution=8, seed=1)
        assert predictor.predict([0.2, 0.2]).plan_id == 0
        assert predictor.predict([0.85, 0.85]).plan_id == 1

    def test_median_counts_shape(self):
        predictor = LshPredictor(_pool(), transforms=3, resolution=8, seed=1)
        counts = predictor.median_counts(np.array([0.2, 0.2]))
        assert counts.shape == (2,)
        assert counts[0] > counts[1]

    def test_median_robust_to_one_bad_grid(self):
        """With t = 5 grids, corrupting the counts of two grids cannot
        change the median."""
        predictor = LshPredictor(_pool(), transforms=5, resolution=8, seed=1)
        x = np.array([0.2, 0.2])
        before = predictor.median_counts(x)
        # Corrupt two grids by zeroing all their counts.
        predictor._counts[0][:] = 0.0
        predictor._counts[1][:] = 0.0
        after = predictor.median_counts(x)
        assert after[0] <= before[0]
        assert after.argmax() == before.argmax()

    def test_online_insert(self):
        predictor = LshPredictor(
            SamplePool(2), plan_count=2, transforms=3, resolution=8,
            confidence_threshold=0.5, seed=1,
        )
        for __ in range(6):
            predictor.insert(np.array([0.3, 0.3]), 1, cost=4.0)
        prediction = predictor.predict([0.3, 0.3])
        assert prediction.plan_id == 1
        assert prediction.estimated_cost == pytest.approx(4.0)

    def test_empty_pool_needs_plan_count(self):
        with pytest.raises(PredictionError):
            LshPredictor(SamplePool(2))

    def test_deterministic_under_seed(self):
        pool = _pool()
        a = LshPredictor(pool, transforms=3, resolution=8, seed=9)
        b = LshPredictor(pool, transforms=3, resolution=8, seed=9)
        x = np.array([0.7, 0.6])
        assert np.allclose(a.median_counts(x), b.median_counts(x))


class TestSpace:
    def test_space_formula(self):
        predictor = LshPredictor(
            _pool(), plan_count=3, transforms=4, resolution=8, seed=1
        )
        assert predictor.space_bytes() == 4 * 3 * 64 * 8

    def test_dimensionality_reduction(self):
        pool = SamplePool(4)
        rng = np.random.default_rng(2)
        for x in rng.uniform(0, 1, size=(50, 4)):
            pool.add(x, 0)
        predictor = LshPredictor(
            pool, transforms=3, resolution=8, output_dims=2, seed=1
        )
        # Grids are 2-D: 64 cells each instead of 4096.
        assert predictor.grids[0].total_cells == 64
        assert predictor.predict([0.5, 0.5, 0.5, 0.5]) is not None
