"""Adversarial workload scenarios with machine-checkable contracts.

The paper's central claim — density-clustered plan caching stays
accurate *under changing workloads* (Section V-D) — is only as strong
as the workloads it is tested against.  This module is the fleet of
named, seeded, clock-injectable adversaries that stress every layer
built so far: the drift detector, the negative-feedback estimator, the
resilience fallback chain, the plan-cache eviction policy, and the
SLO burn-rate engine.

Each :class:`Scenario` bundles

* a deterministic **event stream builder** — interleaved
  :class:`QueryEvent` / :class:`DriftShift` / :class:`FaultPhase`
  primitives drawn from a seeded generator, with every query advancing
  an injected :class:`~repro.resilience.faults.VirtualClock` so SLO
  windows fill without wall-clock time;
* an optional **plan-space manipulation**
  (:class:`ManipulationSpec`, realized as a
  :class:`~repro.workload.drift.ManipulatedPlanSpace` wrapper) saying
  which paper assumption the scenario violates; and
* a tuple of **robustness contracts** — machine-checkable predicates
  (drift caught within N instances, regret budget held, SLOs not
  breached, fallbacks served, no unhandled exceptions) evaluated
  against the run by :class:`~repro.workload.runner.ScenarioRunner`.

Scenarios are pure data + pure builders: running one is the runner's
job, recording/replaying one is :mod:`repro.workload.replay`'s.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.config import EventsConfig, PPCConfig
from repro.exceptions import ConfigurationError
from repro.resilience.faults import FaultSpec
from repro.workload.mixture import MixtureWorkload
from repro.workload.trajectories import RandomTrajectoryWorkload
from repro.workload.uniform import sample_points

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workload.runner import RunResult


# ----------------------------------------------------------------------
# Event primitives
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QueryEvent:
    """One query instance: run ``point`` against ``template``, then
    advance the virtual clock by ``advance`` seconds."""

    template: str
    point: "tuple[float, ...]"
    advance: float = 1.0


@dataclass(frozen=True)
class DriftShift:
    """Set a template's plan-space manipulation intensity.

    Intensity 1.0 is the paper's step drift (full scramble); a ramp of
    increasing intensities is slow drift.  Requires the template to
    have a :class:`ManipulationSpec` in the scenario.
    """

    template: str
    intensity: float


@dataclass(frozen=True)
class FaultPhase:
    """Install (or with ``spec=None`` clear) a component's fault spec
    on the run's :class:`~repro.resilience.faults.ScheduledFaultInjector`
    from this point of the stream on."""

    component: str
    spec: "FaultSpec | None"


#: Anything a scenario event stream may contain.
Event = "QueryEvent | DriftShift | FaultPhase"


@dataclass(frozen=True)
class ManipulationSpec:
    """Constructor arguments of the per-template
    :class:`~repro.workload.drift.ManipulatedPlanSpace` wrapper."""

    resolution: int = 16
    cost_jitter: float = 1.5
    scramble_labels: bool = True
    seed: int = 0


# ----------------------------------------------------------------------
# Robustness contracts
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ContractVerdict:
    """One evaluated contract: what was asserted, what was observed."""

    contract: str
    passed: bool
    observed: str


def _template_decisions(
    result: "RunResult", template: "str | None"
) -> "list[dict[str, Any]]":
    decisions = [d for d in result.decisions if "error" not in d]
    if template is None:
        return decisions
    return [d for d in decisions if d["template"] == template]


@dataclass(frozen=True)
class NoUnhandledExceptions:
    """Every instance must execute; guarded degradation is fine, a
    raised exception (even a clean ``ReproError``) is not."""

    def evaluate(self, result: "RunResult") -> ContractVerdict:
        errors = result.errors
        observed = f"{len(errors)} raised"
        if errors:
            observed += f"; first: {errors[0]['error']}"
        return ContractVerdict(
            contract="no_unhandled_exceptions",
            passed=not errors,
            observed=observed,
        )


@dataclass(frozen=True)
class DriftCaughtWithin:
    """The drift response must fire within ``within`` instances of the
    manipulation starting at per-template instance ``after``."""

    template: str
    after: int
    within: int

    def evaluate(self, result: "RunResult") -> ContractVerdict:
        decisions = _template_decisions(result, self.template)
        first = next(
            (
                ordinal
                for ordinal, d in enumerate(decisions)
                if d["drift_triggered"]
            ),
            None,
        )
        deadline = self.after + self.within
        passed = first is not None and self.after <= first < deadline
        observed = (
            "never triggered"
            if first is None
            else f"first drift response at instance {first}"
        )
        return ContractVerdict(
            contract=(
                f"drift_caught_within[{self.template}, "
                f"({self.after}, {deadline})]"
            ),
            passed=passed,
            observed=observed,
        )


@dataclass(frozen=True)
class NoFalseAlarm:
    """The drift response must stay quiet for the first ``before``
    per-template instances (``None`` = the whole run) — cost noise or
    popularity skew alone is not drift."""

    template: str
    before: "int | None" = None

    def evaluate(self, result: "RunResult") -> ContractVerdict:
        decisions = _template_decisions(result, self.template)
        if self.before is not None:
            decisions = decisions[: self.before]
        alarms = sum(1 for d in decisions if d["drift_triggered"])
        window = "the whole run" if self.before is None else (
            f"the first {self.before} instances"
        )
        return ContractVerdict(
            contract=f"no_false_alarm[{self.template}]",
            passed=alarms == 0,
            observed=f"{alarms} drift responses in {window}",
        )


@dataclass(frozen=True)
class RegretBudget:
    """Mean regret (``suboptimality - 1``) across executed instances
    must stay at or under ``budget``."""

    budget: float
    template: "str | None" = None

    def evaluate(self, result: "RunResult") -> ContractVerdict:
        decisions = _template_decisions(result, self.template)
        if not decisions:
            return ContractVerdict(
                contract=f"regret_budget[{self.budget}]",
                passed=False,
                observed="no executed instances",
            )
        regrets = []
        for d in decisions:
            optimal = d["optimal_cost"]
            ratio = (
                1.0
                if optimal <= 0.0
                else d["execution_cost"] / optimal
            )
            regrets.append(max(0.0, ratio - 1.0))
        mean = float(np.mean(regrets))
        return ContractVerdict(
            contract=f"regret_budget[{self.budget}]",
            passed=mean <= self.budget,
            observed=f"mean regret {mean:.4f} over {len(decisions)}",
        )


@dataclass(frozen=True)
class SLOHolds:
    """The named SLO must not end the run in ``breach`` for any of the
    scenario's templates (warnings are fine — the point is recovery,
    not blemish-free history)."""

    slo: str

    def evaluate(self, result: "RunResult") -> ContractVerdict:
        worst: "list[str]" = []
        for template in result.templates:
            for verdict in result.slo(template):
                if verdict["name"] == self.slo and (
                    verdict["state"] == "breach"
                ):
                    worst.append(template)
        return ContractVerdict(
            contract=f"slo_holds[{self.slo}]",
            passed=not worst,
            observed=(
                "no template in breach"
                if not worst
                else f"breaching templates: {sorted(set(worst))}"
            ),
        )


@dataclass(frozen=True)
class FallbackServed:
    """The resilience fallback chain must have answered at least
    ``min_count`` instances (proof the outage was real and survived)."""

    min_count: int
    template: "str | None" = None

    def evaluate(self, result: "RunResult") -> ContractVerdict:
        served = sum(
            1
            for d in _template_decisions(result, self.template)
            if d["fallback_source"]
        )
        return ContractVerdict(
            contract=f"fallback_served[>={self.min_count}]",
            passed=served >= self.min_count,
            observed=f"{served} instances served from fallback",
        )


@dataclass(frozen=True)
class NegativeFeedbackCaught:
    """The cost estimators must have caught at least ``min_count``
    suspected mispredictions (Assumption-2 violations show up here,
    not in the drift detector)."""

    min_count: int
    template: "str | None" = None

    def evaluate(self, result: "RunResult") -> ContractVerdict:
        caught = sum(
            1
            for d in _template_decisions(result, self.template)
            if d["invocation_reason"] == "negative_feedback"
        )
        return ContractVerdict(
            contract=f"negative_feedback_caught[>={self.min_count}]",
            passed=caught >= self.min_count,
            observed=f"{caught} negative-feedback invocations",
        )


@dataclass(frozen=True)
class EvictionPressure:
    """The plan cache must have evicted at least ``min_evictions``
    plans while never exceeding its configured capacity."""

    template: str
    min_evictions: int

    def evaluate(self, result: "RunResult") -> ContractVerdict:
        cache = result.session(self.template).cache
        capacity = result.config.cache_capacity
        within = len(cache) <= capacity
        passed = cache.evictions >= self.min_evictions and within
        return ContractVerdict(
            contract=(
                f"eviction_pressure[{self.template}, "
                f">={self.min_evictions}]"
            ),
            passed=passed,
            observed=(
                f"{cache.evictions} evictions, size {len(cache)}"
                f"/{capacity}"
            ),
        )


@dataclass(frozen=True)
class BreakerClosed:
    """The per-template circuit breaker must have re-closed by the end
    of the run (the outage healed and the session noticed)."""

    template: str

    def evaluate(self, result: "RunResult") -> ContractVerdict:
        state = result.session(self.template).breaker.state
        return ContractVerdict(
            contract=f"breaker_closed[{self.template}]",
            passed=state == "closed",
            observed=f"final breaker state {state!r}",
        )


#: Everything a scenario may assert (typing convenience).
Contract = (
    "NoUnhandledExceptions | DriftCaughtWithin | NoFalseAlarm | "
    "RegretBudget | SLOHolds | FallbackServed | NegativeFeedbackCaught | "
    "EvictionPressure | BreakerClosed"
)


# ----------------------------------------------------------------------
# Scenario definition
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Scenario:
    """A named, seeded adversarial workload with declared contracts.

    ``build_events(rng, count, dims)`` materializes the deterministic
    event stream (``dims`` maps template name to plan-space dimension
    count); ``build_contracts(count)`` declares what robustness means
    at that workload size, so the fast CI tier and the full tier assert
    proportionate bounds.
    """

    name: str
    description: str
    #: Which paper assumption the scenario violates: ``"1"`` (plan
    #: choice locality), ``"2"`` (plan cost continuity), ``"1+2"``,
    #: or ``"none"`` (stress without semantic drift).
    assumption: str
    templates: "tuple[str, ...]"
    instances: int
    fast_instances: int
    seed: int
    build_events: "Callable[[np.random.Generator, int, dict[str, int]], list]"
    build_contracts: "Callable[[int], tuple]"
    config: PPCConfig = field(default_factory=PPCConfig)
    manipulation: "tuple[tuple[str, ManipulationSpec], ...]" = ()

    def events(
        self, count: int, dims: "dict[str, int]"
    ) -> "list[QueryEvent | DriftShift | FaultPhase]":
        """The deterministic event stream at workload size ``count``."""
        rng = np.random.default_rng(np.random.SeedSequence(self.seed))
        return self.build_events(rng, count, dims)

    def contracts(self, count: int) -> tuple:
        return self.build_contracts(count)


def _query_events(
    pairs: "Iterable[tuple[str, np.ndarray]]",
) -> "list[QueryEvent]":
    return [
        QueryEvent(name, tuple(float(v) for v in point))
        for name, point in pairs
    ]


# ----------------------------------------------------------------------
# The fleet
# ----------------------------------------------------------------------
def _flash_crowd_events(
    rng: np.random.Generator, count: int, dims: "dict[str, int]"
) -> list:
    half = count // 2
    calm = MixtureWorkload(dims, zipf_exponent=0.0, seed=rng)
    hot = list(dims)[-1]
    crowd = MixtureWorkload(
        dims,
        seed=rng,
        weights={name: (30.0 if name == hot else 1.0) for name in dims},
    )
    return _query_events(calm.generate(half)) + _query_events(
        crowd.generate(count - half)
    )


def _flash_crowd_contracts(count: int) -> tuple:
    return (
        NoUnhandledExceptions(),
        RegretBudget(0.10),
        SLOHolds("regret_budget"),
        NoFalseAlarm("Q8"),
    )


def _step_drift_events(
    rng: np.random.Generator, count: int, dims: "dict[str, int]"
) -> list:
    points = RandomTrajectoryWorkload(dims["Q1"], seed=rng).generate(count)
    half = count // 2
    events: list = _query_events(("Q1", p) for p in points[:half])
    events.append(DriftShift("Q1", 1.0))
    events.extend(_query_events(("Q1", p) for p in points[half:]))
    return events


def _step_drift_contracts(count: int) -> tuple:
    half = count // 2
    return (
        NoUnhandledExceptions(),
        NoFalseAlarm("Q1", before=half),
        DriftCaughtWithin("Q1", after=half, within=150),
    )


#: Detector tuning shared by the drift scenarios: the experiment's
#: Section V-D threshold plus a tighter sliding window, so the
#: precision collapse is observable within a CI-sized fast tier (the
#: window-100 default needs ~40 assessed-wrong predictions before the
#: estimate can cross the threshold).
_DRIFT_DETECTOR_CONFIG = PPCConfig(
    drift_threshold=0.6,
    monitor_window=50,
    # The drift scenarios also journal the synopsis lifecycle: the
    # recorded traces carry an event-stream digest in their header
    # (events never change decisions — the lockstep parity tests pin
    # that), and the CI scenario matrix exports the journal artifact.
    events=EventsConfig(enabled=True),
)


def _slow_drift_events(
    rng: np.random.Generator, count: int, dims: "dict[str, int]"
) -> list:
    points = RandomTrajectoryWorkload(dims["Q1"], seed=rng).generate(count)
    start = count // 3
    # The intensity ramps linearly over the first half of the remaining
    # run and saturates at 1.0 — creeping corruption first, leaving a
    # fully drifted tail the detector must catch within.
    span = max(1, (count - start) // 2)
    events: list = _query_events(("Q1", p) for p in points[:start])
    for offset, point in enumerate(points[start:]):
        intensity = min(1.0, (offset + 1) / span)
        events.append(DriftShift("Q1", intensity))
        events.extend(_query_events([("Q1", point)]))
    return events


def _slow_drift_contracts(count: int) -> tuple:
    start = count // 3
    return (
        NoUnhandledExceptions(),
        NoFalseAlarm("Q1", before=start),
        DriftCaughtWithin("Q1", after=start, within=count - start),
    )


def _burst_events(
    rng: np.random.Generator, count: int, dims: "dict[str, int]"
) -> list:
    templates = list(dims)
    block = max(10, count // 12)
    schedule: "list[str]" = []
    index = 0
    while len(schedule) < count:
        name = templates[index % len(templates)]
        schedule.extend([name] * min(block, count - len(schedule)))
        index += 1
    per_template = {
        name: schedule.count(name) for name in templates
    }
    streams = {
        name: iter(
            RandomTrajectoryWorkload(dims[name], seed=rng).generate(n)
        )
        for name, n in per_template.items()
        if n > 0
    }
    return _query_events((name, next(streams[name])) for name in schedule)


def _burst_contracts(count: int) -> tuple:
    return (
        NoUnhandledExceptions(),
        RegretBudget(0.10),
        SLOHolds("regret_budget"),
        NoFalseAlarm("Q0"),
        NoFalseAlarm("Q1"),
    )


def _cold_start_storm_events(
    rng: np.random.Generator, count: int, dims: "dict[str, int]"
) -> list:
    points = RandomTrajectoryWorkload(dims["Q1"], seed=rng).generate(count)
    warm = count // 5
    outage = count // 3
    events: list = _query_events(("Q1", p) for p in points[:warm])
    events.append(
        FaultPhase("optimizer", FaultSpec(failure_probability=1.0))
    )
    events.extend(
        _query_events(("Q1", p) for p in points[warm : warm + outage])
    )
    events.append(FaultPhase("optimizer", None))
    events.extend(_query_events(("Q1", p) for p in points[warm + outage :]))
    return events


def _cold_start_storm_contracts(count: int) -> tuple:
    return (
        NoUnhandledExceptions(),
        FallbackServed(min_count=max(1, count // 100), template="Q1"),
        BreakerClosed("Q1"),
    )


def _heavy_tail_events(
    rng: np.random.Generator, count: int, dims: "dict[str, int]"
) -> list:
    points = RandomTrajectoryWorkload(dims["Q1"], seed=rng).generate(count)
    events: list = [DriftShift("Q1", 1.0)]
    events.extend(_query_events(("Q1", p) for p in points))
    return events


def _heavy_tail_contracts(count: int) -> tuple:
    return (
        NoUnhandledExceptions(),
        NegativeFeedbackCaught(min_count=max(1, count // 100), template="Q1"),
        RegretBudget(0.10, template="Q1"),
    )


def _cache_pressure_events(
    rng: np.random.Generator, count: int, dims: "dict[str, int]"
) -> list:
    points = sample_points(dims["Q2"], count, seed=rng)
    return _query_events(("Q2", p) for p in points)


def _cache_pressure_contracts(count: int) -> tuple:
    return (
        NoUnhandledExceptions(),
        EvictionPressure("Q2", min_evictions=max(1, count // 50)),
        RegretBudget(0.10, template="Q2"),
    )


#: The named fleet, keyed by scenario name.  Templates are the cheap
#: TPC-H plan spaces (Q0/Q1/Q2/Q8 harvest in ~0.1 s each) so the fast
#: tier stays CI-friendly; plan-space caching in :mod:`repro.tpch`
#: amortizes them across scenarios.
SCENARIOS: "dict[str, Scenario]" = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            name="flash_crowd",
            description=(
                "Uniform three-template mixture that snaps mid-run to a "
                "30:1 flash crowd on Q8; popularity skew must not look "
                "like drift or blow the regret budget."
            ),
            assumption="none",
            templates=("Q0", "Q1", "Q8"),
            instances=900,
            fast_instances=240,
            seed=701,
            build_events=_flash_crowd_events,
            build_contracts=_flash_crowd_contracts,
        ),
        Scenario(
            name="step_drift",
            description=(
                "The paper's Section V-D experiment as a contract: a "
                "full plan-space scramble at the halfway point must be "
                "caught by the drift response within a bounded number "
                "of instances, with no false alarm before it."
            ),
            assumption="1+2",
            templates=("Q1",),
            instances=900,
            fast_instances=300,
            seed=702,
            build_events=_step_drift_events,
            build_contracts=_step_drift_contracts,
            config=_DRIFT_DETECTOR_CONFIG,
            manipulation=(("Q1", ManipulationSpec(cost_jitter=4.0, seed=7)),),
        ),
        Scenario(
            name="slow_drift",
            description=(
                "Plan-space scramble intensity ramping linearly from a "
                "third of the run to its end; the detector must still "
                "fire before the run completes (creeping drift, not "
                "just step drift)."
            ),
            assumption="1+2",
            templates=("Q1",),
            instances=900,
            fast_instances=450,
            seed=703,
            build_events=_slow_drift_events,
            build_contracts=_slow_drift_contracts,
            config=_DRIFT_DETECTOR_CONFIG,
            manipulation=(
                ("Q1", ManipulationSpec(cost_jitter=4.0, seed=11)),
            ),
        ),
        Scenario(
            name="multi_template_burst",
            description=(
                "Correlated bursts alternating between templates in "
                "large blocks; per-template locality survives "
                "interleaving, so no false drift alarms and the regret "
                "budget holds."
            ),
            assumption="none",
            templates=("Q0", "Q1"),
            instances=800,
            fast_instances=240,
            seed=704,
            build_events=_burst_events,
            build_contracts=_burst_contracts,
        ),
        Scenario(
            name="cold_start_storm",
            description=(
                "A total optimizer outage after a short warmup; the "
                "fallback chain must serve, the breaker must isolate "
                "the outage and re-close once it heals, and nothing "
                "may raise."
            ),
            assumption="none",
            templates=("Q1",),
            instances=900,
            fast_instances=300,
            seed=705,
            build_events=_cold_start_storm_events,
            build_contracts=_cold_start_storm_contracts,
        ),
        Scenario(
            name="heavy_tail_costs",
            description=(
                "Cost-only scramble (labels intact) with heavy-tailed "
                "x7 jitter from the first instance: an Assumption-2 "
                "violation that negative feedback must catch while the "
                "drift detector stays quiet."
            ),
            assumption="2",
            templates=("Q1",),
            instances=900,
            fast_instances=300,
            seed=706,
            build_events=_heavy_tail_events,
            build_contracts=_heavy_tail_contracts,
            manipulation=(
                (
                    "Q1",
                    ManipulationSpec(
                        cost_jitter=6.0, scramble_labels=False, seed=13
                    ),
                ),
            ),
        ),
        Scenario(
            name="cache_pressure",
            description=(
                "Uniform sweep over a many-plan template with the plan "
                "cache capped at 2 entries: constant eviction churn "
                "must stay within capacity and degrade gracefully."
            ),
            assumption="none",
            templates=("Q2",),
            instances=800,
            fast_instances=240,
            seed=707,
            build_events=_cache_pressure_events,
            build_contracts=_cache_pressure_contracts,
            config=PPCConfig(cache_capacity=2),
        ),
    )
}

#: Stable listing order for CLI/bench output.
SCENARIO_NAMES: "tuple[str, ...]" = tuple(SCENARIOS)


def get_scenario(name: str) -> Scenario:
    """Look up a named scenario, with a helpful error."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; known scenarios are "
            f"{list(SCENARIO_NAMES)}"
        ) from None


__all__ = [
    "SCENARIOS",
    "SCENARIO_NAMES",
    "BreakerClosed",
    "ContractVerdict",
    "DriftCaughtWithin",
    "DriftShift",
    "EvictionPressure",
    "FallbackServed",
    "FaultPhase",
    "ManipulationSpec",
    "NegativeFeedbackCaught",
    "NoFalseAlarm",
    "NoUnhandledExceptions",
    "QueryEvent",
    "RegretBudget",
    "SLOHolds",
    "Scenario",
    "get_scenario",
]
