"""The chord-based confidence model of Section IV-A.

Around a test point, the density predictor counts labeled sample
points per plan within radius ``d``.  When the counts are mixed, the
paper models the neighborhood as a circle split by a straight plan
boundary (a chord): the majority plan ``P_max`` occupies one side, all
other plans the other side (Figure 4(b)).  The sample-count ratio
``c_max / sum(others)`` determines where that chord must lie, the chord
position determines the angle ``theta``, and the prediction confidence
is ``sin(theta)``:

* ratio <= 1 — the test point may be outside ``P_max``'s region:
  confidence 0;
* ratio -> infinity — the chord is pushed to the circle's far edge:
  confidence -> 1.

A pure neighborhood (no foreign samples) follows the probabilistic
model of Figure 4(a) instead: each sample point independently asserts
that its neighbors share its plan with probability ``chi`` (the plan
choice predictability constant, 0.9 in the paper's example), so the
confidence after ``alpha`` agreeing samples is ``1 - (1 - chi)^alpha``
— the paper's "larger alpha implies greater confidence".
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ConfigurationError

#: Plan choice predictability constant chi of Assumption 1; drives the
#: confidence of pure (single-plan) neighborhoods.
DEFAULT_CHI = 0.9

#: Resolution of the precomputed ratio -> confidence interpolation table.
_TABLE_SIZE = 512


def segment_fraction(phi: float) -> float:
    """Area fraction of a circular segment with half-angle ``phi``.

    The segment cut off by a chord whose half-angle (as seen from the
    centre) is ``phi`` has area ``r^2 (phi - sin(phi) cos(phi))``; as a
    fraction of the disc, that is ``(phi - sin(phi) cos(phi)) / pi``.
    """
    return (phi - math.sin(phi) * math.cos(phi)) / math.pi


def confidence_angle(ratio: float) -> float:
    """Solve for the chord half-angle given the count ratio.

    The minority side must occupy area fraction ``1 / (1 + ratio)``;
    bisection finds the half-angle ``phi`` producing that fraction.
    Returns ``theta = pi/2 - phi``, the angle whose sine is the
    confidence.
    """
    if ratio < 1.0:
        return 0.0
    target = 1.0 / (1.0 + ratio)
    lo, hi = 0.0, math.pi / 2.0
    for __ in range(60):
        mid = (lo + hi) / 2.0
        if segment_fraction(mid) < target:
            lo = mid
        else:
            hi = mid
    phi = (lo + hi) / 2.0
    return math.pi / 2.0 - phi


def confidence_from_ratio(ratio: float) -> float:
    """Exact confidence ``sin(theta(ratio))``."""
    return math.sin(confidence_angle(ratio))


class ConfidenceModel:
    """Fast vectorized confidence evaluation with a precomputed table."""

    def __init__(self, chi: float = DEFAULT_CHI) -> None:
        if not 0.0 < chi < 1.0:
            raise ConfigurationError("chi must lie strictly inside (0, 1)")
        self.chi = chi
        # Tabulate confidence against log-spaced ratios in [1, 1e6]; the
        # curve saturates near 1 well before the upper end.
        self._ratios = np.logspace(0.0, 6.0, _TABLE_SIZE)
        self._confidences = np.array(
            [confidence_from_ratio(r) for r in self._ratios]
        )

    def confidence(self, max_count: float, other_count: float) -> float:
        """Confidence that the majority plan is optimal at the test point.

        ``max_count`` is the sample count (or density) of the most
        frequent plan inside the ball, ``other_count`` the total of all
        remaining plans.  Pure neighborhoods use the probabilistic
        ``1 - (1 - chi)^alpha`` model; mixed neighborhoods use the chord
        model on the count ratio.  Returns 0 when the majority does not
        strictly dominate.
        """
        if max_count <= 0.0:
            return 0.0
        others = max(other_count, 0.0)
        if others == 0.0:
            return 1.0 - (1.0 - self.chi) ** max_count
        ratio = max_count / others
        if ratio < 1.0:
            return 0.0
        if ratio >= self._ratios[-1]:
            return 1.0
        return float(np.interp(ratio, self._ratios, self._confidences))

    def decide(
        self,
        counts: "np.ndarray | list[float]",
        threshold: float,
    ) -> "tuple[int | None, float]":
        """Pick the majority plan if its confidence exceeds ``threshold``.

        ``counts`` holds per-plan sample counts (index = plan id).
        Returns ``(plan_id, confidence)``, with ``plan_id = None`` for a
        NULL prediction.  This is lines 6-16 of Algorithm 1.
        """
        counts = np.asarray(counts, dtype=float)
        if counts.size == 0 or counts.max() <= 0.0:
            return None, 0.0
        winner = int(np.argmax(counts))
        max_count = float(counts[winner])
        other_count = float(counts.sum() - max_count)
        value = self.confidence(max_count, other_count)
        if value > threshold:
            return winner, value
        return None, value

    def explain_decide(
        self,
        counts: "np.ndarray | list[float]",
        threshold: float,
    ) -> "tuple[int | None, float, dict]":
        """:meth:`decide` plus its intermediate quantities.

        Returns ``(plan_id, confidence, detail)`` where ``detail``
        carries the winner, the ``c_max``/``sum(others)`` counts, their
        ratio, which confidence model applied (``pure`` neighborhoods
        use ``1 - (1 - chi)^alpha``, ``mixed`` ones the chord's
        ``sin(theta)``), and the γ comparison — the payload of the
        decision trace's ``confidence`` span.  The decision itself is
        exactly :meth:`decide`'s.
        """
        counts = np.asarray(counts, dtype=float)
        detail: dict = {"gamma": float(threshold)}
        if counts.size == 0 or counts.max() <= 0.0:
            detail.update(
                winner=None,
                max_count=0.0,
                other_count=0.0,
                ratio=None,
                model="null",
                sin_theta=0.0,
                passed=False,
            )
            return None, 0.0, detail
        winner = int(np.argmax(counts))
        max_count = float(counts[winner])
        other_count = float(counts.sum() - max_count)
        value = self.confidence(max_count, other_count)
        passed = value > threshold
        detail.update(
            winner=winner,
            max_count=max_count,
            other_count=other_count,
            ratio=None if other_count <= 0.0 else max_count / other_count,
            model="pure" if other_count <= 0.0 else "mixed",
            sin_theta=value,
            passed=passed,
        )
        return (winner if passed else None), value, detail

    def decide_batch(
        self,
        counts: np.ndarray,
        threshold: float,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`decide` over a ``(points, plans)`` matrix.

        Returns ``(winners, confidences)`` where ``winners`` is ``-1``
        for NULL predictions.  Bit-for-bit identical to per-row
        :meth:`decide` — including the saturation to exactly ``1.0``
        once the count ratio leaves the interpolation table, which a
        plain ``np.interp`` clamp would miss — so scalar ``predict``
        can delegate to the batch path.  Subclasses overriding
        :meth:`confidence` must override this too, or batch decisions
        will silently fall back to the chord model.
        """
        counts = np.asarray(counts, dtype=float)
        if counts.ndim != 2:
            raise ConfigurationError("decide_batch expects a 2-D matrix")
        winners = np.argmax(counts, axis=1)
        max_counts = counts[np.arange(counts.shape[0]), winners]
        others = counts.sum(axis=1) - max_counts

        confidences = np.zeros(counts.shape[0])
        pure = (others <= 0.0) & (max_counts > 0.0)
        confidences[pure] = 1.0 - (1.0 - self.chi) ** max_counts[pure]
        mixed = (others > 0.0) & (max_counts >= others)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratios = np.where(
                others > 0.0, max_counts / np.maximum(others, 1e-300), 0.0
            )
        confidences[mixed] = np.interp(
            ratios[mixed], self._ratios, self._confidences
        )
        # Parity with the scalar path: beyond the table the chord model
        # saturates to exactly 1.0, not to the last tabulated value.
        confidences[mixed & (ratios >= self._ratios[-1])] = 1.0
        answered = confidences > threshold
        winners = np.where(answered & (max_counts > 0.0), winners, -1)
        return winners, confidences


class FrequencyConfidenceModel(ConfidenceModel):
    """Ablation baseline: raw relative frequency instead of the chord model.

    Confidence is simply ``c_max / total`` — the majority plan's share
    of the neighborhood.  Compared to the chord model this is far less
    discriminating near boundaries (a 70/30 split already scores 0.7),
    which the confidence-model ablation bench quantifies.
    """

    def confidence(self, max_count: float, other_count: float) -> float:
        if max_count <= 0.0:
            return 0.0
        others = max(other_count, 0.0)
        if others == 0.0:
            return 1.0 - (1.0 - self.chi) ** max_count
        if max_count < others:
            return 0.0
        return max_count / (max_count + others)

    def decide_batch(
        self,
        counts: np.ndarray,
        threshold: float,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized frequency-model twin of the base ``decide_batch``
        (the inherited chord interpolation would not match this model's
        scalar :meth:`confidence`)."""
        counts = np.asarray(counts, dtype=float)
        if counts.ndim != 2:
            raise ConfigurationError("decide_batch expects a 2-D matrix")
        winners = np.argmax(counts, axis=1)
        max_counts = counts[np.arange(counts.shape[0]), winners]
        others = counts.sum(axis=1) - max_counts

        confidences = np.zeros(counts.shape[0])
        pure = (others <= 0.0) & (max_counts > 0.0)
        confidences[pure] = 1.0 - (1.0 - self.chi) ** max_counts[pure]
        mixed = (others > 0.0) & (max_counts >= others)
        with np.errstate(divide="ignore", invalid="ignore"):
            confidences[mixed] = (
                max_counts[mixed] / (max_counts[mixed] + others[mixed])
            )
        answered = confidences > threshold
        winners = np.where(answered & (max_counts > 0.0), winners, -1)
        return winners, confidences
