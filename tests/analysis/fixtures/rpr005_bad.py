"""Snapshot writes that can tear on crash."""
import json
import os
import pathlib


def snapshot(state, path):
    with open(path, "w") as handle:
        json.dump(state, handle)


def snapshot_fd(state, fd):
    with os.fdopen(fd, "w") as handle:
        json.dump(state, handle)


def snapshot_path(state, path: pathlib.Path):
    path.write_text(json.dumps(state))
