"""Framework mechanics: suppression, baseline round-trip, reporters."""

import json

import pytest

from repro.analysis import (
    BaselineEntry,
    apply_baseline,
    lint_paths,
    lint_source,
    load_baseline,
    render_json,
    render_text,
    run_selftest,
    write_baseline,
)
from repro.exceptions import ConfigurationError

BAD_SLEEP = "import time\ntime.sleep(1.0)\n"


class TestSuppression:
    def test_coded_noqa_suppresses_that_rule(self):
        source = "import time\ntime.sleep(1.0)  # repro: noqa[RPR002]\n"
        assert lint_source(source, module="repro.core.scratch") == []

    def test_bare_noqa_suppresses_everything(self):
        source = "import time\ntime.sleep(1.0)  # repro: noqa\n"
        assert lint_source(source, module="repro.core.scratch") == []

    def test_wrong_code_does_not_suppress(self):
        source = "import time\ntime.sleep(1.0)  # repro: noqa[RPR001]\n"
        findings = lint_source(source, module="repro.core.scratch")
        assert [f.rule for f in findings] == ["RPR002"]

    def test_noqa_is_line_scoped(self):
        source = (
            "import time\n"
            "time.sleep(1.0)  # repro: noqa[RPR002]\n"
            "time.sleep(2.0)\n"
        )
        findings = lint_source(source, module="repro.core.scratch")
        assert [(f.rule, f.line) for f in findings] == [("RPR002", 3)]


class TestBaseline:
    def test_round_trip_accepts_known_findings(self, tmp_path):
        findings = lint_source(
            BAD_SLEEP, path="src/repro/core/x.py", module="repro.core.x"
        )
        assert findings
        baseline_path = tmp_path / "baseline.json"
        count = write_baseline(findings, baseline_path)
        assert count == len(findings)

        fresh, accepted, stale = apply_baseline(
            findings, load_baseline(baseline_path)
        )
        assert fresh == []
        assert accepted == findings
        assert stale == []

    def test_edited_line_escapes_the_baseline(self, tmp_path):
        findings = lint_source(
            BAD_SLEEP, path="src/repro/core/x.py", module="repro.core.x"
        )
        baseline_path = tmp_path / "baseline.json"
        write_baseline(findings, baseline_path)

        edited = lint_source(
            "import time\ntime.sleep(2.0)\n",
            path="src/repro/core/x.py",
            module="repro.core.x",
        )
        fresh, accepted, stale = apply_baseline(
            edited, load_baseline(baseline_path)
        )
        assert len(fresh) == 1
        assert accepted == []
        assert len(stale) == 1  # the old line's entry matched nothing

    def test_missing_file_is_empty_baseline(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == []

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_baseline(path)
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ConfigurationError):
            load_baseline(path)

    def test_entry_key_matches_by_snippet_not_line(self):
        entry = BaselineEntry(
            rule="RPR002",
            path="src/repro/core/x.py",
            snippet="time.sleep(1.0)",
        )
        moved = lint_source(
            "import time\n\n\n\ntime.sleep(1.0)\n",
            path="src/repro/core/x.py",
            module="repro.core.x",
        )
        fresh, accepted, _ = apply_baseline(moved, [entry])
        assert fresh == []
        assert len(accepted) == 1


class TestReporters:
    def _findings(self):
        return lint_source(
            BAD_SLEEP, path="src/repro/core/x.py", module="repro.core.x"
        )

    def test_text_report_names_rule_and_location(self):
        text = render_text(self._findings(), [], [], [])
        assert "src/repro/core/x.py:2" in text
        assert "RPR002" in text
        assert "1 finding(s)" in text

    def test_json_report_is_machine_readable(self):
        document = json.loads(render_json(self._findings(), [], [], []))
        assert document["summary"]["total"] == 1
        (finding,) = document["findings"]
        assert finding["rule"] == "RPR002"
        assert finding["line"] == 2
        assert finding["snippet"] == "time.sleep(1.0)"


class TestLintPaths:
    def test_unparseable_file_is_reported_not_fatal(self, tmp_path):
        bad = tmp_path / "repro" / "core" / "broken.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def broken(:\n")
        findings, errors = lint_paths([bad])
        assert findings == []
        assert len(errors) == 1
        assert "broken.py" in errors[0]


def test_selftest_passes():
    assert run_selftest() == []
