"""Positive feedback: checks and balances (the paper's future work)."""

import numpy as np
import pytest

from repro.config import PPCConfig
from repro.core.framework import TemplateSession
from repro.core.online import OnlinePredictor
from repro.core.positive_feedback import PositiveFeedbackPolicy
from repro.core.predictor import Prediction
from repro.exceptions import ConfigurationError
from repro.workload import RandomTrajectoryWorkload


class TestPolicy:
    def test_confidence_gate(self):
        policy = PositiveFeedbackPolicy(min_confidence=0.95)
        policy.record_verified()
        policy.record_verified()
        assert not policy.should_insert(Prediction(0, confidence=0.9))
        assert policy.should_insert(Prediction(0, confidence=0.99))

    def test_mass_cap(self):
        policy = PositiveFeedbackPolicy(
            min_confidence=0.0, weight=0.25, mass_cap_ratio=0.5
        )
        policy.record_verified()  # verified mass 1.0 -> cap 0.5
        confident = Prediction(0, confidence=1.0)
        assert policy.should_insert(confident)  # unverified 0.25
        assert policy.should_insert(confident)  # unverified 0.50
        assert not policy.should_insert(confident)  # would exceed cap
        policy.record_verified()  # cap now 1.0
        assert policy.should_insert(confident)

    def test_counters(self):
        policy = PositiveFeedbackPolicy(min_confidence=0.5)
        policy.record_verified()
        policy.should_insert(Prediction(0, confidence=0.9))
        policy.should_insert(Prediction(0, confidence=0.1))
        assert policy.accepted == 1
        assert policy.rejected == 1

    def test_reset(self):
        policy = PositiveFeedbackPolicy(min_confidence=0.0)
        policy.record_verified()
        policy.should_insert(Prediction(0, confidence=1.0))
        policy.reset()
        assert policy.verified_mass == 0.0
        assert policy.unverified_mass == 0.0

    def test_unguarded_always_accepts(self):
        policy = PositiveFeedbackPolicy.unguarded()
        for __ in range(100):
            assert policy.should_insert(Prediction(0, confidence=0.0))

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            PositiveFeedbackPolicy(min_confidence=1.5)
        with pytest.raises(ConfigurationError):
            PositiveFeedbackPolicy(weight=0.0)
        with pytest.raises(ConfigurationError):
            PositiveFeedbackPolicy(mass_cap_ratio=0.0)


class TestOnlineIntegration:
    def test_unverified_points_carry_fractional_weight(self):
        online = OnlinePredictor(
            dimensions=2,
            plan_count=2,
            confidence_threshold=0.5,
            positive_feedback=PositiveFeedbackPolicy(
                min_confidence=0.0, weight=0.25, mass_cap_ratio=10.0
            ),
            seed=0,
        )
        x = np.array([0.3, 0.3])
        online.observe(x, 0, cost=5.0)
        inserted = online.observe_unverified(
            x, Prediction(0, confidence=1.0), observed_cost=5.0
        )
        assert inserted
        # The sample count stays an integer; the discount shows up in
        # the separately tracked weighted mass.
        assert online.sample_count == 2
        assert isinstance(online.sample_count, int)
        assert online.predictor.total_mass == pytest.approx(1.25)

    def test_no_policy_means_no_positive_feedback(self):
        online = OnlinePredictor(2, 2, seed=0)
        assert not online.observe_unverified(
            np.array([0.3, 0.3]), Prediction(0, confidence=1.0), 5.0
        )

    def test_drop_resets_policy(self):
        policy = PositiveFeedbackPolicy(min_confidence=0.0, mass_cap_ratio=10)
        online = OnlinePredictor(
            2, 2, positive_feedback=policy, seed=0
        )
        online.observe(np.array([0.3, 0.3]), 0, 5.0)
        online.observe_unverified(
            np.array([0.3, 0.3]), Prediction(0, confidence=1.0), 5.0
        )
        online.drop()
        assert policy.verified_mass == 0.0
        assert online.sample_count == 0


class TestFrameworkIntegration:
    def test_guarded_feedback_does_not_destroy_precision(self, q1_space):
        base_config = PPCConfig(
            confidence_threshold=0.8, drift_response=False
        )
        feedback_config = PPCConfig(
            confidence_threshold=0.8,
            drift_response=False,
            positive_feedback=True,
        )
        workload = RandomTrajectoryWorkload(2, spread=0.02, seed=17).generate(
            600
        )
        results = {}
        for name, config in (
            ("off", base_config), ("on", feedback_config),
        ):
            session = TemplateSession(q1_space, config, seed=0)
            for point in workload:
                session.execute(point)
            results[name] = session.ground_truth_metrics()
        assert results["on"].precision > results["off"].precision - 0.05

    def test_unverified_mass_accumulates(self, q1_space):
        config = PPCConfig(
            confidence_threshold=0.8,
            drift_response=False,
            positive_feedback=True,
        )
        session = TemplateSession(q1_space, config, seed=0)
        workload = RandomTrajectoryWorkload(2, spread=0.02, seed=18).generate(
            400
        )
        for point in workload:
            session.execute(point)
        policy = session.online.positive_feedback
        assert policy is not None
        assert policy.accepted > 0
        assert policy.unverified_mass <= (
            policy.mass_cap_ratio * policy.verified_mass + policy.weight
        )
