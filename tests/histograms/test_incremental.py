"""Streaming histogram: insertion, merge-on-overflow, clearing."""

import numpy as np
import pytest

from repro.exceptions import HistogramError
from repro.histograms import IncrementalHistogram


class TestInsertion:
    def test_single_insert_creates_point_mass(self):
        hist = IncrementalHistogram(max_buckets=4)
        hist.insert(0.5, cost=2.0)
        assert hist.bucket_count == 1
        bucket = hist.buckets[0]
        assert bucket.lo == bucket.hi == 0.5
        assert bucket.count == 1
        assert bucket.cost_sum == 2.0

    def test_duplicate_values_share_a_bucket(self):
        hist = IncrementalHistogram(max_buckets=4)
        for __ in range(5):
            hist.insert(0.3, cost=1.0)
        assert hist.bucket_count == 1
        assert hist.buckets[0].count == 5

    def test_insert_into_existing_span(self):
        hist = IncrementalHistogram(max_buckets=2)
        for v in (0.1, 0.2, 0.9):
            hist.insert(v)
        # 0.1 and 0.2 merged into [0.1, 0.2]; 0.15 falls inside it.
        hist.insert(0.15)
        assert hist.bucket_count == 2
        assert hist.total_count == pytest.approx(4.0)

    def test_out_of_domain_rejected(self):
        hist = IncrementalHistogram(max_buckets=4)
        with pytest.raises(HistogramError):
            hist.insert(-0.1)

    def test_invalid_budget_rejected(self):
        with pytest.raises(HistogramError):
            IncrementalHistogram(max_buckets=0)


class TestMerging:
    def test_bucket_budget_enforced(self):
        hist = IncrementalHistogram(max_buckets=8)
        rng = np.random.default_rng(0)
        for v in rng.uniform(0, 1, 500):
            hist.insert(float(v))
        assert hist.bucket_count <= 8
        assert hist.total_count == pytest.approx(500.0)

    def test_narrowest_pair_merged_first(self):
        hist = IncrementalHistogram(max_buckets=3)
        for v in (0.1, 0.11, 0.5, 0.9):
            hist.insert(v)
        # 0.1 and 0.11 form the narrowest pair.
        spans = [(b.lo, b.hi) for b in hist.buckets]
        assert (0.1, 0.11) in spans

    def test_merge_preserves_mass_and_cost(self):
        hist = IncrementalHistogram(max_buckets=2)
        for v, c in [(0.1, 1.0), (0.2, 2.0), (0.3, 3.0), (0.9, 4.0)]:
            hist.insert(v, cost=c)
        assert hist.total_count == pytest.approx(4.0)
        total_cost = sum(b.cost_sum for b in hist.buckets)
        assert total_cost == pytest.approx(10.0)

    def test_buckets_stay_sorted_and_disjoint(self):
        hist = IncrementalHistogram(max_buckets=5)
        rng = np.random.default_rng(1)
        for v in rng.uniform(0, 1, 300):
            hist.insert(float(v))
        for left, right in zip(hist.buckets, hist.buckets[1:], strict=False):
            assert left.hi <= right.lo


class TestClear:
    def test_clear_empties_everything(self):
        hist = IncrementalHistogram(max_buckets=4)
        for v in (0.1, 0.5, 0.9):
            hist.insert(v)
        hist.clear()
        assert hist.bucket_count == 0
        assert hist.total_count == 0.0
        hist.insert(0.4)
        assert hist.bucket_count == 1
