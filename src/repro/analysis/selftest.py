"""Self-check: every rule fires on known-bad code, stays quiet on good.

A linter that silently stops matching is worse than no linter — CI
runs ``repro lint --selftest`` so a refactor of the rule engine that
breaks a detector fails the build, not the next reviewer.  Each case
pairs a minimal bad snippet (must produce at least one finding of the
rule, at the expected count) with a good snippet (must produce none),
linted under a module name inside the rule's scope.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.core import lint_source


@dataclass(frozen=True)
class SelfTestCase:
    """One rule's positive/negative fixture pair."""

    rule: str
    #: Dotted module name the snippets are linted under (drives the
    #: rule's scoping).
    module: str
    bad: str
    good: str
    #: Exact number of findings the bad snippet must produce.
    bad_findings: int = 1


SELFTEST_CASES = (
    SelfTestCase(
        rule="RPR001",
        module="repro.workload.scratch",
        bad=(
            "import numpy as np\n"
            "values = np.random.rand(8)\n"
            "rng = np.random.default_rng()\n"
        ),
        good=(
            "import numpy as np\n"
            "rng = np.random.default_rng(np.random.SeedSequence(7))\n"
            "values = rng.random(8)\n"
        ),
        bad_findings=2,
    ),
    SelfTestCase(
        rule="RPR002",
        module="repro.core.scratch",
        bad=(
            "import time\n"
            "def wait() -> None:\n"
            "    time.sleep(0.1)\n"
        ),
        good=(
            "from repro.resilience.clocks import system_sleep\n"
            "def wait() -> None:\n"
            "    system_sleep(0.1)\n"
        ),
    ),
    SelfTestCase(
        rule="RPR003",
        module="repro.core.scratch",
        bad=(
            "def record(registry):\n"
            "    registry.counter('ppc_surprise_total').inc()\n"
        ),
        good=(
            "from repro.obs import names as metric_names\n"
            "def record(registry):\n"
            "    registry.counter(metric_names.EXECUTIONS_TOTAL).inc()\n"
        ),
    ),
    SelfTestCase(
        rule="RPR004",
        module="repro.core.scratch",
        bad=(
            "def load():\n"
            "    try:\n"
            "        return 1\n"
            "    except Exception:\n"
            "        pass\n"
        ),
        good=(
            "from repro.exceptions import PersistenceError\n"
            "def load(counter):\n"
            "    try:\n"
            "        return 1\n"
            "    except PersistenceError:\n"
            "        counter.inc()\n"
            "        return 0\n"
        ),
    ),
    SelfTestCase(
        rule="RPR005",
        module="repro.core.scratch",
        bad=(
            "import json\n"
            "def snapshot(state, path):\n"
            "    with open(path, 'w') as handle:\n"
            "        json.dump(state, handle)\n"
        ),
        good=(
            "import json\n"
            "from repro.core.persistence import atomic_write_text\n"
            "def snapshot(state, path):\n"
            "    atomic_write_text(path, json.dumps(state))\n"
        ),
    ),
    SelfTestCase(
        rule="RPR006",
        module="repro.clustering.scratch",
        bad=(
            "def boundary(distance):\n"
            "    return distance == 0.5\n"
        ),
        good=(
            "import math\n"
            "def boundary(distance):\n"
            "    return math.isclose(distance, 0.5, abs_tol=1e-9)\n"
        ),
    ),
    SelfTestCase(
        rule="RPR007",
        module="repro.core.scratch",
        bad=(
            "class Session:\n"
            "    def execute(self, point):\n"
            "        return point\n"
        ),
        good=(
            "class Session:\n"
            "    def execute(self, point: float) -> float:\n"
            "        return point\n"
        ),
    ),
    SelfTestCase(
        rule="RPR008",
        module="repro.experiments.scratch",
        bad=(
            "def tamper(framework):\n"
            "    framework.session('Q1').optimizer_invocations = 0\n"
        ),
        good=(
            "class Owner:\n"
            "    def reset(self) -> None:\n"
            "        self.optimizer_invocations = 0\n"
        ),
    ),
    SelfTestCase(
        rule="RPR009",
        module="repro.core.scratch",
        bad=(
            "from repro.obs.tracing import Span\n"
            "def annotate(trace):\n"
            "    span = trace.open_span('predict')\n"
            "    span.children.append(Span('manual'))\n"
            "    trace.close_span()\n"
        ),
        good=(
            "def annotate(trace):\n"
            "    with trace.span('predict') as span:\n"
            "        span.set(plan=3)\n"
        ),
        bad_findings=3,
    ),
)


def run_selftest() -> "list[str]":
    """Exercise every case; returns failure descriptions (empty = OK)."""
    failures: list[str] = []
    for case in SELFTEST_CASES:
        bad = [
            finding
            for finding in lint_source(case.bad, module=case.module)
            if finding.rule == case.rule
        ]
        if len(bad) != case.bad_findings:
            failures.append(
                f"{case.rule}: bad fixture produced {len(bad)} finding(s), "
                f"expected {case.bad_findings}"
            )
        good = [
            finding
            for finding in lint_source(case.good, module=case.module)
            if finding.rule == case.rule
        ]
        if good:
            failures.append(
                f"{case.rule}: good fixture produced {len(good)} "
                f"unexpected finding(s): {good[0].message}"
            )
    # The whole-program rules carry their own multi-module fixture
    # pairs; one selftest entry point gates both families in CI.
    from repro.analysis.effects.selftest import run_effects_selftest

    failures.extend(run_effects_selftest())
    return failures
