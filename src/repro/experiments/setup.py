"""Shared experimental setup (Appendix A).

Central constants and helpers used by every experiment driver: the
standard template set, reference parameters (confidence thresholds,
radii, transform counts, histogram budgets) and the offline
evaluate-a-predictor helper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.predictor import PlanPredictor
from repro.metrics.classification import PrecisionRecall, evaluate_predictions
from repro.optimizer.plan_space import PlanSpace
from repro.tpch import plan_space_for
from repro.workload import sample_labeled_pool, sample_points

#: Templates used throughout Section V.
ALL_TEMPLATES = tuple(f"Q{i}" for i in range(9))

#: The offline reference configuration of Section V-A.
OFFLINE_GAMMA = 0.7
OFFLINE_RADIUS = 0.05
DEFAULT_TRANSFORMS = 5
DEFAULT_BUCKETS = 40
SAMPLE_SIZES = (200, 400, 800, 1600, 3200, 6400)
TRANSFORM_COUNTS = (3, 5, 7, 9, 11)
RADII = (0.05, 0.1, 0.15, 0.2)
TRAJECTORY_SPREADS = (0.01, 0.02, 0.04, 0.08)

#: The online reference configuration of Section V-B.
ONLINE_GAMMA = 0.8
ONLINE_INVOCATION_PROBABILITY = 0.05


@dataclass(frozen=True)
class OfflineResult:
    """One offline evaluation cell."""

    template: str
    algorithm: str
    sample_size: int
    metrics: PrecisionRecall
    space_bytes: int

    @property
    def precision(self) -> float:
        return self.metrics.precision

    @property
    def recall(self) -> float:
        return self.metrics.recall


def offline_truth(
    plan_space: PlanSpace,
    test_count: int = 1000,
    seed: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """An independent uniform test set with its oracle labels."""
    test = sample_points(plan_space.dimensions, test_count, seed=seed)
    return test, plan_space.plan_at(test)


def evaluate_offline(
    predictor: PlanPredictor,
    test: np.ndarray,
    truth: np.ndarray,
) -> PrecisionRecall:
    """Score a fitted predictor on a labeled test set."""
    predictions = predictor.predict_batch(test)
    ids = [None if p is None else p.plan_id for p in predictions]
    return evaluate_predictions(ids, truth)


def standard_pool(template: str, sample_size: int, seed: int = 42):
    """The warm-up sample set ``X`` for one template."""
    plan_space = plan_space_for(template)
    return plan_space, sample_labeled_pool(plan_space, sample_size, seed=seed)
